//! The self-healing replication group end to end: quorum admission and
//! acks, replication gauges over the wire, follower restart resumption,
//! epoch fencing of a deposed leader, bounded client redirect loops,
//! automatic kill-the-leader failover, partition degradation to
//! `QuorumLost`, self-driven snapshot re-bootstrap, and the seeded chaos
//! matrix — all verified with the per-key linearizability checker and
//! the durable-prefix oracle (zero quorum-acked writes lost).

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb::check::{check_history, DurableOracle, History, HistoryRecorder, ProcessLog};
use miodb::common::fault::{self, points, FaultPolicy};
use miodb::common::{AckLevel, Error, ReplicationSink};
use miodb::repl::{
    engine_snapshot_bytes, vote_rpc, Follower, FollowerOptions, FollowerState, Replicator,
    ReplicatorOptions,
};
use miodb::{
    ClientOptions, GroupConfig, KvClient, KvEngine, KvServer, MioDb, MioOptions, NodeOptions,
    ReplConfig, ReplNode, RoleState, ServerOptions,
};

fn test_opts(name: &str) -> MioOptions {
    MioOptions {
        name: format!("MioDB-{name}"),
        ..MioOptions::small_for_tests()
    }
}

/// Reserves `n` distinct loopback addresses (bind, read, release). A
/// tiny race against other processes — fine for tests.
fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// Node options with a fresh uniquely-named engine per factory call
/// (re-bootstraps must not collide with the pool they replace).
fn node_opts(prefix: &'static str, ack: AckLevel) -> NodeOptions {
    let counter = Arc::new(AtomicU64::new(0));
    let mut opts = NodeOptions::new(Arc::new(move || {
        let n = counter.fetch_add(1, Ordering::Relaxed);
        test_opts(&format!("{prefix}-{n}"))
    }));
    opts.ack_level = ack;
    opts.ack_timeout = Duration::from_millis(1500);
    opts
}

fn wait_until(secs: u64, mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The current leader's index — the highest-epoch believer when a
/// deposed leader has not yet noticed its fate.
fn leader_index(nodes: &[Option<ReplNode>]) -> Option<usize> {
    let mut best: Option<(usize, u64)> = None;
    for (i, n) in nodes.iter().enumerate() {
        if let Some(n) = n {
            if n.is_leader() && best.is_none_or(|(_, e)| n.role().epoch() > e) {
                best = Some((i, n.role().epoch()));
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Leader side for the manual (non-`ReplNode`) tests: engine +
/// replicator as the commit sink + replicated server.
fn start_leader(
    name: &str,
    ack: AckLevel,
    group_size: usize,
) -> (KvServer, Arc<MioDb>, Arc<Replicator>, Arc<RoleState>) {
    let db = Arc::new(MioDb::open(test_opts(name)).unwrap());
    let replicator = Replicator::new(ReplicatorOptions {
        ack_level: ack,
        semi_sync_timeout: Duration::from_secs(2),
        retain_bytes: 64 << 20,
        group_size,
    });
    db.set_commit_sink(Some(replicator.clone() as Arc<dyn ReplicationSink>));
    let role = Arc::new(RoleState::new_leader(1));
    let snap_db = Arc::clone(&db);
    let server = KvServer::start_replicated(
        "127.0.0.1:0",
        Arc::clone(&db) as Arc<dyn KvEngine>,
        ServerOptions::default(),
        ReplConfig::new(
            Some(Arc::clone(&replicator)),
            Some(Box::new(move || engine_snapshot_bytes(&snap_db))),
            Arc::clone(&role),
            "",
        ),
    )
    .unwrap();
    (server, db, replicator, role)
}

fn start_follower(name: &str, leader_addr: SocketAddr) -> (Arc<MioDb>, Follower) {
    let db = Arc::new(MioDb::open(test_opts(name)).unwrap());
    let follower = Follower::start(
        Arc::clone(&db),
        &leader_addr.to_string(),
        FollowerOptions::default(),
    )
    .unwrap();
    (db, follower)
}

fn wait_subscribed(replicator: &Replicator, n: usize) {
    wait_until(5, || replicator.subscriber_count() >= n, "subscription");
}

/// Quorum admission: with a majority of the group unreachable a write is
/// refused with the typed `QuorumLost` — never silently accepted — and
/// recovers as soon as enough followers are back.
#[test]
fn quorum_write_requires_majority() {
    let _g = fault::exclusive();
    // Group of three: the leader needs one connected follower.
    let (leader, _ldb, replicator, _role) = start_leader("qw-leader", AckLevel::Quorum, 3);
    let mut c = KvClient::connect(leader.local_addr()).unwrap();
    match c.put(b"too-early", b"x") {
        Err(Error::QuorumLost { have, need }) => {
            assert_eq!((have, need), (1, 2));
        }
        other => panic!("expected QuorumLost, got {other:?}"),
    }

    let (fdb, follower) = start_follower("qw-follower", leader.local_addr());
    wait_subscribed(&replicator, 1);
    c.put(b"quorum", b"acked").unwrap();
    // A quorum ack means a majority holds the write durably: the
    // follower serves it immediately, no settling sleep.
    assert_eq!(fdb.get(b"quorum").unwrap().as_deref(), Some(&b"acked"[..]));
    assert!(replicator.quorum_acked() >= 1);
    assert!(replicator.quorum_available());

    // Losing the only follower collapses the quorum again.
    follower.stop();
    wait_until(5, || replicator.subscriber_count() == 0, "unsubscribe");
    match c.put(b"too-late", b"x") {
        Err(Error::QuorumLost { .. }) => {}
        other => panic!("expected QuorumLost after follower loss, got {other:?}"),
    }

    leader.shutdown();
    fdb.close().unwrap();
}

/// The replication gauges render into the server's Prometheus text and
/// parse back: `miodb_repl_log_bytes` plus a per-follower
/// `miodb_repl_lag_records{follower="..."}` series.
#[test]
fn repl_metrics_render_and_parse_in_stats() {
    let _g = fault::exclusive();
    let (leader, _ldb, replicator, _role) = start_leader("pm-leader", AckLevel::SemiSync, 2);
    let (fdb, follower) = start_follower("pm-follower", leader.local_addr());
    wait_subscribed(&replicator, 1);

    let mut c = KvClient::connect(leader.local_addr()).unwrap();
    for i in 0..10u32 {
        c.put(format!("m{i}").as_bytes(), b"v").unwrap();
    }
    let text = c.stats().unwrap();

    // Every repl sample line must parse as `name[{labels}] value`.
    let mut seen_log_bytes = false;
    let mut seen_lag = false;
    let mut seen_subscribers = false;
    for line in text.lines() {
        if !line.starts_with("miodb_repl_") {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|e| {
            panic!("unparseable value in {line:?}: {e}");
        });
        match series.split('{').next().unwrap() {
            "miodb_repl_log_bytes" => seen_log_bytes = true,
            "miodb_repl_subscribers" => {
                seen_subscribers = true;
                assert_eq!(value as u64, 1, "one follower subscribed");
            }
            "miodb_repl_lag_records" => {
                seen_lag = true;
                assert!(
                    series.contains("follower=\""),
                    "lag series must be labelled per follower: {series}"
                );
            }
            _ => {}
        }
    }
    assert!(seen_log_bytes, "miodb_repl_log_bytes missing:\n{text}");
    assert!(seen_subscribers, "miodb_repl_subscribers missing:\n{text}");
    assert!(seen_lag, "miodb_repl_lag_records missing:\n{text}");

    follower.stop();
    leader.shutdown();
    fdb.close().unwrap();
}

/// A killed-and-restarted follower resumes streaming from its engine's
/// `last_sequence` — no snapshot, no duplicate applies.
#[test]
fn follower_restart_resumes_from_cursor() {
    let _g = fault::exclusive();
    let (leader, ldb, replicator, _role) = start_leader("fr-leader", AckLevel::Async, 2);
    let (fdb, follower) = start_follower("fr-follower", leader.local_addr());
    wait_subscribed(&replicator, 1);

    let mut c = KvClient::connect(leader.local_addr()).unwrap();
    for i in 0..20u32 {
        c.put(format!("pre{i:02}").as_bytes(), b"v1").unwrap();
    }
    wait_until(
        10,
        || fdb.last_sequence() == ldb.last_sequence(),
        "initial convergence",
    );

    // Kill the follower, keep writing, restart it on the same engine.
    follower.stop();
    let resumed_from = fdb.last_sequence();
    assert!(resumed_from >= 20);
    for i in 0..20u32 {
        c.put(format!("post{i:02}").as_bytes(), b"v2").unwrap();
    }
    let follower2 = Follower::start(
        Arc::clone(&fdb),
        &leader.local_addr().to_string(),
        FollowerOptions::default(),
    )
    .unwrap();
    wait_until(
        10,
        || fdb.last_sequence() == ldb.last_sequence(),
        "post-restart convergence",
    );
    // Streamed the tail only: the cursor never went backwards (a replay
    // from zero would have re-applied `pre*` records the dedup filter
    // must drop) and the log was never truncated past the cursor.
    assert_eq!(follower2.applied(), ldb.last_sequence());
    assert!(
        !follower2.needs_snapshot(),
        "resume must not need a snapshot"
    );
    assert_eq!(fdb.get(b"pre00").unwrap().as_deref(), Some(&b"v1"[..]));
    assert_eq!(fdb.get(b"post19").unwrap().as_deref(), Some(&b"v2"[..]));

    follower2.stop();
    leader.shutdown();
    fdb.close().unwrap();
}

/// Epoch fencing: once a leader observes a higher epoch (here via a vote
/// request), every mutation is refused with the typed `StaleEpoch` —
/// before touching the engine — and its subscriber stream is fenced too.
#[test]
fn deposed_leader_write_fails_with_stale_epoch() {
    let _g = fault::exclusive();
    let (leader, ldb, replicator, role) = start_leader("se-leader", AckLevel::SemiSync, 2);
    let (fdb, follower) = start_follower("se-follower", leader.local_addr());
    wait_subscribed(&replicator, 1);

    let mut c = KvClient::connect(leader.local_addr()).unwrap();
    c.put(b"before", b"fence").unwrap();

    // A candidate at epoch 7 asks for our vote; it is fully caught up so
    // the vote is granted — and the grant deposes this leader.
    let status = vote_rpc(
        &leader.local_addr().to_string(),
        7,
        u64::MAX,
        "127.0.0.99:1",
        Duration::from_millis(500),
    )
    .unwrap();
    assert!(status.granted, "caught-up candidate must win the vote");
    assert_eq!(status.epoch, 7);
    assert!(role.is_deposed());

    // The deposed leader refuses writes with StaleEpoch (not NotLeader:
    // this node *was* the leader and must not be trusted) and the client
    // surfaces it typed, without retry loops.
    match c.put(b"after", b"fence") {
        Err(Error::StaleEpoch { epoch, .. }) => assert_eq!(epoch, 7),
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    assert_eq!(c.observed_epoch(), 7);
    assert_eq!(
        ldb.get(b"after").unwrap(),
        None,
        "a fenced write must never reach the engine"
    );

    // The follower's stream is fenced as well: the sender winds the
    // session down with a final StaleEpoch frame.
    wait_until(
        5,
        || follower.state() == FollowerState::StaleLeader,
        "stream fencing",
    );

    follower.stop();
    leader.shutdown();
    fdb.close().unwrap();
}

/// Two followers hinting at each other must not trap the client: the
/// redirect chase is capped at `max_redirects` hops, surfaces the last
/// `NotLeader` and counts a `redirect_loops` event.
#[test]
fn client_redirect_loop_is_bounded() {
    let _g = fault::exclusive();
    let db_a = Arc::new(MioDb::open(test_opts("rl-a")).unwrap());
    let db_b = Arc::new(MioDb::open(test_opts("rl-b")).unwrap());
    let role_a = Arc::new(RoleState::new_follower(1, ""));
    let srv_a = KvServer::start_replicated(
        "127.0.0.1:0",
        Arc::clone(&db_a) as Arc<dyn KvEngine>,
        ServerOptions::default(),
        ReplConfig::new(None, None, Arc::clone(&role_a), ""),
    )
    .unwrap();
    let role_b = Arc::new(RoleState::new_follower(1, &srv_a.local_addr().to_string()));
    let srv_b = KvServer::start_replicated(
        "127.0.0.1:0",
        Arc::clone(&db_b) as Arc<dyn KvEngine>,
        ServerOptions::default(),
        ReplConfig::new(None, None, Arc::clone(&role_b), ""),
    )
    .unwrap();
    role_a.set_leader_hint(&srv_b.local_addr().to_string());

    let mut c = KvClient::connect_with(
        srv_a.local_addr(),
        ClientOptions {
            max_redirects: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    match c.put(b"nowhere", b"to-go") {
        Err(Error::NotLeader(_)) => {}
        other => panic!("expected NotLeader after the hop cap, got {other:?}"),
    }
    let counters = c.counters();
    assert_eq!(counters.redirects, 3, "exactly max_redirects hops");
    assert_eq!(counters.redirect_loops, 1, "the loop was counted");

    srv_a.shutdown();
    srv_b.shutdown();
    db_a.close().unwrap();
    db_b.close().unwrap();
}

/// Kill the leader of a three-node group: the followers detect the
/// death, elect the best-qualified successor (no operator), and zero
/// quorum-acked writes are lost. The old leader then rejoins as a
/// follower and catches up.
#[test]
fn three_node_automatic_failover_preserves_quorum_acked_writes() {
    let _g = fault::exclusive();
    let addrs = free_addrs(3);
    let opts = node_opts("fo3", AckLevel::Quorum);
    let mut nodes: Vec<Option<ReplNode>> = addrs
        .iter()
        .map(|a| {
            Some(
                ReplNode::start(
                    &GroupConfig {
                        self_addr: a.clone(),
                        peers: addrs.clone(),
                        initial_leader: addrs[0].clone(),
                    },
                    opts.clone(),
                )
                .unwrap(),
            )
        })
        .collect();
    wait_until(
        10,
        || nodes[0].as_ref().unwrap().replicator().subscriber_count() == 2,
        "both followers subscribed",
    );

    let oracle = DurableOracle::new();
    let mut c = KvClient::connect(addrs[0].as_str()).unwrap();
    for i in 0..25u32 {
        let key = format!("q{i:02}").into_bytes();
        let value = format!("v{i}").into_bytes();
        let token = oracle.begin_put(&key, &value);
        c.put(&key, &value).unwrap();
        oracle.ack(token);
    }

    // Crash. Everything quorum-acked before this instant must survive.
    let crash_ns = oracle.now_ns();
    let engine0 = nodes[0].take().unwrap().kill();

    wait_until(20, || leader_index(&nodes).is_some(), "automatic promotion");
    let li = leader_index(&nodes).unwrap();
    let new_leader = nodes[li].as_ref().unwrap();
    assert!(
        new_leader.role().epoch() >= 2,
        "promotion advances the epoch"
    );
    assert_eq!(new_leader.elections_won(), 1);
    oracle
        .verify_engine(new_leader.engine().as_ref(), crash_ns)
        .unwrap_or_else(|v| panic!("quorum-acked write lost in failover: {v:?}"));

    // The group keeps taking quorum writes (2 of 3 members remain).
    wait_until(
        10,
        || new_leader.replicator().subscriber_count() >= 1,
        "surviving follower re-subscribed",
    );
    let mut c2 = KvClient::connect(new_leader.addr()).unwrap();
    c2.put(b"post-failover", b"accepted").unwrap();

    // Stale-leader rejoin: the old leader restarts pointing at the
    // successor, streams (or snapshots) itself back and stays follower.
    let rejoin = ReplNode::start_with_engine(
        engine0,
        &GroupConfig {
            self_addr: addrs[0].clone(),
            peers: addrs.clone(),
            initial_leader: new_leader.addr().to_string(),
        },
        opts.clone(),
    )
    .unwrap();
    wait_until(
        20,
        || {
            rejoin
                .engine()
                .get(b"post-failover")
                .ok()
                .flatten()
                .as_deref()
                == Some(&b"accepted"[..])
        },
        "old leader caught up",
    );
    assert!(!rejoin.is_leader(), "the rejoined node must stay follower");

    rejoin.shutdown().unwrap();
    for n in nodes.into_iter().flatten() {
        n.shutdown().unwrap();
    }
}

/// Partition the leader away from its followers: quorum writes degrade
/// to the typed `QuorumLost` (never silent acceptance), the majority
/// side elects a successor, and on heal the stale leader discovers the
/// higher epoch, deposes itself and rejoins as a follower.
#[test]
fn partitioned_leader_degrades_to_quorum_lost_then_rejoins() {
    let _g = fault::exclusive();
    let addrs = free_addrs(3);
    let opts = node_opts("pt3", AckLevel::Quorum);
    let nodes: Vec<Option<ReplNode>> = addrs
        .iter()
        .map(|a| {
            Some(
                ReplNode::start(
                    &GroupConfig {
                        self_addr: a.clone(),
                        peers: addrs.clone(),
                        initial_leader: addrs[0].clone(),
                    },
                    opts.clone(),
                )
                .unwrap(),
            )
        })
        .collect();
    let node0 = nodes[0].as_ref().unwrap();
    wait_until(
        10,
        || node0.replicator().subscriber_count() == 2,
        "both followers subscribed",
    );
    let mut c = KvClient::connect(addrs[0].as_str()).unwrap();
    c.put(b"pre-partition", b"replicated").unwrap();

    node0.partition(true);
    wait_until(
        10,
        || node0.replicator().subscriber_count() == 0,
        "streams severed",
    );
    // Client traffic is still served — and refused typed.
    match c.put(b"during-partition", b"rejected") {
        Err(Error::QuorumLost { .. }) => {}
        other => panic!("partitioned quorum leader must refuse typed, got {other:?}"),
    }

    // The majority side moves on without us.
    wait_until(
        20,
        || {
            nodes[1..]
                .iter()
                .flatten()
                .any(|n| n.is_leader() && n.replicator().subscriber_count() >= 1)
        },
        "majority-side election",
    );
    let li = leader_index(&nodes[1..]).unwrap() + 1;
    let new_leader = nodes[li].as_ref().unwrap();
    let new_epoch = new_leader.role().epoch();
    assert!(new_epoch >= 2);
    let mut c2 = KvClient::connect(new_leader.addr()).unwrap();
    c2.put(b"post-election", b"accepted").unwrap();

    // Heal: the stale leader probes, observes the successor's epoch,
    // deposes itself and streams the new history as a follower.
    node0.partition(false);
    wait_until(
        20,
        || !node0.is_leader() && node0.role().epoch() >= new_epoch,
        "stale leader deposed on heal",
    );
    wait_until(
        20,
        || {
            node0
                .engine()
                .get(b"post-election")
                .ok()
                .flatten()
                .as_deref()
                == Some(&b"accepted"[..])
        },
        "healed node caught up",
    );
    // A client pointed at the healed ex-leader is redirected to the
    // successor once the node settles into its follower role.
    let mut c3 = KvClient::connect(addrs[0].as_str()).unwrap();
    wait_until(
        10,
        || c3.put(b"via-redirect", b"routed").is_ok(),
        "redirect through healed follower",
    );

    for n in nodes.into_iter().flatten() {
        n.shutdown().unwrap();
    }
}

/// A follower that fell behind a truncated log re-bootstraps *itself*:
/// snapshot fetch + restore + engine swap, with backoff across an
/// injected snapshot failure — no operator in the loop.
#[test]
fn follower_self_bootstraps_after_truncation() {
    let _g = fault::exclusive();
    let addrs = free_addrs(2);
    let mut opts = node_opts("sb2", AckLevel::Async);
    // Tiny retention: the log truncates far past a dead follower.
    opts.retain_bytes = 2048;
    let group = |leader: &str| GroupConfig {
        self_addr: String::new(), // filled per node below
        peers: addrs.clone(),
        initial_leader: leader.to_string(),
    };
    let leader = ReplNode::start(
        &GroupConfig {
            self_addr: addrs[0].clone(),
            ..group(&addrs[0])
        },
        opts.clone(),
    )
    .unwrap();
    let follower = ReplNode::start(
        &GroupConfig {
            self_addr: addrs[1].clone(),
            ..group(&addrs[0])
        },
        opts.clone(),
    )
    .unwrap();
    wait_until(
        10,
        || leader.replicator().subscriber_count() == 1,
        "follower subscribed",
    );
    let mut c = KvClient::connect(addrs[0].as_str()).unwrap();
    c.put(b"early", b"streamed").unwrap();
    wait_until(
        10,
        || follower.engine().get(b"early").ok().flatten().is_some(),
        "initial convergence",
    );

    // Kill the follower, then write enough to truncate the log front
    // well past its cursor.
    let engine1 = follower.kill();
    for i in 0..300u32 {
        c.put(format!("bulk{i:03}").as_bytes(), &[7u8; 64]).unwrap();
    }

    // One injected snapshot failure: the node must back off and retry on
    // its own.
    fault::arm(points::REPL_SNAPSHOT, FaultPolicy::FailOnce(1));
    let follower = ReplNode::start_with_engine(
        engine1,
        &GroupConfig {
            self_addr: addrs[1].clone(),
            ..group(&addrs[0])
        },
        opts.clone(),
    )
    .unwrap();
    wait_until(20, || follower.bootstrap_count() >= 1, "self bootstrap");
    fault::disarm_all();
    wait_until(
        20,
        || {
            follower.engine().get(b"bulk299").ok().flatten().is_some()
                && follower.engine().get(b"early").ok().flatten().is_some()
        },
        "post-bootstrap convergence",
    );
    assert!(!follower.is_leader());

    follower.shutdown().unwrap();
    leader.shutdown().unwrap();
}

/// Fast client options for the chaos writers: short timeouts, few
/// retries — failures are the point, the history records them.
fn chaos_client_opts() -> ClientOptions {
    ClientOptions {
        read_timeout: Some(Duration::from_secs(3)),
        write_timeout: Some(Duration::from_secs(3)),
        max_retries: 1,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
        max_redirects: 4,
    }
}

/// One durable write attempt loop for the chaos matrix: rotate across
/// the group, record every attempt in the history (acked / maybe /
/// refused), and only count oracle acks for definite successes. Each
/// attempt writes a distinct value so the linearizability pass never
/// sees ambiguous duplicates.
fn chaos_put(
    addrs: &[String],
    log: &mut ProcessLog,
    oracle: Option<&DurableOracle>,
    key: &[u8],
    value_base: &str,
) -> bool {
    for attempt in 0..40u32 {
        let addr = &addrs[attempt as usize % addrs.len()];
        let Ok(mut c) = KvClient::connect_with(addr.as_str(), chaos_client_opts()) else {
            std::thread::sleep(Duration::from_millis(25));
            continue;
        };
        let value = format!("{value_base}-a{attempt}").into_bytes();
        let token = oracle.map(|o| o.begin_put(key, &value));
        if log.client_put(&mut c, key, &value).is_ok() {
            if let (Some(o), Some(t)) = (oracle, token) {
                o.ack(t);
            }
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// One chaos phase: two writers hammer the group (shared keys feed the
/// linearizability pass, private keys feed the durable oracle) while
/// the caller injects failures through `mid_phase`.
fn chaos_phase(
    addrs: &[String],
    oracle: &DurableOracle,
    phase: u32,
    mid_phase: impl FnOnce() + Send,
) -> History {
    let recorder = HistoryRecorder::new();
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..2u32)
            .map(|w| {
                let mut log = recorder.log();
                s.spawn(move || {
                    let mut acked = 0u32;
                    for i in 0..12u32 {
                        let value_base = format!("p{phase}w{w}i{i}");
                        let ok = if i % 2 == 0 {
                            // Shared keyspace: cross-writer contention for
                            // the linearizability checker; the durable
                            // oracle skips these (single-writer floor).
                            let key = format!("fk{}", i % 6).into_bytes();
                            chaos_put(addrs, &mut log, None, &key, &value_base)
                        } else {
                            let key = format!("w{w}p{phase}k{}", i % 4).into_bytes();
                            chaos_put(addrs, &mut log, Some(oracle), &key, &value_base)
                        };
                        if ok {
                            acked += 1;
                        }
                    }
                    acked
                })
            })
            .collect();
        mid_phase();
        let acked: u32 = writers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(
            acked > 0,
            "phase {phase}: writers must make progress through the chaos"
        );
    });
    recorder.take_history()
}

/// The acceptance chaos matrix: leader kill → stale-leader rejoin →
/// follower kill/restart → partition during an election seeded with
/// dropped vote RPCs. Writers run *through* every transition; at the end
/// the merged history is per-key linearizable and the durable oracle
/// proves zero quorum-acked writes lost.
#[test]
fn chaos_matrix_survives_seeded_failures() {
    let _g = fault::exclusive();
    let addrs = free_addrs(3);
    let opts = node_opts("cx3", AckLevel::Quorum);
    let make_group = |i: usize, leader: &str| GroupConfig {
        self_addr: addrs[i].clone(),
        peers: addrs.clone(),
        initial_leader: leader.to_string(),
    };
    let mut nodes: Vec<Option<ReplNode>> = (0..3)
        .map(|i| Some(ReplNode::start(&make_group(i, &addrs[0]), opts.clone()).unwrap()))
        .collect();
    wait_until(
        10,
        || nodes[0].as_ref().unwrap().replicator().subscriber_count() == 2,
        "group assembled",
    );

    let oracle = DurableOracle::new();
    let mut phases: Vec<History> = Vec::new();

    // Phase 0: healthy baseline.
    phases.push(chaos_phase(&addrs, &oracle, 0, || {}));

    // Phase 1: kill the leader mid-writes; the survivors must elect.
    let engine0 = {
        let n0 = nodes[0].take().unwrap();
        std::thread::sleep(Duration::from_millis(150));
        n0.kill()
    };
    phases.push(chaos_phase(&addrs, &oracle, 1, || {}));
    wait_until(20, || leader_index(&nodes).is_some(), "phase 1 promotion");

    // Phase 2: stale-leader rejoin — the old leader restarts pointing at
    // the successor and must end up a follower (snapshotting if its
    // unacked suffix diverged).
    let successor = nodes[leader_index(&nodes).unwrap()]
        .as_ref()
        .unwrap()
        .addr()
        .to_string();
    nodes[0] = Some(
        ReplNode::start_with_engine(engine0, &make_group(0, &successor), opts.clone()).unwrap(),
    );
    phases.push(chaos_phase(&addrs, &oracle, 2, || {}));
    assert!(
        !nodes[0].as_ref().unwrap().is_leader(),
        "a rejoined stale leader must not lead"
    );

    // Phase 3: kill a follower (quorum 2-of-3 still holds), restart it.
    let fi = (0..3)
        .find(|&i| !nodes[i].as_ref().unwrap().is_leader())
        .unwrap();
    let enginef = nodes[fi].take().unwrap().kill();
    phases.push(chaos_phase(&addrs, &oracle, 3, || {}));
    let successor = nodes[leader_index(&nodes).unwrap()]
        .as_ref()
        .unwrap()
        .addr()
        .to_string();
    nodes[fi] = Some(
        ReplNode::start_with_engine(enginef, &make_group(fi, &successor), opts.clone()).unwrap(),
    );

    // Phase 4: partition the leader during an election seeded with
    // dropped vote RPCs — elections must retry through the drops.
    fault::arm(
        points::REPL_VOTE_DROP,
        FaultPolicy::FailProbability {
            num: 1,
            den: 3,
            seed: 11,
        },
    );
    let pi = leader_index(&nodes).unwrap();
    nodes[pi].as_ref().unwrap().partition(true);
    phases.push(chaos_phase(&addrs, &oracle, 4, || {}));
    wait_until(
        30,
        || {
            (0..3).any(|i| {
                i != pi
                    && nodes[i]
                        .as_ref()
                        .is_some_and(|n| n.is_leader() && n.replicator().subscriber_count() >= 1)
            })
        },
        "election through dropped votes",
    );
    fault::disarm_all();
    nodes[pi].as_ref().unwrap().partition(false);
    let final_epoch = nodes
        .iter()
        .flatten()
        .map(|n| n.role().epoch())
        .max()
        .unwrap();
    wait_until(
        30,
        || !nodes[pi].as_ref().unwrap().is_leader(),
        "partitioned leader deposed on heal",
    );

    // Phase 5: calm — the healed group takes writes again.
    phases.push(chaos_phase(&addrs, &oracle, 5, || {}));

    // Oracles. Every write quorum-acked at ANY point must be present on
    // the final leader — zero acked writes lost across the whole matrix.
    let li = leader_index(&nodes).unwrap();
    let final_leader = nodes[li].as_ref().unwrap();
    assert!(final_leader.role().epoch() >= final_epoch.min(2));
    oracle
        .verify_engine(final_leader.engine().as_ref(), oracle.now_ns())
        .unwrap_or_else(|v| panic!("quorum-acked write lost in the chaos matrix: {v:?}"));
    let merged = History::merge_sequential(phases);
    let verdict = check_history(&merged);
    assert!(
        verdict.is_linearizable(),
        "merged chaos history not linearizable: {verdict:?}"
    );

    for n in nodes.into_iter().flatten() {
        n.shutdown().unwrap();
    }
}
