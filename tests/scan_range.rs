//! Tests of the bounded range-scan API across all engines.

use std::sync::Arc;

use miodb::baselines::{MatrixKv, MatrixKvOptions};
use miodb::lsm::LsmOptions;
use miodb::pmem::DeviceModel;
use miodb::{KvEngine, MioDb, MioOptions, Stats};

fn engines() -> Vec<Box<dyn KvEngine>> {
    vec![
        Box::new(MioDb::open(MioOptions::small_for_tests()).unwrap()),
        Box::new(
            MatrixKv::open(
                MatrixKvOptions {
                    memtable_bytes: 32 * 1024,
                    container_bytes: 128 * 1024,
                    lsm: LsmOptions {
                        table_bytes: 16 * 1024,
                        level1_max_bytes: 64 * 1024,
                        ..LsmOptions::default()
                    },
                    table_device: DeviceModel::nvm_unthrottled(),
                    row_device: DeviceModel::nvm_unthrottled(),
                    ..MatrixKvOptions::default()
                },
                Arc::new(Stats::new()),
            )
            .unwrap(),
        ),
    ]
}

#[test]
fn range_respects_bounds_and_limit() {
    for engine in engines() {
        for i in 0..500u32 {
            engine.put(format!("key{i:05}").as_bytes(), b"v").unwrap();
        }
        engine.wait_idle().unwrap();

        // Bounded range.
        let out = engine.scan_range(b"key00100", b"key00110", 100).unwrap();
        assert_eq!(out.len(), 10, "{}", engine.name());
        assert_eq!(out[0].key, b"key00100");
        assert_eq!(out.last().unwrap().key.as_slice(), b"key00109");

        // Limit smaller than the range.
        let out = engine.scan_range(b"key00100", b"key00400", 5).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out[4].key, b"key00104");

        // Empty range.
        assert!(engine
            .scan_range(b"key00110", b"key00110", 10)
            .unwrap()
            .is_empty());
        assert!(engine.scan_range(b"zzz", b"zzzz", 10).unwrap().is_empty());

        // End past the last key returns everything remaining.
        let out = engine.scan_range(b"key00495", b"zzz", 100).unwrap();
        assert_eq!(out.len(), 5);
    }
}

#[test]
fn range_excludes_deleted_keys() {
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    for i in 0..50u32 {
        db.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
    }
    for i in (0..50u32).step_by(2) {
        db.delete(format!("k{i:03}").as_bytes()).unwrap();
    }
    let out = db.scan_range(b"k000", b"k020", 100).unwrap();
    let keys: Vec<String> = out
        .iter()
        .map(|e| String::from_utf8_lossy(&e.key).into_owned())
        .collect();
    assert_eq!(
        keys,
        vec!["k001", "k003", "k005", "k007", "k009", "k011", "k013", "k015", "k017", "k019"]
    );
}
