//! Crash-consistency integration tests (paper §4.7): snapshot the NVM
//! pool at adversarial instants, restore into a fresh "process lifetime",
//! recover, and verify durability of everything written before the crash.

use std::sync::Arc;

use miodb::pmem::PmemPool;
use miodb::{KvEngine, MioDb, MioOptions, Stats};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("miodb-it-{}-{name}", std::process::id()))
}

fn value_for(i: u32) -> Vec<u8> {
    format!("value-{i}-{}", "x".repeat((i % 200) as usize)).into_bytes()
}

fn recover_from(path: &std::path::Path, opts: &MioOptions) -> MioDb {
    let pool = PmemPool::restore_from_file(path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
    MioDb::recover(pool, opts.clone()).unwrap()
}

#[test]
fn crash_after_quiescence_loses_nothing() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("quiet");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for i in 0..2_000u32 {
            db.put(format!("key{i:06}").as_bytes(), &value_for(i))
                .unwrap();
        }
        db.wait_idle().unwrap();
        db.snapshot(&path).unwrap();
    }
    let db = recover_from(&path, &opts);
    for i in 0..2_000u32 {
        assert_eq!(
            db.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
            value_for(i),
            "key{i:06}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn crash_mid_load_replays_wal() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("midload");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for i in 0..3_000u32 {
            db.put(format!("key{i:06}").as_bytes(), &value_for(i))
                .unwrap();
        }
        // No wait_idle: flushes and merges are in full flight.
        db.snapshot(&path).unwrap();
    }
    let db = recover_from(&path, &opts);
    for i in (0..3_000u32).step_by(7) {
        assert_eq!(
            db.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
            value_for(i),
            "key{i:06} lost in crash"
        );
    }
    // The recovered engine keeps compacting and accepting writes.
    for i in 3_000..3_500u32 {
        db.put(format!("key{i:06}").as_bytes(), &value_for(i))
            .unwrap();
    }
    db.wait_idle().unwrap();
    assert_eq!(db.get(b"key003400").unwrap().unwrap(), value_for(3_400));
    std::fs::remove_file(&path).ok();
}

#[test]
fn deletes_survive_crash() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("deletes");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for i in 0..800u32 {
            db.put(format!("key{i:05}").as_bytes(), &value_for(i))
                .unwrap();
        }
        for i in (0..800u32).step_by(2) {
            db.delete(format!("key{i:05}").as_bytes()).unwrap();
        }
        db.snapshot(&path).unwrap();
    }
    let db = recover_from(&path, &opts);
    for i in 0..800u32 {
        let got = db.get(format!("key{i:05}").as_bytes()).unwrap();
        if i % 2 == 0 {
            assert!(got.is_none(), "deleted key{i:05} resurrected");
        } else {
            assert_eq!(got.unwrap(), value_for(i), "key{i:05} lost");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn repeated_crashes_converge() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("repeat");
    // Lifetime 1: initial data, crash mid-flight.
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for i in 0..1_000u32 {
            db.put(format!("key{i:05}").as_bytes(), b"gen1").unwrap();
        }
        db.snapshot(&path).unwrap();
    }
    // Lifetimes 2..4: recover, overwrite a slice, crash again.
    for gen in 2..5u32 {
        let db = recover_from(&path, &opts);
        for i in (0..1_000u32).step_by(gen as usize) {
            db.put(
                format!("key{i:05}").as_bytes(),
                format!("gen{gen}").as_bytes(),
            )
            .unwrap();
        }
        db.snapshot(&path).unwrap();
    }
    // Final lifetime: every key must hold the newest generation that wrote
    // it.
    let db = recover_from(&path, &opts);
    for i in 0..1_000u32 {
        let got = db.get(format!("key{i:05}").as_bytes()).unwrap().unwrap();
        let expected = if i % 4 == 0 {
            "gen4"
        } else if i % 3 == 0 {
            "gen3"
        } else if i % 2 == 0 {
            "gen2"
        } else {
            "gen1"
        };
        assert_eq!(got, expected.as_bytes(), "key{i:05}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn scan_after_recovery_is_sorted_and_complete() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("scan");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for i in 0..1_500u32 {
            db.put(format!("key{i:05}").as_bytes(), &value_for(i))
                .unwrap();
        }
        db.snapshot(&path).unwrap();
    }
    let db = recover_from(&path, &opts);
    let out = db.scan(b"key00500", 100).unwrap();
    assert_eq!(out.len(), 100);
    assert_eq!(out[0].key, b"key00500");
    for w in out.windows(2) {
        assert!(w[0].key < w[1].key);
    }
    std::fs::remove_file(&path).ok();
}

/// Bounded, fixed-seed tier-1 variant of `crash_fuzz --concurrent`: the
/// snapshot is taken from this thread while writer threads are mid-churn,
/// so it freezes the pool mid-flush / mid-merge. Quiesced base keys must
/// survive exactly; racing churn keys may be present or absent but never
/// torn.
#[test]
fn concurrent_snapshot_while_writers_run() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const WRITERS: u32 = 2;
    const CHURN_SLOTS: u64 = 300;
    let opts = MioOptions::small_for_tests();
    let path = tmp("concurrent");
    for seed in [3u64, 17] {
        let db = Arc::new(MioDb::open(opts.clone()).unwrap());
        for i in 0..600u32 {
            db.put(format!("base{i:05}").as_bytes(), b"base-value")
                .unwrap();
        }
        db.wait_idle().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..WRITERS)
            .map(|t| {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let k = format!("churn{t:02}-{:05}", n % CHURN_SLOTS);
                        let v = format!("churnval-{t:02}-{n:08}");
                        db.put(k.as_bytes(), v.as_bytes()).unwrap();
                        n += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(2 + seed));
        db.snapshot(&path).unwrap();
        stop.store(true, Ordering::Release);
        for w in writers {
            w.join().unwrap();
        }
        db.close().unwrap();
        drop(db);

        let db = recover_from(&path, &opts);
        for i in 0..600u32 {
            assert_eq!(
                db.get(format!("base{i:05}").as_bytes()).unwrap().unwrap(),
                b"base-value",
                "seed {seed}: base{i:05} lost"
            );
        }
        for t in 0..WRITERS {
            for j in 0..CHURN_SLOTS {
                let k = format!("churn{t:02}-{j:05}");
                if let Some(v) = db.get(k.as_bytes()).unwrap() {
                    let prefix = format!("churnval-{t:02}-");
                    assert!(
                        v.starts_with(prefix.as_bytes()) && v.len() == prefix.len() + 8,
                        "seed {seed}: torn churn value for {k}"
                    );
                }
            }
        }
        db.put(b"post-recovery-probe", b"ok").unwrap();
        db.close().unwrap();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn recovery_rejects_mismatched_level_count() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("levels");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        db.put(b"k", b"v").unwrap();
        db.snapshot(&path).unwrap();
    }
    let pool = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
    let bad = MioOptions {
        elastic_levels: opts.elastic_levels + 2,
        ..opts.clone()
    };
    assert!(
        MioDb::recover(pool, bad).is_err(),
        "level mismatch must be rejected"
    );
    std::fs::remove_file(&path).ok();
}
