//! Fault-matrix integration harness (DESIGN.md §10): arm each registered
//! fault point against a live engine (and the network service layer) and
//! assert the robustness contract — every injected failure surfaces as a
//! **typed error or full recovery**: no panics, no loss of acknowledged
//! writes, and the server keeps serving unaffected connections.
//!
//! Fault points are process-global, so every test here takes
//! [`fault::exclusive`] first: the guard serializes fault tests against each
//! other and disarms everything on drop (even mid-panic). That is also why
//! these tests live in their own integration-test binary — arming a point
//! in a shared binary would inject failures into unrelated concurrent tests.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb::common::fault::{self, FaultPolicy};
use miodb::pmem::PmemPool;
use miodb::{
    ClientOptions, Error, KvClient, KvEngine, KvServer, MioDb, MioOptions, ServerOptions, Stats,
};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("miodb-fault-{}-{name}", std::process::id()))
}

/// Options small enough that a few hundred writes exercise flushes,
/// zero-copy merges *and* the lazy-copy drain into the repository.
fn busy_opts() -> MioOptions {
    MioOptions {
        lazy_copy_trigger: 1,
        ..MioOptions::small_for_tests()
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn value(i: u32) -> Vec<u8> {
    format!("value-{i}-{}", "v".repeat(96)).into_bytes()
}

/// Full key-space check against the shadow model: every acknowledged write
/// must be readable with exactly the acknowledged value.
fn verify_model(db: &MioDb, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    for (k, v) in model {
        assert_eq!(
            db.get(k).unwrap().as_deref(),
            Some(v.as_slice()),
            "acknowledged key {} lost or wrong",
            String::from_utf8_lossy(k)
        );
    }
}

/// Writes `n` keys, recording acknowledged writes in the shadow model and
/// failed writes (typed errors are acceptable while a fault is armed) in a
/// separate list for the absent-or-exact check.
fn load(db: &MioDb, n: u32, model: &mut BTreeMap<Vec<u8>, Vec<u8>>) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut failed = Vec::new();
    for i in 0..n {
        let (k, v) = (key(i), value(i));
        match db.put(&k, &v) {
            Ok(()) => {
                model.insert(k, v);
            }
            Err(e) => {
                // The contract while a fault is armed: a *typed* error, never
                // a panic. The write is unacknowledged, so afterwards the key
                // may hold either outcome.
                assert!(!e.to_string().is_empty());
                failed.push((k, v));
            }
        }
    }
    failed
}

#[test]
fn flush_fault_is_retried_without_data_loss() {
    let _g = fault::exclusive();
    fault::arm(fault::points::ENGINE_FLUSH, FaultPolicy::FailOnce(1));
    let db = MioDb::open(busy_opts()).unwrap();
    let mut model = BTreeMap::new();
    let failed = load(&db, 1_500, &mut model);
    assert!(
        failed.is_empty(),
        "foreground writes must not see the fault"
    );
    db.wait_idle().unwrap();
    assert!(
        fault::triggered(fault::points::ENGINE_FLUSH) >= 1,
        "workload never reached the flush fault point"
    );
    assert_eq!(
        db.background_error(),
        None,
        "one injected flush failure must be absorbed by retry"
    );
    verify_model(&db, &model);
    db.close().unwrap();
}

#[test]
fn compaction_fault_is_retried_without_data_loss() {
    let _g = fault::exclusive();
    fault::arm(fault::points::ENGINE_COMPACTION, FaultPolicy::FailOnce(1));
    let db = MioDb::open(busy_opts()).unwrap();
    let mut model = BTreeMap::new();
    let failed = load(&db, 3_000, &mut model);
    assert!(failed.is_empty());
    db.wait_idle().unwrap();
    assert!(
        fault::triggered(fault::points::ENGINE_COMPACTION) >= 1,
        "workload never triggered a zero-copy merge"
    );
    assert_eq!(db.background_error(), None);
    verify_model(&db, &model);
    db.close().unwrap();
}

#[test]
fn lazy_copy_fault_is_retried_without_data_loss() {
    let _g = fault::exclusive();
    fault::arm(fault::points::ENGINE_LAZY, FaultPolicy::FailOnce(1));
    let db = MioDb::open(busy_opts()).unwrap();
    let mut model = BTreeMap::new();
    // Enough volume to cascade merges down to the bottom buffer level,
    // whose drain into the repository is the lazy-copy under test.
    for i in 0..4_000u32 {
        let (k, v) = (key(i), vec![42u8; 256]);
        db.put(&k, &v).unwrap();
        model.insert(k, v);
    }
    db.wait_idle().unwrap();
    assert!(
        fault::triggered(fault::points::ENGINE_LAZY) >= 1,
        "workload never reached the lazy-copy drain"
    );
    assert_eq!(db.background_error(), None);
    verify_model(&db, &model);
    db.close().unwrap();
}

#[test]
fn alloc_faults_surface_typed_errors_and_engine_recovers() {
    let _g = fault::exclusive();
    fault::arm(
        fault::points::PMEM_ALLOC,
        FaultPolicy::FailProbability {
            num: 1,
            den: 40,
            seed: 0xA110C,
        },
    );
    let db = MioDb::open(busy_opts()).unwrap();
    let mut model = BTreeMap::new();
    let failed = load(&db, 2_000, &mut model);
    assert!(fault::hits(fault::points::PMEM_ALLOC) >= 1);
    fault::disarm(fault::points::PMEM_ALLOC);
    db.wait_idle().unwrap();
    assert_eq!(
        db.background_error(),
        None,
        "probabilistic alloc faults must be absorbed by background retries"
    );
    verify_model(&db, &model);
    // An unacknowledged write may hold either outcome, but never a torn one.
    for (k, v) in &failed {
        match db.get(k).unwrap() {
            None => {}
            Some(got) => assert_eq!(&got, v, "failed write half-applied"),
        }
    }
    // The engine is fully writable again once the fault is gone.
    db.put(b"post-fault-probe", b"ok").unwrap();
    assert_eq!(
        db.get(b"post-fault-probe").unwrap().as_deref(),
        Some(&b"ok"[..])
    );
    db.close().unwrap();
}

#[test]
fn wal_pre_crc_fault_is_a_transient_typed_error() {
    let _g = fault::exclusive();
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    db.put(b"before", b"1").unwrap();
    fault::arm(fault::points::WAL_APPEND_PRE_CRC, FaultPolicy::FailOnce(1));
    let err = db.put(b"doomed", b"2").unwrap_err();
    assert!(
        !matches!(err, Error::Background(_)),
        "transient WAL fault must not degrade the engine: {err}"
    );
    // Nothing reached the log, so the tail stays clean and the very next
    // write succeeds without rotation.
    db.put(b"after", b"3").unwrap();
    assert_eq!(db.get(b"before").unwrap().as_deref(), Some(&b"1"[..]));
    assert_eq!(db.get(b"after").unwrap().as_deref(), Some(&b"3"[..]));
    assert_eq!(db.get(b"doomed").unwrap(), None, "failed write applied");
    db.close().unwrap();
}

#[test]
fn torn_wal_tail_recovery_keeps_every_acknowledged_write() {
    let _g = fault::exclusive();
    let opts = MioOptions::small_for_tests();
    let path = tmp("torn-tail");
    let mut model = BTreeMap::new();
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for i in 0..300u32 {
            let (k, v) = (key(i), value(i));
            db.put(&k, &v).unwrap();
            model.insert(k, v);
        }
        db.wait_idle().unwrap();
        fault::arm(fault::points::WAL_APPEND_TORN, FaultPolicy::TornWrite);
        let mut torn = None;
        for i in 1_000..1_200u32 {
            let (k, v) = (key(i), value(i));
            match db.put(&k, &v) {
                Ok(()) => {
                    model.insert(k, v);
                }
                Err(e) => {
                    torn = Some((k, e));
                    break;
                }
            }
        }
        let (torn_key, torn_err) = torn.expect("torn-write fault never fired");
        assert!(!torn_err.to_string().is_empty());
        // The log tail is poisoned: accepting more appends past the tear
        // would silently lose them at replay, so they must fail instead.
        let poisoned = db.put(b"zz-after-torn", b"x");
        assert!(poisoned.is_err(), "append past a torn tail must be refused");
        // Crash now. Replay must stop at the tear and keep the prefix.
        db.snapshot(&path).unwrap();
        drop(torn_key);
    }
    let pool = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
    let db = MioDb::recover(pool, opts.clone()).unwrap();
    verify_model(&db, &model);
    assert_eq!(db.get(&key(1_200)).unwrap(), None);
    // Recovery rebuilt a clean log: the engine accepts writes again.
    db.put(b"post-recovery", b"alive").unwrap();
    assert_eq!(
        db.get(b"post-recovery").unwrap().as_deref(),
        Some(&b"alive"[..])
    );
    db.close().unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_and_restore_faults_are_typed_and_retry_recovers() {
    let _g = fault::exclusive();
    let opts = MioOptions::small_for_tests();
    let path = tmp("snap-fault");
    let db = MioDb::open(opts.clone()).unwrap();
    let mut model = BTreeMap::new();
    let failed = load(&db, 500, &mut model);
    assert!(failed.is_empty());
    db.wait_idle().unwrap();

    // Torn persist: typed I/O error, and the half-written file must be
    // rejected — not silently restored — by a later lifetime.
    fault::arm(
        fault::points::PMEM_SNAPSHOT_PERSIST,
        FaultPolicy::FailOnce(1),
    );
    assert!(db.snapshot(&path).is_err(), "torn persist must be reported");
    assert!(
        PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new())).is_err(),
        "half-written snapshot must not restore"
    );
    // One-shot fault consumed: the retry persists the full image.
    db.snapshot(&path).unwrap();
    db.close().unwrap();

    // Restore-time corruption: typed error first, clean recovery second.
    fault::arm(fault::points::PMEM_RESTORE, FaultPolicy::FailOnce(1));
    let err = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new()));
    assert!(matches!(err, Err(Error::Corruption(_))), "got {err:?}");
    let pool = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
    let db = MioDb::recover(pool, opts).unwrap();
    verify_model(&db, &model);
    db.close().unwrap();
    std::fs::remove_file(&path).ok();
}

/// The matrix: seeds × engine-reachable fault points, probabilistic
/// injection under a live workload. For every combination the engine must
/// end healthy (no sticky background error), hold every acknowledged write,
/// and keep serving.
#[test]
fn fault_matrix_sweep() {
    let _g = fault::exclusive();
    let points = [
        fault::points::ENGINE_FLUSH,
        fault::points::ENGINE_COMPACTION,
        fault::points::ENGINE_LAZY,
        fault::points::WAL_APPEND_PRE_CRC,
        fault::points::PMEM_ALLOC,
    ];
    for seed in [11u64, 23, 47] {
        for point in points {
            fault::arm(
                point,
                FaultPolicy::FailProbability {
                    num: 1,
                    den: 48,
                    seed,
                },
            );
            let db = MioDb::open(busy_opts()).unwrap();
            let mut model = BTreeMap::new();
            let failed = load(&db, 800, &mut model);
            let (hits, triggered) = (fault::hits(point), fault::triggered(point));
            fault::disarm(point);
            db.wait_idle().unwrap();
            assert_eq!(
                db.background_error(),
                None,
                "[seed {seed}] {point}: engine degraded"
            );
            verify_model(&db, &model);
            for (k, v) in &failed {
                match db.get(k).unwrap() {
                    None => {}
                    Some(got) => assert_eq!(&got, v, "[seed {seed}] {point}: half-applied write"),
                }
            }
            db.put(b"matrix-probe", b"ok").unwrap();
            db.close().unwrap();
            println!(
                "matrix seed={seed} point={point}: hits={hits} triggered={triggered} \
                 acked={} failed={}",
                model.len(),
                failed.len()
            );
        }
    }
}

/// The linearizability matrix (ISSUE 5 acceptance): 8 seeds × the
/// engine-reachable fault points, with the seeded stress driver recording
/// every outcome and the Wing–Gong checker validating the history. Writes
/// failed by an injected fault are recorded as ambiguous ("may or may not
/// have occurred"); everything acknowledged must be explained by a single
/// linearization order per key.
#[test]
fn lincheck_matrix_under_faults() {
    use miodb::check::{check_history, run_stress, StressSpec};
    let _g = fault::exclusive();
    let points = [
        fault::points::ENGINE_FLUSH,
        fault::points::ENGINE_COMPACTION,
        fault::points::ENGINE_LAZY,
        fault::points::WAL_APPEND_PRE_CRC,
        fault::points::PMEM_ALLOC,
    ];
    for seed in 0..8u64 {
        for point in points {
            // Open before arming: the matrix targets steady-state operation,
            // and an alloc fault during open is a typed open error, which the
            // dedicated open/recover fault tests already cover.
            let db = MioDb::open(busy_opts()).unwrap();
            fault::arm(
                point,
                FaultPolicy::FailProbability {
                    num: 1,
                    den: 64,
                    seed: seed.wrapping_mul(0x9E37_79B9) + 1,
                },
            );
            let spec = StressSpec {
                threads: 3,
                ops_per_thread: 120,
                key_space: 12,
                ..StressSpec::quick(seed)
            };
            let history = run_stress(&db, &spec);
            fault::disarm(point);
            let verdict = check_history(&history);
            assert!(
                verdict.is_linearizable(),
                "[seed {seed}] {point}: {verdict}"
            );
            db.close().ok();
        }
    }
}

fn fast_client(addr: std::net::SocketAddr) -> KvClient {
    KvClient::connect_with(
        addr,
        ClientOptions {
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(2)),
            max_retries: 4,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(100),
            max_redirects: 4,
        },
    )
    .unwrap()
}

#[test]
fn server_drop_yields_maybe_applied_and_server_keeps_serving() {
    let _g = fault::exclusive();
    let db = Arc::new(MioDb::open(MioOptions::small_for_tests()).unwrap());
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&db) as Arc<dyn KvEngine>,
        ServerOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut victim = fast_client(addr);
    let mut bystander = fast_client(addr);
    victim.put(b"warm-a", b"1").unwrap();
    bystander.put(b"warm-b", b"2").unwrap();

    // Drop exactly the next served frame — the victim's in-flight PUT.
    fault::arm(fault::points::SERVER_CONN_DROP, FaultPolicy::FailOnce(1));
    let err = victim.put(b"ambiguous-key", b"v1").unwrap_err();
    assert!(
        matches!(err, Error::MaybeApplied(_)),
        "a dropped in-flight mutation must be ambiguous, got {err}"
    );
    assert_eq!(victim.counters().ambiguous, 1);

    // The server never went down: the bystander's connection is untouched.
    assert_eq!(
        bystander.get(b"warm-b").unwrap().as_deref(),
        Some(&b"2"[..])
    );

    // The victim recovers mid-workload via backoff reconnect, resolves the
    // ambiguity by reading back, and resumes its writes.
    let read_back = victim.get(b"ambiguous-key").unwrap();
    assert!(victim.counters().reconnects >= 1, "no reconnect recorded");
    if read_back.is_none() {
        victim.put(b"ambiguous-key", b"v1").unwrap();
    }
    assert_eq!(
        victim.get(b"ambiguous-key").unwrap().as_deref(),
        Some(&b"v1"[..])
    );
    for i in 0..50u32 {
        victim.put(&key(i), b"post-drop").unwrap();
        assert_eq!(
            bystander.get(&key(i)).unwrap().as_deref(),
            Some(&b"post-drop"[..])
        );
    }

    victim.close().unwrap();
    bystander.close().unwrap();
    server.shutdown();
    db.close().unwrap();
}

#[test]
fn server_stall_delays_but_completes_within_client_timeout() {
    let _g = fault::exclusive();
    let db = Arc::new(MioDb::open(MioOptions::small_for_tests()).unwrap());
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&db) as Arc<dyn KvEngine>,
        ServerOptions::default(),
    )
    .unwrap();
    let mut client = fast_client(server.local_addr());
    client.put(b"k", b"v").unwrap();

    fault::arm(
        fault::points::SERVER_REQUEST_STALL,
        FaultPolicy::Latency(Duration::from_millis(150)),
    );
    let t0 = Instant::now();
    assert_eq!(client.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
    assert!(
        t0.elapsed() >= Duration::from_millis(140),
        "stall not injected ({:?})",
        t0.elapsed()
    );
    assert!(fault::hits(fault::points::SERVER_REQUEST_STALL) >= 1);
    fault::disarm(fault::points::SERVER_REQUEST_STALL);
    assert_eq!(client.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));

    client.close().unwrap();
    server.shutdown();
    db.close().unwrap();
}
