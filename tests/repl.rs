//! WAL-shipping replication end to end: semi-sync visibility on the
//! follower, async convergence, NotLeader redirects and replica reads,
//! snapshot catch-up past log truncation, and kill-the-leader failover
//! under injected connection drops and apply stalls — verified with the
//! per-key linearizability checker over the merged leader+follower
//! history and the durable-prefix oracle (zero acked writes lost).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb::check::{DurableOracle, History, HistoryRecorder};
use miodb::common::fault::{self, points, FaultPolicy};
use miodb::common::{AckLevel, Error, ReplicationSink};
use miodb::repl::{
    bootstrap_from_leader, engine_snapshot_bytes, Follower, FollowerOptions, Replicator,
    ReplicatorOptions,
};
use miodb::{
    KvClient, KvEngine, KvServer, MioDb, MioOptions, ReplConfig, RoleState, ServerOptions,
};

fn test_opts(name: &str) -> MioOptions {
    MioOptions {
        name: format!("MioDB-{name}"),
        ..MioOptions::small_for_tests()
    }
}

/// Leader side: engine + replicator (installed as the commit sink) +
/// replicated server with snapshot serving.
fn start_leader(
    name: &str,
    ack: AckLevel,
    retain_bytes: usize,
) -> (KvServer, Arc<MioDb>, Arc<Replicator>) {
    let db = Arc::new(MioDb::open(test_opts(name)).unwrap());
    let replicator = Replicator::new(ReplicatorOptions {
        ack_level: ack,
        semi_sync_timeout: Duration::from_secs(10),
        retain_bytes,
        group_size: 2,
    });
    db.set_commit_sink(Some(replicator.clone() as Arc<dyn ReplicationSink>));
    let snap_db = Arc::clone(&db);
    let server = KvServer::start_replicated(
        "127.0.0.1:0",
        Arc::clone(&db) as Arc<dyn KvEngine>,
        ServerOptions::default(),
        ReplConfig::new(
            Some(Arc::clone(&replicator)),
            Some(Box::new(move || engine_snapshot_bytes(&snap_db))),
            Arc::new(RoleState::new_leader(1)),
            "",
        ),
    )
    .unwrap();
    (server, db, replicator)
}

/// Follower side: fresh engine + apply loop + read-only server that
/// redirects mutations to the leader.
fn start_follower(
    name: &str,
    leader_addr: SocketAddr,
    fopts: FollowerOptions,
) -> (KvServer, Arc<MioDb>, Follower) {
    let db = Arc::new(MioDb::open(test_opts(name)).unwrap());
    let follower = Follower::start(Arc::clone(&db), &leader_addr.to_string(), fopts).unwrap();
    let server = KvServer::start_replicated(
        "127.0.0.1:0",
        Arc::clone(&db) as Arc<dyn KvEngine>,
        ServerOptions::default(),
        ReplConfig::new(
            None,
            None,
            Arc::new(RoleState::new_follower(1, &leader_addr.to_string())),
            "",
        ),
    )
    .unwrap();
    (server, db, follower)
}

/// Waits until the leader has at least one live subscriber (semi-sync
/// writes would otherwise burn their full ack timeout).
fn wait_subscribed(replicator: &Replicator) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while replicator.subscriber_count() == 0 {
        assert!(Instant::now() < deadline, "follower never subscribed");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn semi_sync_ack_means_follower_visible() {
    let _g = fault::exclusive();
    let (leader, _ldb, replicator) = start_leader("ss-leader", AckLevel::SemiSync, 64 << 20);
    let (fsrv, fdb, follower) = start_follower(
        "ss-follower",
        leader.local_addr(),
        FollowerOptions::default(),
    );
    wait_subscribed(&replicator);

    let mut c = KvClient::connect(leader.local_addr()).unwrap();
    for i in 0..50u32 {
        c.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    // The semi-sync contract: an acked write is already applied on the
    // follower — no settling sleep, read it back immediately.
    let mut fc = KvClient::connect(fsrv.local_addr()).unwrap();
    for i in 0..50u32 {
        assert_eq!(
            fc.get(format!("k{i:03}").as_bytes()).unwrap().as_deref(),
            Some(format!("v{i}").as_bytes()),
            "acked write k{i:03} must be visible on the follower"
        );
    }
    assert!(replicator.max_acked() >= 50);
    assert!(replicator.lag_histogram().count() > 0, "lag was measured");

    follower.stop();
    fsrv.shutdown();
    leader.shutdown();
    fdb.close().unwrap();
}

#[test]
fn async_replication_converges_without_blocking_writers() {
    let _g = fault::exclusive();
    let (leader, _ldb, replicator) = start_leader("as-leader", AckLevel::Async, 64 << 20);
    let (fsrv, fdb, follower) = start_follower(
        "as-follower",
        leader.local_addr(),
        FollowerOptions::default(),
    );

    // Async writers never wait for the follower — even before it
    // subscribes.
    let mut c = KvClient::connect(leader.local_addr()).unwrap();
    let started = Instant::now();
    for i in 0..100u32 {
        c.put(format!("a{i:03}").as_bytes(), b"v").unwrap();
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "async writes must not block on replication"
    );
    // ... but the follower converges.
    let deadline = Instant::now() + Duration::from_secs(10);
    while replicator.max_acked() < 100 {
        assert!(Instant::now() < deadline, "follower never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(fdb.get(b"a099").unwrap().as_deref(), Some(&b"v"[..]));

    follower.stop();
    fsrv.shutdown();
    leader.shutdown();
    fdb.close().unwrap();
}

#[test]
fn follower_redirects_mutations_and_serves_replica_reads() {
    let _g = fault::exclusive();
    let (leader, _ldb, replicator) = start_leader("rd-leader", AckLevel::SemiSync, 64 << 20);
    let (fsrv, fdb, follower) = start_follower(
        "rd-follower",
        leader.local_addr(),
        FollowerOptions::default(),
    );
    wait_subscribed(&replicator);

    // A client pointed at the follower: its PUT is refused with a typed
    // NotLeader hint and transparently re-dialed to the leader.
    let mut c = KvClient::connect(fsrv.local_addr()).unwrap();
    c.put(b"routed", b"through-redirect").unwrap();
    assert!(c.counters().redirects >= 1, "redirect must be counted");
    // The write went to the leader and replicated back; a fresh client on
    // the follower serves it as a replica read.
    let mut reader = KvClient::connect(fsrv.local_addr()).unwrap();
    assert_eq!(
        reader.get(b"routed").unwrap().as_deref(),
        Some(&b"through-redirect"[..])
    );

    follower.stop();
    fsrv.shutdown();
    leader.shutdown();
    fdb.close().unwrap();
}

#[test]
fn truncated_log_forces_snapshot_catch_up() {
    let _g = fault::exclusive();
    // Tiny retention: the log truncates long before a cold follower shows
    // up, so streaming from offset 0 is impossible.
    let (leader, ldb, replicator) = start_leader("sn-leader", AckLevel::Async, 1024);
    for i in 0..200u32 {
        ldb.put(format!("s{i:03}").as_bytes(), &[0u8; 64]).unwrap();
    }
    let (start, _last) = replicator.log().bounds();
    assert!(start > 1, "retention must have truncated the log front");

    // Cold catch-up: snapshot fetch + restore + recover, then stream the
    // tail from the recovered offset.
    let fdb = Arc::new(
        bootstrap_from_leader(&leader.local_addr().to_string(), test_opts("sn-follower")).unwrap(),
    );
    assert!(
        fdb.last_sequence() > 0,
        "bootstrap must recover the snapshot's WAL tail"
    );
    let follower = Follower::start(
        Arc::clone(&fdb),
        &leader.local_addr().to_string(),
        FollowerOptions::default(),
    )
    .unwrap();
    wait_subscribed(&replicator);
    // Writes after the snapshot still flow through the stream.
    ldb.put(b"post-snapshot", b"streamed").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if fdb.get(b"post-snapshot").unwrap().as_deref() == Some(&b"streamed"[..]) {
            break;
        }
        assert!(Instant::now() < deadline, "tail never streamed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // And the pre-snapshot data arrived via the image.
    assert_eq!(fdb.get(b"s000").unwrap().as_deref(), Some(&[0u8; 64][..]));

    follower.stop();
    leader.shutdown();
    ldb.close().unwrap();
}

/// The headline failover test: writers hammer a semi-sync leader while
/// injected faults drop the replication stream, stall the follower's
/// apply loop and stall server requests; the leader is then killed, the
/// follower drains and promotes, and clients continue against it.
///
/// Two oracles close the loop:
/// - every write the leader *acked* is present on the promoted follower
///   (durable-prefix: semi-sync acks are replication promises);
/// - the merged leader-phase + follower-phase history is per-key
///   linearizable (ambiguous `MaybeApplied` writes may surface late or
///   never — both are legal).
#[test]
fn kill_the_leader_failover_preserves_acked_writes() {
    let _g = fault::exclusive();
    let (leader, _ldb, replicator) = start_leader("ko-leader", AckLevel::SemiSync, 64 << 20);
    // Fast reconnects: the chaos schedule drops the stream often, and the
    // test's point is surviving the drops, not waiting out the backoff.
    let (fsrv, fdb, follower) = start_follower(
        "ko-follower",
        leader.local_addr(),
        FollowerOptions {
            read_timeout: Duration::from_millis(50),
            reconnect_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            // The chaos schedule starves the stream for long stretches on
            // purpose; leader-death detection is exercised elsewhere.
            leader_dead_timeout: Duration::from_secs(30),
        },
    );
    wait_subscribed(&replicator);

    // Chaos while the leader is alive: the subscriber stream drops ~1/4
    // of its send iterations (forcing resubscribes mid-workload), the
    // follower's apply loop stalls, and server requests stall.
    fault::arm(
        points::REPL_STREAM_DROP,
        FaultPolicy::FailProbability {
            num: 1,
            den: 4,
            seed: 7,
        },
    );
    fault::arm(
        points::REPL_APPLY_STALL,
        FaultPolicy::Latency(Duration::from_millis(2)),
    );
    fault::arm(
        points::SERVER_REQUEST_STALL,
        FaultPolicy::Latency(Duration::from_millis(1)),
    );

    let oracle = DurableOracle::new();
    let recorder = HistoryRecorder::new();
    let leader_addr = leader.local_addr();
    let phase1: Vec<History> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2u32)
            .map(|w| {
                let mut log = recorder.log();
                let oracle = &oracle;
                s.spawn(move || {
                    let mut c = KvClient::connect(leader_addr).unwrap();
                    for i in 0..40u32 {
                        let value = format!("w{w}-i{i}").into_bytes();
                        if i % 2 == 0 {
                            // Shared keyspace: real cross-writer contention,
                            // checked by the linearizability pass. The
                            // durable oracle skips these — its floor model
                            // assumes a single writer per key.
                            let key = format!("fk{}", i % 8).into_bytes();
                            let _ = log.client_put(&mut c, &key, &value);
                        } else {
                            // Private keyspace: single writer per key,
                            // exactly the durable-prefix contract.
                            let key = format!("w{w}k{}", i % 8).into_bytes();
                            let token = oracle.begin_put(&key, &value);
                            if log.client_put(&mut c, &key, &value).is_ok() {
                                oracle.ack(token);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        vec![recorder.take_history()]
    });

    // Kill the leader. Everything acked before this instant must survive
    // the promotion.
    let crash_ns = oracle.now_ns();
    leader.shutdown();

    // Failover: drain whatever the dying leader still had in flight, then
    // lead.
    let applied = follower.promote();
    assert!(applied > 0, "follower applied nothing before promotion");
    fsrv.promote_to_leader();
    assert!(fsrv.is_leader());
    fault::disarm_all();

    // Durable-prefix oracle: zero acked writes lost across promotion.
    oracle
        .verify_engine(fdb.as_ref(), crash_ns)
        .unwrap_or_else(|v| panic!("acked write lost in failover: {v:?}"));

    // Phase 2: clients work against the promoted follower (old clients
    // discover it via the NotLeader redirect in practice; here we dial it
    // directly since the old leader is gone).
    let recorder2 = HistoryRecorder::new();
    let mut log2 = recorder2.log();
    let mut c = KvClient::connect(fsrv.local_addr()).unwrap();
    for i in 0..8u32 {
        let key = format!("fk{i}").into_bytes();
        let _ = log2.client_get(&mut c, &key).unwrap();
        let value = format!("post-{i}").into_bytes();
        log2.client_put(&mut c, &key, &value).unwrap();
        assert_eq!(
            log2.client_get(&mut c, &key).unwrap().as_deref(),
            Some(value.as_slice())
        );
    }
    let phase2 = recorder2.take_history();

    // Merged cross-role history is per-key linearizable.
    let mut phases = phase1;
    phases.push(phase2);
    let merged = History::merge_sequential(phases);
    let verdict = miodb::check::check_history(&merged);
    assert!(
        verdict.is_linearizable(),
        "merged leader+follower history not linearizable: {verdict:?}"
    );

    fsrv.shutdown();
    fdb.close().unwrap();
}

/// A hard apply failure (not just a stall) must never ack: the follower
/// drops the session before applying, reconnects and re-applies, so
/// semi-sync writers just see higher latency, never a lost ack.
#[test]
fn apply_failure_retries_without_losing_acks() {
    let _g = fault::exclusive();
    let (leader, ldb, replicator) = start_leader("af-leader", AckLevel::SemiSync, 64 << 20);
    let (fsrv, fdb, follower) = start_follower(
        "af-follower",
        leader.local_addr(),
        FollowerOptions::default(),
    );
    wait_subscribed(&replicator);

    fault::arm(points::REPL_APPLY_STALL, FaultPolicy::FailOnce(1));
    ldb.put(b"retried", b"survives").unwrap();
    fault::disarm_all();
    assert_eq!(
        fdb.get(b"retried").unwrap().as_deref(),
        Some(&b"survives"[..])
    );

    follower.stop();
    fsrv.shutdown();
    leader.shutdown();
    fdb.close().unwrap();
}

/// Semi-sync with no follower at all: the writer blocks for the ack
/// timeout and surfaces `MaybeApplied` — locally durable, replication
/// unknown — rather than pretending the write is replicated.
#[test]
fn semi_sync_without_follower_is_maybe_applied() {
    let _g = fault::exclusive();
    let db = Arc::new(MioDb::open(test_opts("lonely-leader")).unwrap());
    let replicator = Replicator::new(ReplicatorOptions {
        ack_level: AckLevel::SemiSync,
        semi_sync_timeout: Duration::from_millis(50),
        retain_bytes: 1 << 20,
        group_size: 2,
    });
    db.set_commit_sink(Some(replicator as Arc<dyn ReplicationSink>));
    let err = db.put(b"k", b"v").unwrap_err();
    assert!(matches!(err, Error::MaybeApplied(_)), "got {err}");
    // The write is locally durable regardless.
    assert_eq!(db.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
    db.set_commit_sink(None);
    db.close().unwrap();
}
