//! Integration tests for the engine telemetry subsystem: event-trace
//! well-formedness, engine-side vs bench-side histogram agreement, and
//! live Prometheus exposition.

use miodb::common::{CompactionKind, EventKind, StallKind, TelemetryOptions};
use miodb::workloads::{run_ycsb, YcsbSpec, YcsbWorkload};
use miodb::{KvEngine, MioDb, MioOptions};

fn opts_with_tracing() -> MioOptions {
    MioOptions {
        telemetry: TelemetryOptions {
            event_capacity: 1 << 15,
            ..TelemetryOptions::default()
        },
        ..MioOptions::small_for_tests()
    }
}

/// Drives enough writes through a small MioDB to force several flushes
/// and at least one zero-copy merge, then checks the drained event trace
/// is well formed: monotonic timestamps, balanced begin/end pairs, and
/// sane payloads.
#[test]
fn drain_events_yields_well_formed_flush_compaction_sequence() {
    let db = MioDb::open(opts_with_tracing()).unwrap();
    let value = vec![0xA5u8; 256];
    for i in 0..3000u32 {
        db.put(format!("key{i:06}").as_bytes(), &value).unwrap();
    }
    for i in 0..100u32 {
        db.delete(format!("key{i:06}").as_bytes()).unwrap();
    }
    db.wait_idle().unwrap();
    let events = db.drain_events();
    assert!(!events.is_empty(), "no events traced");
    assert_eq!(
        db.telemetry().unwrap().events_dropped(),
        0,
        "ring overflowed; balance checks below would be vacuous"
    );

    // Timestamps are non-decreasing in drain order, modulo the tiny race
    // where two worker threads stamp an event and then claim ring slots
    // in the opposite order — allow 1ms of inversion, no more.
    for w in events.windows(2) {
        assert!(
            w[1].ts_ns + 1_000_000 >= w[0].ts_ns,
            "timestamps out of order by more than 1ms"
        );
    }

    let mut flush_depth: i64 = 0;
    let mut flushes = 0u64;
    // Compaction begin/end pairing tracked per (level, kind).
    let mut compaction_depth: std::collections::HashMap<(u32, bool), i64> =
        std::collections::HashMap::new();
    let mut compactions = 0u64;
    let mut stall_depth: i64 = 0;
    for e in &events {
        match e.kind {
            EventKind::FlushBegin { bytes } => {
                assert!(bytes > 0, "flush of an empty memtable");
                flush_depth += 1;
                flushes += 1;
            }
            EventKind::FlushEnd { bytes, .. } => {
                assert!(bytes > 0);
                flush_depth -= 1;
                assert!(flush_depth >= 0, "FlushEnd without FlushBegin");
            }
            EventKind::CompactionBegin { level, kind } => {
                let d = compaction_depth
                    .entry((level, kind == CompactionKind::ZeroCopy))
                    .or_insert(0);
                *d += 1;
                compactions += 1;
            }
            EventKind::CompactionEnd { level, kind, .. } => {
                let d = compaction_depth
                    .entry((level, kind == CompactionKind::ZeroCopy))
                    .or_insert(0);
                *d -= 1;
                assert!(
                    *d >= 0,
                    "CompactionEnd without matching Begin at level {level}"
                );
            }
            EventKind::StallBegin { .. } => stall_depth += 1,
            EventKind::StallEnd { kind, .. } => {
                stall_depth -= 1;
                assert!(stall_depth >= 0, "StallEnd without StallBegin");
                // Both stall kinds exist; just type-check the payload here.
                let _ = matches!(kind, StallKind::Interval | StallKind::Cumulative);
            }
            EventKind::Swizzle { .. } | EventKind::BloomSkip { .. } => {}
        }
    }
    assert!(flushes >= 2, "expected several flushes, saw {flushes}");
    assert!(compactions >= 1, "expected at least one compaction");
    // The engine is idle and the ring never overflowed, so every Begin
    // must have its End.
    assert_eq!(flush_depth, 0, "unbalanced flush events");
    assert_eq!(stall_depth, 0, "unbalanced stall events");
    for ((level, zero_copy), d) in &compaction_depth {
        assert_eq!(
            *d, 0,
            "unbalanced compaction events at level {level} (zero_copy={zero_copy})"
        );
    }
}

/// Engine-side concurrent histograms must agree with the bench driver's
/// own measurement on a YCSB-A run: identical op counts and percentiles
/// within log-bucket error (the driver measures just outside the engine
/// call, so each sample lands in the same or an adjacent bucket).
#[test]
fn engine_histograms_agree_with_bench_on_ycsb_a() {
    let db = MioDb::open(opts_with_tracing()).unwrap();
    let spec = YcsbSpec {
        records: 2000,
        operations: 4000,
        value_len: 256,
        threads: 2,
        seed: 42,
        record_timeline: false,
        max_scan_len: 20,
    };
    run_ycsb(&db, YcsbWorkload::Load, &spec).unwrap();
    let t = db.telemetry().unwrap();
    t.put_latency.reset();
    t.get_latency.reset();
    let r = run_ycsb(&db, YcsbWorkload::A, &spec).unwrap();

    let put = t.put_latency.snapshot();
    let get = t.get_latency.snapshot();
    assert_eq!(
        put.count(),
        r.write_latency.count(),
        "engine saw a different number of updates than the driver issued"
    );
    assert_eq!(
        get.count(),
        r.read_latency.count(),
        "engine saw a different number of reads than the driver issued"
    );

    // Within bucket error: the log-bucket layout doubles per bucket and
    // the driver adds call overhead, so allow a two-bucket (4x) band plus
    // a small absolute floor for sub-microsecond values.
    let close = |engine_ns: u64, bench_ns: u64| {
        engine_ns <= bench_ns.saturating_mul(4) + 2_000
            && bench_ns <= engine_ns.saturating_mul(4) + 2_000
    };
    for p in [50.0, 90.0, 99.0] {
        assert!(
            close(put.percentile(p), r.write_latency.percentile(p)),
            "put p{p} disagrees: engine={}ns bench={}ns",
            put.percentile(p),
            r.write_latency.percentile(p)
        );
        assert!(
            close(get.percentile(p), r.read_latency.percentile(p)),
            "get p{p} disagrees: engine={}ns bench={}ns",
            get.percentile(p),
            r.read_latency.percentile(p)
        );
    }
}

/// `metrics_text()` on a live engine after real traffic carries the key
/// series: op-latency quantiles for put and get, per-level occupancy,
/// per-level compaction counters and stall totals.
#[test]
fn live_engine_metrics_text_has_key_series() {
    let db = MioDb::open(opts_with_tracing()).unwrap();
    let value = vec![0x5Au8; 256];
    for i in 0..2000u32 {
        db.put(format!("key{i:06}").as_bytes(), &value).unwrap();
    }
    for i in 0..2000u32 {
        db.get(format!("key{i:06}").as_bytes()).unwrap();
    }
    db.wait_idle().unwrap();
    let text = db.metrics_text();
    for needle in [
        "miodb_op_latency_seconds{op=\"put\",quantile=\"0.5\"}",
        "miodb_op_latency_seconds{op=\"put\",quantile=\"0.999\"}",
        "miodb_op_latency_seconds{op=\"get\",quantile=\"0.99\"}",
        "miodb_level_bytes{level=\"0\"}",
        "miodb_level_tables{level=\"0\"}",
        "miodb_compactions_total{level=\"0\",kind=\"zero_copy\"}",
        "miodb_stall_seconds_total{kind=\"interval\"}",
        "miodb_flushes_total",
    ] {
        assert!(
            text.contains(needle),
            "missing series `{needle}` in:\n{text}"
        );
    }
    let json = db.metrics_json();
    assert!(json.contains("\"miodb_op_latency_seconds\""));
}
