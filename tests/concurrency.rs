//! Concurrency integration tests: lock-free readers and scanners racing
//! the writer and all background compaction threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use miodb::{KvEngine, MioDb, MioOptions};

#[test]
fn readers_never_miss_acknowledged_writes() {
    // The writer publishes a watermark after each put; readers may read any
    // key at or below the watermark and must find it (or a newer value).
    let db = Arc::new(MioDb::open(MioOptions::small_for_tests()).unwrap());
    let watermark = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let n = 6_000u64;

    std::thread::scope(|s| {
        {
            let db = db.clone();
            let watermark = watermark.clone();
            let stop = stop.clone();
            s.spawn(move || {
                for i in 1..=n {
                    db.put(format!("key{i:08}").as_bytes(), format!("v{i}").as_bytes())
                        .unwrap();
                    watermark.store(i, Ordering::Release);
                }
                stop.store(true, Ordering::Release);
            });
        }
        for t in 0..3u64 {
            let db = db.clone();
            let watermark = watermark.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut x = 0x9E37 + t;
                let mut checked = 0u64;
                while !stop.load(Ordering::Acquire) || checked < 500 {
                    let hi = watermark.load(Ordering::Acquire);
                    if hi == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let i = 1 + (x % hi);
                    let got = db
                        .get(format!("key{i:08}").as_bytes())
                        .unwrap()
                        .unwrap_or_else(|| panic!("acknowledged key{i:08} invisible (hi={hi})"));
                    assert_eq!(got, format!("v{i}").as_bytes());
                    checked += 1;
                }
            });
        }
    });
}

#[test]
fn scans_race_compactions_without_losing_keys() {
    let db = Arc::new(MioDb::open(MioOptions::small_for_tests()).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    // Preload a stable key set.
    for i in 0..1_000u32 {
        db.put(format!("stable{i:05}").as_bytes(), b"base").unwrap();
    }

    std::thread::scope(|s| {
        {
            // Churn writer on a disjoint key range keeps compactions busy.
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    i += 1;
                    db.put(format!("churn{:07}", i % 5_000).as_bytes(), &[7u8; 256])
                        .unwrap();
                }
            });
        }
        let scanners: Vec<_> = (0..2)
            .map(|_| {
                let db = db.clone();
                s.spawn(move || {
                    for round in 0..30 {
                        let start = format!("stable{:05}", (round * 31) % 900);
                        let out = db.scan(start.as_bytes(), 50).unwrap();
                        // Every stable key in range must appear, in order.
                        let stable: Vec<&miodb::ScanEntry> = out
                            .iter()
                            .filter(|e| e.key.starts_with(b"stable"))
                            .collect();
                        for w in stable.windows(2) {
                            assert!(w[0].key < w[1].key, "scan order violated");
                        }
                        if let Some(first) = stable.first() {
                            assert!(first.key.as_slice() >= start.as_bytes());
                        }
                    }
                })
            })
            .collect();
        // Event-based stop: churn runs exactly as long as the scanners are
        // scanning, however fast or slow this machine is.
        for h in scanners {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
    });

    db.wait_idle().unwrap();
    for i in (0..1_000u32).step_by(83) {
        assert_eq!(
            db.get(format!("stable{i:05}").as_bytes()).unwrap().unwrap(),
            b"base"
        );
    }
}

#[test]
fn concurrent_ycsb_a_on_miodb() {
    use miodb::workloads::{run_ycsb, YcsbSpec, YcsbWorkload};
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    let spec = YcsbSpec {
        records: 2_000,
        operations: 6_000,
        value_len: 256,
        threads: 4,
        seed: 3,
        record_timeline: false,
        max_scan_len: 20,
    };
    run_ycsb(&db, YcsbWorkload::Load, &spec).unwrap();
    let r = run_ycsb(&db, YcsbWorkload::A, &spec).unwrap();
    assert_eq!(r.ops, 6_000);
    assert!(r.latency.count() == 6_000);
    db.wait_idle().unwrap();
    assert!(db.get(b"k000000000000001").unwrap().is_some());
    let report = db.report();
    assert_eq!(
        report.stats.gets,
        r.read_latency.count() + 1,
        "one extra get above"
    );
}

#[test]
fn overlapping_overwrites_keep_newest_under_concurrency() {
    let db = Arc::new(MioDb::open(MioOptions::small_for_tests()).unwrap());
    // One writer hammers the same small key set (forces heavy multi-version
    // merging); readers verify monotonicity: values never go backwards.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                for gen in 0..4_000u32 {
                    let key = format!("hot{:02}", gen % 16);
                    db.put(key.as_bytes(), format!("{gen:08}").as_bytes())
                        .unwrap();
                }
                stop.store(true, Ordering::Release);
            });
        }
        for _ in 0..2 {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut floor = [0u32; 16];
                while !stop.load(Ordering::Acquire) {
                    #[allow(clippy::needless_range_loop)]
                    for k in 0..16usize {
                        if let Some(v) = db.get(format!("hot{k:02}").as_bytes()).unwrap() {
                            let gen: u32 = std::str::from_utf8(&v).unwrap().parse().unwrap();
                            assert!(
                                gen >= floor[k],
                                "hot{k:02} went backwards: {gen} < {}",
                                floor[k]
                            );
                            floor[k] = gen;
                        }
                    }
                }
            });
        }
    });
}

/// One multi-writer storm: N writer threads push M unique keys each
/// through the write path (readers hammering concurrently); after the
/// storm every key is readable and the sequence space is dense — one
/// number per op, no gaps, no duplicates (`last_sequence == N*M`). The
/// `seed` salts keys and values so repeated runs exercise different
/// flush/compaction alignments. On a lost or wrong read the failure
/// message includes the engine's `debug_locate` dump for the key — which
/// structure actually holds it — so a recurrence is diagnosable from the
/// CI log alone.
fn multi_writer_storm(pipeline: bool, seed: u64) {
    let opts = MioOptions {
        write_pipeline: pipeline,
        ..MioOptions::small_for_tests()
    };
    let db = Arc::new(MioDb::open(opts).unwrap());
    let threads = 8u64;
    let per = 1200u64;
    let salt = seed % 997;
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..per {
                    let key = format!("s{salt:03}w{t:02}k{i:06}");
                    let val = format!("{t}:{i}:{salt}");
                    db.put(key.as_bytes(), val.as_bytes()).unwrap();
                }
            });
        }
        // Concurrent readers re-probe acknowledged keys while compactions
        // run — the interleaving that historically lost ~1/25 runs was a
        // reader racing a settled→merging table transition.
        for t in 0..threads.min(2) {
            let db = db.clone();
            s.spawn(move || {
                let mut x = seed | 1;
                for _ in 0..4_000 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let rt = x % threads;
                    let ri = x % per;
                    let key = format!("s{salt:03}w{rt:02}k{ri:06}");
                    // A concurrent racer can only assert value integrity,
                    // not presence (the write may not have happened yet).
                    if let Some(got) = db.get(key.as_bytes()).unwrap() {
                        assert_eq!(
                            got,
                            format!("{rt}:{ri}:{salt}").as_bytes(),
                            "torn value for {key} (pipeline={pipeline}, seed={seed}, reader={t})"
                        );
                    }
                }
            });
        }
    });
    assert_eq!(
        db.last_sequence(),
        threads * per,
        "sequence numbers not dense (pipeline={pipeline}, seed={seed})"
    );
    for t in 0..threads {
        for i in 0..per {
            let key = format!("s{salt:03}w{t:02}k{i:06}");
            let got = db.get(key.as_bytes()).unwrap().unwrap_or_else(|| {
                let located = db.debug_locate(key.as_bytes());
                panic!("{key} lost (pipeline={pipeline}, seed={seed}); debug_locate: {located:?}")
            });
            assert_eq!(
                got,
                format!("{t}:{i}:{salt}").as_bytes(),
                "pipeline={pipeline}, seed={seed}"
            );
        }
    }
}

/// Runs under both the group-commit pipeline and the legacy single-writer
/// path so the two stay behaviourally interchangeable. Formerly flaky at
/// ~1/25 runs: `get` snapshotted a level's settled tables once, and a
/// compactor popping those tables into `merging` mid-probe left the
/// reader searching relinked lists without the mark protocol. Fixed by
/// the per-level structural version retry in `get` plus the always-live
/// mark check in `get_skip_marked`.
#[test]
fn multi_writer_stress_grouped_and_legacy() {
    for pipeline in [true, false] {
        multi_writer_storm(pipeline, 0);
    }
}

/// Seeded single-test stress loop for the formerly flaky storm: set
/// `MIODB_STRESS_ROUNDS` (and optionally `MIODB_STRESS_SEED`) to rerun
/// the exact interleaving hunt in-process without rebuilding — e.g.
/// `MIODB_STRESS_ROUNDS=100 cargo test --release multi_writer_stress_seeded`
/// runs 200 storms (both commit paths per round). Defaults to 2 rounds so
/// the suite stays fast.
#[test]
fn multi_writer_stress_seeded_loop() {
    let rounds: u64 = std::env::var("MIODB_STRESS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let seed0: u64 = std::env::var("MIODB_STRESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE);
    for r in 0..rounds {
        for pipeline in [true, false] {
            multi_writer_storm(pipeline, seed0.wrapping_add(r));
        }
        if rounds > 4 {
            eprintln!("stress round {}/{rounds} clean", r + 1);
        }
    }
}

/// Batches and single puts interleave across threads; group records keep
/// each batch's sequence numbers consecutive, and the overall space stays
/// dense.
#[test]
fn mixed_batches_and_puts_keep_sequences_dense() {
    let db = Arc::new(MioDb::open(MioOptions::small_for_tests()).unwrap());
    let threads = 6u64;
    let rounds = 120u64;
    let batch_len = 8u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            s.spawn(move || {
                for r in 0..rounds {
                    if t % 2 == 0 {
                        let mut batch = miodb::WriteBatch::new();
                        for j in 0..batch_len {
                            batch.put(
                                format!("b{t}r{r:04}j{j}").as_bytes(),
                                format!("{t}{r}{j}").as_bytes(),
                            );
                        }
                        db.write_batch(batch).unwrap();
                    } else {
                        for j in 0..batch_len {
                            db.put(
                                format!("p{t}r{r:04}j{j}").as_bytes(),
                                format!("{t}{r}{j}").as_bytes(),
                            )
                            .unwrap();
                        }
                    }
                }
            });
        }
    });
    assert_eq!(db.last_sequence(), threads * rounds * batch_len);
    for t in 0..threads {
        let prefix = if t % 2 == 0 { 'b' } else { 'p' };
        for r in 0..rounds {
            for j in 0..batch_len {
                let key = format!("{prefix}{t}r{r:04}j{j}");
                assert_eq!(
                    db.get(key.as_bytes()).unwrap().as_deref(),
                    Some(format!("{t}{r}{j}").as_bytes()),
                    "{key} wrong or missing"
                );
            }
        }
    }
}

/// The seeded stress mix (4 threads hammering 16 hot keys with put/get/
/// delete) must serve linearizable histories: every read explained by the
/// real-time order of acknowledged writes. This is the checker from
/// `miodb-check` running against the real engine — the mutation tests in
/// that crate prove the same checker rejects lost acks and stale reads.
#[test]
fn concurrent_histories_are_linearizable() {
    use miodb::check::{check_history, run_stress, StressSpec};
    for seed in [1u64, 2] {
        let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
        let spec = StressSpec {
            threads: 4,
            ops_per_thread: 250,
            ..StressSpec::quick(seed)
        };
        let history = run_stress(&db, &spec);
        assert_eq!(history.len(), 4 * 250);
        let verdict = check_history(&history);
        assert!(verdict.is_linearizable(), "seed {seed}: {verdict}");
        db.close().unwrap();
    }
}

/// The recording wrapper is transparent: an unmodified workload driver
/// (YCSB A) runs against `RecordingEngine<MioDb>` and the recorded
/// history checks out linearizable.
#[test]
fn recorded_ycsb_history_is_linearizable() {
    use miodb::check::{check_history, RecordingEngine};
    use miodb::workloads::{run_ycsb, YcsbSpec, YcsbWorkload};
    let engine = RecordingEngine::new(MioDb::open(MioOptions::small_for_tests()).unwrap());
    let spec = YcsbSpec {
        records: 300,
        operations: 2_000,
        value_len: 64,
        threads: 4,
        seed: 11,
        record_timeline: false,
        max_scan_len: 10,
    };
    run_ycsb(&engine, YcsbWorkload::Load, &spec).unwrap();
    run_ycsb(&engine, YcsbWorkload::A, &spec).unwrap();
    let history = engine.take_history();
    assert!(history.len() >= 2_300, "driver ops were not recorded");
    let verdict = check_history(&history);
    assert!(verdict.is_linearizable(), "{verdict}");
}

/// Snapshots taken mid-storm (while groups are in flight) must capture
/// every acknowledged write: acknowledgment happens only after the group's
/// WAL record is durable, and the snapshot quiesces on the writer mutex at
/// a group boundary. Simulates a crash by recovering the snapshot into a
/// fresh engine and checking all writes acknowledged before the snapshot
/// call.
#[test]
fn snapshot_mid_group_loses_no_acknowledged_write() {
    let opts = MioOptions::small_for_tests();
    let path = std::env::temp_dir().join(format!("miodb-midgroup-{}", std::process::id()));
    let db = Arc::new(MioDb::open(opts.clone()).unwrap());
    let threads = 4usize;
    let per = 2_000u64;
    let marks: Vec<Arc<AtomicU64>> = (0..threads).map(|_| Arc::new(AtomicU64::new(0))).collect();

    let mut floors = vec![0u64; threads];
    std::thread::scope(|s| {
        for (t, mark) in marks.iter().enumerate() {
            let db = db.clone();
            let mark = mark.clone();
            s.spawn(move || {
                for i in 1..=per {
                    db.put(
                        format!("c{t}k{i:06}").as_bytes(),
                        format!("{t}-{i}").as_bytes(),
                    )
                    .unwrap();
                    mark.store(i, Ordering::Release);
                }
            });
        }
        // Let the storm develop, then record what has been acknowledged
        // and snapshot while writers keep hammering.
        while marks.iter().any(|m| m.load(Ordering::Acquire) < per / 4) {
            std::thread::yield_now();
        }
        for (t, m) in marks.iter().enumerate() {
            floors[t] = m.load(Ordering::Acquire);
        }
        db.snapshot(&path).unwrap();
    });

    let pool = miodb::pmem::PmemPool::restore_from_file(
        &path,
        opts.nvm_device,
        Arc::new(miodb::Stats::new()),
    )
    .unwrap();
    let rdb = MioDb::recover(pool, opts).unwrap();
    for (t, &floor) in floors.iter().enumerate() {
        assert!(floor > 0);
        for i in 1..=floor {
            let key = format!("c{t}k{i:06}");
            let got = rdb.get(key.as_bytes()).unwrap().unwrap_or_else(|| {
                panic!("acknowledged {key} lost across snapshot (floor={floor})")
            });
            assert_eq!(got, format!("{t}-{i}").as_bytes());
        }
    }
    std::fs::remove_file(&path).ok();
}
