//! Backpressure and slow-reader tests for the event-driven service layer:
//! a client that stops reading must receive an in-band backpressure
//! advisory, the server's per-connection memory must stay bounded, and
//! other connections must keep making progress (fairness) while one is
//! stalled.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb::common::proto;
use miodb::common::{KvEngine, Request};
use miodb::{KvClient, KvServer, MioDb, MioOptions, ServerOptions, ShardRouter};

fn test_opts() -> MioOptions {
    MioOptions {
        name: "MioDB-bp-test".to_string(),
        ..MioOptions::small_for_tests()
    }
}

/// A server with deliberately tiny per-connection caps so the tests
/// trigger backpressure with kilobytes instead of megabytes.
fn start_small_server() -> (KvServer, Arc<ShardRouter<MioDb>>) {
    let router = Arc::new(ShardRouter::open_miodb(&test_opts(), 1).unwrap());
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn KvEngine>,
        ServerOptions {
            max_queued_requests: 8,
            max_conn_buffer_bytes: 64 * 1024,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    (server, router)
}

/// A pipelining client that stops reading sees the in-band backpressure
/// advisory once it finally drains, every response still arrives in
/// order, and the server telemetry records the event.
#[test]
fn stopped_reader_receives_backpressure_advisory() {
    let (server, router) = start_small_server();
    // Seed a 1 KiB value so each pipelined GET response is substantial
    // enough to blow through the 64 KiB output cap quickly.
    let mut seeder = KvClient::connect(server.local_addr()).unwrap();
    let big = vec![b'v'; 1024];
    seeder.put(b"big", &big).unwrap();
    seeder.close().unwrap();

    let mut c = KvClient::connect(server.local_addr()).unwrap();
    let n = 1_000u32;
    for _ in 0..n {
        c.send(&Request::Get {
            key: b"big".to_vec(),
        })
        .unwrap();
    }
    c.flush().unwrap();
    // Stay stopped long enough for the server to fill the connection's
    // request queue and output buffer and pause reads.
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        server.telemetry().backpressure_events() >= 1,
        "server never recorded a backpressure event for a stopped reader"
    );
    for i in 0..n {
        let (_, resp) = c.recv().unwrap();
        match resp {
            miodb::common::Response::Value(Some(v)) => assert_eq!(v, big, "response {i}"),
            other => panic!("response {i}: unexpected {other:?}"),
        }
    }
    assert!(
        c.counters().backpressure >= 1,
        "client never saw the in-band backpressure advisory"
    );
    c.close().unwrap();
    server.shutdown();
    router.close().unwrap();
}

/// With a reader that never drains, the bytes the server will accept from
/// and buffer for that connection are bounded: writes from the client
/// eventually hit `WouldBlock` (kernel buffers + the server's paused read
/// loop) instead of being swallowed forever.
#[test]
fn server_memory_stays_bounded_for_a_reader_that_never_drains() {
    let (server, router) = start_small_server();
    let mut seeder = KvClient::connect(server.local_addr()).unwrap();
    seeder.put(b"big", &vec![b'v'; 4096]).unwrap();
    seeder.close().unwrap();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nonblocking(true).unwrap();
    let mut stream = stream;
    // One encoded GET frame, repeated.
    let mut frame = Vec::new();
    proto::write_request(
        &mut frame,
        1,
        &Request::Get {
            key: b"big".to_vec(),
        },
    )
    .unwrap();
    let mut accepted = 0usize;
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut consecutive_blocks = 0u32;
    while Instant::now() < deadline {
        match stream.write(&frame) {
            Ok(n) => {
                accepted += n;
                consecutive_blocks = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                consecutive_blocks += 1;
                // The server has paused this connection and the kernel
                // buffers are full: the write side is properly stalled.
                if consecutive_blocks > 20 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("unexpected socket error: {e}"),
        }
        // Far beyond any bounded pipeline: caps (8 queued requests,
        // 64 KiB responses) plus kernel socket buffers are a few MiB at
        // most. Accepting this much means the server kept reading.
        assert!(
            accepted < 64 << 20,
            "server swallowed {accepted} bytes from a reader that never drains"
        );
    }
    assert!(
        consecutive_blocks > 20,
        "writes to a stalled connection never hit WouldBlock (accepted {accepted} bytes)"
    );
    assert!(
        server.telemetry().backpressure_events() >= 1,
        "stall never registered as a backpressure event"
    );
    drop(stream);
    server.shutdown();
    router.close().unwrap();
}

/// Fairness: while one connection is wedged behind a full output buffer,
/// other connections on the same shard keep completing requests.
#[test]
fn other_connections_progress_while_one_reader_is_stalled() {
    let (server, router) = start_small_server();
    let mut seeder = KvClient::connect(server.local_addr()).unwrap();
    seeder.put(b"big", &vec![b'v'; 4096]).unwrap();
    seeder.close().unwrap();

    // The stalled connection: pipelines GETs and never reads.
    let mut stalled = TcpStream::connect(server.local_addr()).unwrap();
    let mut frame = Vec::new();
    proto::write_request(
        &mut frame,
        1,
        &Request::Get {
            key: b"big".to_vec(),
        },
    )
    .unwrap();
    let burst: Vec<u8> = frame.repeat(64);
    stalled.write_all(&burst).unwrap();
    stalled.flush().unwrap();

    // Give the server time to wedge the stalled connection.
    std::thread::sleep(Duration::from_millis(200));

    // A healthy connection must complete a full workload promptly.
    let mut healthy = KvClient::connect(server.local_addr()).unwrap();
    let started = Instant::now();
    for i in 0..200u32 {
        let key = format!("fair{i:04}");
        healthy.put(key.as_bytes(), b"x").unwrap();
        assert_eq!(
            healthy.get(key.as_bytes()).unwrap().as_deref(),
            Some(b"x".as_ref()),
            "healthy connection starved at op {i}"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "healthy connection took {:?} behind a stalled peer",
        started.elapsed()
    );
    healthy.close().unwrap();
    drop(stalled);
    server.shutdown();
    router.close().unwrap();
}
