//! Integration tests of the DRAM-NVM-SSD mode and of the cross-engine
//! write-amplification ordering the paper reports (Figure 11, Table 1).

use std::sync::Arc;

use miodb::baselines::{MatrixKv, MatrixKvOptions, NoveLsm, NoveLsmOptions};
use miodb::lsm::LsmOptions;
use miodb::pmem::DeviceModel;
use miodb::{KvEngine, MioDb, MioOptions, RepositoryMode, Stats};

fn load(engine: &dyn KvEngine, n: u32, vlen: usize) {
    let value = vec![0x3Cu8; vlen];
    for i in 0..n {
        engine.put(format!("key{i:07}").as_bytes(), &value).unwrap();
    }
    engine.wait_idle().unwrap();
}

#[test]
fn tiered_miodb_serves_from_buffer_and_ssd() {
    let opts = MioOptions {
        repository: RepositoryMode::Ssd {
            lsm: LsmOptions {
                table_bytes: 32 * 1024,
                level1_max_bytes: 128 * 1024,
                ..LsmOptions::default()
            },
            device: DeviceModel::ssd_unthrottled(),
        },
        elastic_levels: 3,
        ..MioOptions::small_for_tests()
    };
    let db = MioDb::open(opts).unwrap();
    load(&db, 3_000, 512);
    let report = db.report();
    assert!(
        report.stats.ssd_bytes_written > 0,
        "repository must reach SSD"
    );
    // Everything is still readable from both tiers.
    for i in (0..3_000u32).step_by(101) {
        assert!(
            db.get(format!("key{i:07}").as_bytes()).unwrap().is_some(),
            "key{i}"
        );
    }
    // Scans cross the NVM buffer / SSD LSM boundary seamlessly.
    let out = db.scan(b"key0001000", 30).unwrap();
    assert_eq!(out.len(), 30);
    assert_eq!(out[0].key, b"key0001000");
}

#[test]
fn write_amplification_ordering_matches_paper() {
    // Same workload on all three engines; the paper's ordering must hold:
    // MioDB (~3x bound) < MatrixKV < NoveLSM-class traditional LSMs.
    let n = 4_000u32;
    let vlen = 512usize;

    let mio = MioDb::open(MioOptions::small_for_tests()).unwrap();
    load(&mio, n, vlen);
    let wa_mio = mio.report().stats.write_amplification;

    let lsm = LsmOptions {
        table_bytes: 32 * 1024,
        level1_max_bytes: 64 * 1024,
        ..LsmOptions::default()
    };
    let matrix = MatrixKv::open(
        MatrixKvOptions {
            memtable_bytes: 64 * 1024,
            container_bytes: 256 * 1024,
            lsm: lsm.clone(),
            table_device: DeviceModel::nvm_unthrottled(),
            row_device: DeviceModel::nvm_unthrottled(),
            ..MatrixKvOptions::default()
        },
        Arc::new(Stats::new()),
    )
    .unwrap();
    load(&matrix, n, vlen);
    let wa_matrix = matrix.report().stats.write_amplification;

    let nove = NoveLsm::open(
        NoveLsmOptions {
            memtable_bytes: 64 * 1024,
            nvm_memtable_bytes: 256 * 1024,
            lsm,
            table_device: DeviceModel::nvm_unthrottled(),
            nvm_device: DeviceModel::nvm_unthrottled(),
            nvm_pool_bytes: 128 << 20,
            ..NoveLsmOptions::default()
        },
        Arc::new(Stats::new()),
    )
    .unwrap();
    load(&nove, n, vlen);
    let wa_nove = nove.report().stats.write_amplification;

    assert!(
        wa_mio < wa_matrix && wa_mio < wa_nove,
        "MioDB WA must be lowest: mio={wa_mio:.2} matrix={wa_matrix:.2} nove={wa_nove:.2}"
    );
    assert!(
        wa_mio < 4.5,
        "MioDB WA should stay near the ~3x bound, got {wa_mio:.2}"
    );
    assert!(
        wa_nove > 3.0,
        "a traditional LSM must amplify, got {wa_nove:.2}"
    );
}

#[test]
fn miodb_has_no_serialization_in_memory_mode() {
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    load(&db, 2_000, 512);
    for i in (0..2_000u32).step_by(37) {
        db.get(format!("key{i:07}").as_bytes()).unwrap();
    }
    let s = db.report().stats;
    assert_eq!(s.serialization_ns, 0, "PMTables never serialize");
    assert_eq!(s.deserialization_ns, 0, "PMTables never deserialize");
    assert!(s.zero_copy_compactions > 0);
}

#[test]
fn tiered_miodb_does_serialize_at_the_ssd_boundary() {
    let opts = MioOptions {
        repository: RepositoryMode::Ssd {
            lsm: LsmOptions {
                table_bytes: 32 * 1024,
                level1_max_bytes: 128 * 1024,
                ..LsmOptions::default()
            },
            device: DeviceModel::ssd_unthrottled(),
        },
        elastic_levels: 3,
        ..MioOptions::small_for_tests()
    };
    let db = MioDb::open(opts).unwrap();
    load(&db, 3_000, 512);
    let s = db.report().stats;
    assert!(
        s.serialization_ns > 0,
        "lazy-copy into SSD SSTables pays serialization (and only there)"
    );
}

#[test]
fn nvm_usage_reported_in_elastic_buffer() {
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    let before = db.elastic_buffer_bytes();
    for i in 0..2_000u32 {
        db.put(format!("key{i:07}").as_bytes(), &[1u8; 512])
            .unwrap();
    }
    // Mid-load the buffer holds flushed tables (Figure 14's metric).
    let during = db.report().nvm_used_bytes;
    assert!(during > 0);
    db.wait_idle().unwrap();
    let after = db.elastic_buffer_bytes();
    assert!(after >= before, "resting tables may remain");
}
