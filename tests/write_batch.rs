//! Integration tests of the atomic `WriteBatch` API: durability is
//! all-or-nothing across crashes, sequence numbers are consecutive, and
//! oversized batches rotate into an adequately sized MemTable.

use std::sync::Arc;

use miodb::pmem::PmemPool;
use miodb::{KvEngine, MioDb, MioOptions, Stats, WriteBatch};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("miodb-wb-{}-{name}", std::process::id()))
}

#[test]
fn batch_applies_all_operations() {
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    db.put(b"stale", b"old").unwrap();
    let mut b = WriteBatch::new();
    for i in 0..100u32 {
        b.put(
            format!("batch{i:03}").as_bytes(),
            format!("v{i}").as_bytes(),
        );
    }
    b.delete(b"stale");
    assert_eq!(b.len(), 101);
    db.write_batch(b).unwrap();
    for i in 0..100u32 {
        assert_eq!(
            db.get(format!("batch{i:03}").as_bytes()).unwrap().unwrap(),
            format!("v{i}").as_bytes()
        );
    }
    assert!(db.get(b"stale").unwrap().is_none());
}

#[test]
fn empty_batch_is_noop() {
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    db.write_batch(WriteBatch::new()).unwrap();
    let mut b = WriteBatch::new();
    b.put(b"x", b"1");
    b.clear();
    assert!(b.is_empty());
    db.write_batch(b).unwrap();
    assert!(db.get(b"x").unwrap().is_none());
}

#[test]
fn batch_larger_than_memtable_rotates() {
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap(); // 64 KiB memtables
    let mut b = WriteBatch::new();
    for i in 0..50u32 {
        b.put(format!("big{i:03}").as_bytes(), &vec![7u8; 4096]); // ~200 KiB total
    }
    db.write_batch(b).unwrap();
    db.wait_idle().unwrap();
    for i in 0..50u32 {
        assert_eq!(
            db.get(format!("big{i:03}").as_bytes()).unwrap().unwrap(),
            vec![7u8; 4096]
        );
    }
}

#[test]
fn batch_survives_crash_atomically() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("atomic");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        db.put(b"base", b"v").unwrap();
        let mut b = WriteBatch::new();
        b.put(b"t1", b"a");
        b.delete(b"base");
        b.put(b"t2", b"b");
        db.write_batch(b).unwrap();
        db.snapshot(&path).unwrap();
    }
    let pool = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
    let db = MioDb::recover(pool, opts).unwrap();
    // Every effect of the batch is present — an acknowledged batch is
    // durable as a unit.
    assert_eq!(db.get(b"t1").unwrap().unwrap(), b"a");
    assert_eq!(db.get(b"t2").unwrap().unwrap(), b"b");
    assert!(db.get(b"base").unwrap().is_none());
    std::fs::remove_file(&path).ok();
}

#[test]
fn interleaved_batches_and_singles_order_correctly() {
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    db.put(b"k", b"v1").unwrap();
    let mut b = WriteBatch::new();
    b.put(b"k", b"v2");
    db.write_batch(b).unwrap();
    db.put(b"k", b"v3").unwrap();
    let mut b = WriteBatch::new();
    b.delete(b"k");
    b.put(b"k", b"v4");
    db.write_batch(b).unwrap();
    assert_eq!(db.get(b"k").unwrap().unwrap(), b"v4");
    db.wait_idle().unwrap();
    assert_eq!(db.get(b"k").unwrap().unwrap(), b"v4");
}
