//! Miniature sensitivity sweeps wired into the test suite: cheap versions
//! of Figures 9/10/14 asserting that the *directions* the paper reports
//! hold on every run (the full sweeps live in the `repro` binary).

use miodb::workloads::{run_db_bench, BenchKind};
use miodb::{KvEngine, MioDb, MioOptions};

fn load(db: &MioDb, n: u64, vlen: usize) {
    run_db_bench(db, BenchKind::FillRandom, n, 0, vlen, 7).unwrap();
    db.wait_idle().unwrap();
}

#[test]
fn level_count_does_not_affect_correctness_or_wa() {
    // Figure 9's configuration axis: any elastic depth must produce the
    // same data and the same ~3x WA bound.
    let mut was = Vec::new();
    for levels in [1usize, 2, 4, 8] {
        let db = MioDb::open(MioOptions {
            elastic_levels: levels,
            ..MioOptions::small_for_tests()
        })
        .unwrap();
        load(&db, 2_000, 512);
        let r = run_db_bench(&db, BenchKind::ReadRandom, 400, 2_000, 512, 3).unwrap();
        assert_eq!(r.hits, 400, "levels={levels}: every key must be found");
        let wa = db.report().stats.write_amplification;
        assert!(
            wa < 4.5,
            "levels={levels}: WA {wa} above the zero-copy bound"
        );
        was.push(wa);
    }
    // Depth must not change WA materially (zero-copy merges are free).
    let spread =
        was.iter().cloned().fold(f64::MIN, f64::max) - was.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1.0, "WA should be depth-insensitive: {was:?}");
}

#[test]
fn dataset_growth_keeps_wa_flat() {
    // Figure 11's direction: MioDB's WA stays at the bound as data grows.
    let mut was = Vec::new();
    for n in [500u64, 1_500, 3_000] {
        let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
        load(&db, n, 512);
        was.push(db.report().stats.write_amplification);
    }
    for wa in &was {
        assert!(*wa < 4.5, "WA must stay near 3x: {was:?}");
    }
    assert!(
        (was[2] - was[0]).abs() < 1.0,
        "WA must not grow with the dataset: {was:?}"
    );
}

#[test]
fn buffer_cap_trades_memory_for_stalls_not_correctness() {
    // Figure 14's axis: a small elastic cap may slow writes (backpressure)
    // but never loses data, and the buffer respects the cap once settled.
    for cap in [192 * 1024u64, 1 << 20] {
        let db = MioDb::open(MioOptions {
            elastic_buffer_cap: Some(cap),
            ..MioOptions::small_for_tests()
        })
        .unwrap();
        load(&db, 2_000, 512);
        let r = run_db_bench(&db, BenchKind::ReadRandom, 300, 2_000, 512, 9).unwrap();
        assert_eq!(r.hits, 300, "cap={cap}: data must survive backpressure");
    }
}

#[test]
fn deeper_buffers_grow_bottom_tables() {
    // The mechanism behind Figure 9's read trade-off: with more levels,
    // tables compound (2^level MemTables each) before reaching the
    // repository.
    let db = MioDb::open(MioOptions {
        elastic_levels: 6,
        ..MioOptions::small_for_tests()
    })
    .unwrap();
    load(&db, 3_000, 512);
    let report = db.report();
    // At rest, each level holds at most one table (paper §5.4: "only one
    // PMTable in each level" under light load).
    for (i, count) in report.tables_per_level.iter().enumerate() {
        assert!(
            *count <= 1,
            "level {i} holds {count} tables at rest: {report:?}"
        );
    }
}
