//! Trace-correctness integration tests: span trees produced by live
//! engine and server runs must be well-nested with monotonic timestamps,
//! trace ids must survive the wire unchanged, and disabled tracing must
//! stay cheap enough to leave compiled into every build.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use miodb::common::trace::{self, SpanKind, SpanLayer, SpanRecord};
use miodb::{KvClient, KvEngine, KvServer, MioDb, MioOptions, ServerOptions};

/// Groups spans by trace id, dropping the background track (trace 0).
fn by_trace(spans: &[SpanRecord]) -> HashMap<u64, Vec<&SpanRecord>> {
    let mut m: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for s in spans {
        if s.trace_id != 0 {
            m.entry(s.trace_id).or_default().push(s);
        }
    }
    m
}

/// Every span must close after it opens, and every child must lie within
/// its parent's [start, end] window — the RAII guards guarantee this by
/// construction, so a violation means the context save/restore broke.
fn assert_well_nested(spans: &[&SpanRecord]) {
    let index: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id, *s)).collect();
    for s in spans {
        assert!(
            s.end_ns >= s.start_ns,
            "span {:?} ends before it starts",
            s.kind
        );
        if s.parent_id == 0 {
            continue;
        }
        // Parents can be missing (e.g. the ring dropped them); nesting is
        // only checkable when both ends survived.
        if let Some(p) = index.get(&s.parent_id) {
            assert!(
                s.start_ns >= p.start_ns && s.end_ns <= p.end_ns,
                "{:?} [{}-{}] escapes parent {:?} [{}-{}]",
                s.kind,
                s.start_ns,
                s.end_ns,
                p.kind,
                p.start_ns,
                p.end_ns
            );
        }
    }
}

#[test]
fn engine_spans_form_well_nested_trees_with_monotonic_timestamps() {
    let _x = trace::exclusive();
    // Direct drive: implicit roots give each engine op its own trace.
    trace::enable(1 << 16, 1, true);
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    for i in 0..200u32 {
        let key = format!("trace-key-{i:04}");
        db.put(key.as_bytes(), &[b'v'; 64]).unwrap();
        assert!(db.get(key.as_bytes()).unwrap().is_some());
    }
    db.close().unwrap();
    let spans = trace::drain();
    trace::disable();

    let traces = by_trace(&spans);
    assert!(
        traces.len() >= 200,
        "expected >=200 traces (one per op), got {}",
        traces.len()
    );
    let mut engine_kinds: HashSet<SpanKind> = HashSet::new();
    for group in traces.values() {
        assert_well_nested(group);
        for s in group {
            if s.kind.layer() == SpanLayer::Engine {
                engine_kinds.insert(s.kind);
            }
        }
    }
    assert!(
        engine_kinds.contains(&SpanKind::MemtableProbe),
        "reads must produce memtable-probe spans, saw {engine_kinds:?}"
    );
    assert!(
        engine_kinds.contains(&SpanKind::MemtableInsert),
        "writes must produce memtable-insert spans, saw {engine_kinds:?}"
    );
}

#[test]
fn trace_ids_propagate_unchanged_across_the_wire() {
    let _x = trace::exclusive();
    let db: Arc<dyn KvEngine> = Arc::new(
        MioDb::open(MioOptions {
            name: "MioDB-trace-test".to_string(),
            ..MioOptions::small_for_tests()
        })
        .unwrap(),
    );
    let server = KvServer::start("127.0.0.1:0", db, ServerOptions::default()).unwrap();
    let mut client = KvClient::connect(server.local_addr()).unwrap();

    trace::enable(1 << 16, 1, false);
    for i in 0..50u32 {
        let key = format!("wire-key-{i:03}");
        client.put(key.as_bytes(), b"wire-value").unwrap();
        assert_eq!(
            client.get(key.as_bytes()).unwrap().as_deref(),
            Some(&b"wire-value"[..]),
            "tracing must not alter request semantics"
        );
    }
    client.close().unwrap();
    let spans = trace::drain();
    trace::disable();
    server.shutdown();

    let client_ids: HashSet<u64> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::ClientRequest)
        .map(|s| s.trace_id)
        .collect();
    let server_ids: HashSet<u64> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::SrvRequest)
        .map(|s| s.trace_id)
        .collect();
    assert!(client_ids.len() >= 100, "one client span per request");
    // Every server-side trace id was minted by the client and crossed the
    // frame header verbatim — the server never invents ids of its own.
    assert!(
        server_ids.is_subset(&client_ids),
        "server saw trace ids the client never sent"
    );
    assert!(
        !server_ids.is_empty() && server_ids.intersection(&client_ids).count() > 0,
        "no trace crossed the wire"
    );
    // At least one request's engine work joined the same trace.
    let engine_joined = spans
        .iter()
        .any(|s| s.kind.layer() == SpanLayer::Engine && client_ids.contains(&s.trace_id));
    assert!(engine_joined, "engine spans never joined a client trace");
    // Complete client->server->engine trees exist end to end.
    assert!(trace::complete_tree_count(&spans) > 0);
}

#[test]
fn disabled_tracing_costs_next_to_nothing() {
    let _x = trace::exclusive();
    assert!(!trace::is_enabled());
    // Warm the code path once.
    for _ in 0..1000 {
        let g = trace::span(SpanKind::MemtableProbe);
        assert!(!g.is_active());
    }
    const ITERS: u32 = 100_000;
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        let _g = trace::span(SpanKind::MemtableProbe);
    }
    let per_call = t0.elapsed().as_nanos() / u128::from(ITERS);
    // One relaxed atomic load plus a branch; the bound is generous so a
    // slow CI host cannot flake, but catches any lock or allocation
    // sneaking onto the disabled path.
    assert!(
        per_call < 1_000,
        "disabled span() costs {per_call}ns/call, expected well under 1us"
    );
    assert!(trace::drain().is_empty(), "disabled tracing recorded spans");
}
