//! Integration tests for the sharded network service layer: wire round
//! trips, cross-shard scan merging, visibility of delete/re-put through
//! the server path, durability of acknowledged writes across a simulated
//! server kill, and the clean-shutdown guarantee that no acknowledged
//! write relies on WAL replay.

use std::sync::Arc;

use miodb::pmem::PmemPool;
use miodb::{KvClient, KvEngine, KvServer, MioDb, MioOptions, ServerOptions, ShardRouter, Stats};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("miodb-srv-{}-{name}", std::process::id()))
}

fn test_opts() -> MioOptions {
    MioOptions {
        name: "MioDB-test".to_string(),
        ..MioOptions::small_for_tests()
    }
}

/// Starts a server over `shards` MioDB instances; returns both handles
/// (the router stays accessible for snapshots and close).
fn start_server(shards: usize) -> (KvServer, Arc<ShardRouter<MioDb>>) {
    let router = Arc::new(ShardRouter::open_miodb(&test_opts(), shards).unwrap());
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn KvEngine>,
        ServerOptions::default(),
    )
    .unwrap();
    (server, router)
}

fn recover_shard(path: &std::path::Path, opts: &MioOptions) -> MioDb {
    let pool = PmemPool::restore_from_file(path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
    MioDb::recover(pool, opts.clone()).unwrap()
}

#[test]
fn round_trip_and_stats_over_wire() {
    let (server, router) = start_server(2);
    let mut c = KvClient::connect(server.local_addr()).unwrap();
    c.put(b"alpha", b"1").unwrap();
    c.put(b"beta", b"2").unwrap();
    assert_eq!(c.get(b"alpha").unwrap().unwrap(), b"1");
    assert_eq!(c.get(b"missing").unwrap(), None);
    c.delete(b"alpha").unwrap();
    assert_eq!(c.get(b"alpha").unwrap(), None);
    c.batch(vec![
        (b"gamma".to_vec(), b"3".to_vec(), miodb::common::OpKind::Put),
        (b"beta".to_vec(), Vec::new(), miodb::common::OpKind::Delete),
    ])
    .unwrap();
    assert_eq!(c.get(b"gamma").unwrap().unwrap(), b"3");
    assert_eq!(c.get(b"beta").unwrap(), None);
    // STATS carries both engine and service families in one scrape.
    let stats = c.stats().unwrap();
    assert!(stats.contains("miodb_server_active_connections"));
    assert!(stats.contains("miodb_server_request_latency_seconds"));
    c.close().unwrap();
    server.shutdown();
    router.close().unwrap();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (server, router) = start_server(2);
    let mut c = KvClient::connect(server.local_addr()).unwrap();
    let puts: Vec<miodb::common::Request> = (0..100u32)
        .map(|i| miodb::common::Request::Put {
            key: format!("pipe{i:03}").into_bytes(),
            value: format!("v{i}").into_bytes(),
        })
        .collect();
    for resp in c.pipeline(&puts).unwrap() {
        assert_eq!(resp, miodb::common::Response::Ok);
    }
    let gets: Vec<miodb::common::Request> = (0..100u32)
        .map(|i| miodb::common::Request::Get {
            key: format!("pipe{i:03}").into_bytes(),
        })
        .collect();
    let resps = c.pipeline(&gets).unwrap();
    for (i, resp) in resps.iter().enumerate() {
        assert_eq!(
            *resp,
            miodb::common::Response::Value(Some(format!("v{i}").into_bytes())),
            "response {i} out of order"
        );
    }
    c.close().unwrap();
    server.shutdown();
    router.close().unwrap();
}

#[test]
fn cross_shard_scan_merges_in_global_order() {
    let (server, router) = start_server(4);
    let mut c = KvClient::connect(server.local_addr()).unwrap();
    for i in 0..400u32 {
        c.put(format!("key{i:05}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    // Keys hash across all four shards; the scan must come back globally
    // sorted and complete regardless.
    {
        let hit: std::collections::HashSet<usize> = (0..400u32)
            .map(|i| router.shard_of(format!("key{i:05}").as_bytes()))
            .collect();
        assert_eq!(hit.len(), 4, "keys must spread across all shards");
    }
    let out = c.scan(b"key00100", 150).unwrap();
    assert_eq!(out.len(), 150);
    for (j, e) in out.iter().enumerate() {
        assert_eq!(e.key, format!("key{:05}", 100 + j).into_bytes());
        assert_eq!(e.value, format!("v{}", 100 + j).into_bytes());
    }
    // Tail scan past the end of the keyspace.
    let tail = c.scan(b"key00390", 100).unwrap();
    assert_eq!(tail.len(), 10);
    assert_eq!(tail.last().unwrap().key, b"key00399");
    c.close().unwrap();
    server.shutdown();
    router.close().unwrap();
}

#[test]
fn delete_then_reput_is_visible_through_server() {
    let (server, router) = start_server(3);
    let mut c = KvClient::connect(server.local_addr()).unwrap();
    c.put(b"churn", b"first").unwrap();
    c.delete(b"churn").unwrap();
    assert_eq!(c.get(b"churn").unwrap(), None, "tombstone must hide value");
    let scan = c.scan(b"churn", 1).unwrap();
    assert!(
        scan.is_empty() || scan[0].key != b"churn",
        "deleted key must not surface in scans"
    );
    c.put(b"churn", b"second").unwrap();
    assert_eq!(
        c.get(b"churn").unwrap().unwrap(),
        b"second",
        "re-put after delete must be visible"
    );
    let scan = c.scan(b"churn", 1).unwrap();
    assert_eq!(scan.len(), 1);
    assert_eq!(scan[0].key, b"churn");
    assert_eq!(scan[0].value, b"second");
    c.close().unwrap();
    server.shutdown();
    router.close().unwrap();
}

#[test]
fn connection_limit_refuses_with_error_frame() {
    let router = Arc::new(ShardRouter::open_miodb(&test_opts(), 1).unwrap());
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn KvEngine>,
        ServerOptions {
            max_connections: 1,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let mut c1 = KvClient::connect(server.local_addr()).unwrap();
    c1.put(b"k", b"v").unwrap(); // guarantees c1 is accepted and counted
    let mut c2 = KvClient::connect(server.local_addr()).unwrap();
    let err = c2.get(b"k").expect_err("second connection must be refused");
    assert!(
        err.to_string().contains("connection limit"),
        "unexpected refusal error: {err}"
    );
    assert_eq!(server.telemetry().active_connections(), 1);
    c1.close().unwrap();
    server.shutdown();
    router.close().unwrap();
}

/// A frame with an opcode the server does not know gets a typed `Err`
/// response naming the opcode — and the connection stays open, so a
/// client with a newer protocol revision degrades per-request instead of
/// being dropped mid-pipeline.
#[test]
fn unknown_opcode_answers_err_and_keeps_connection() {
    use miodb::common::proto::{self, read_frame, write_frame, Request, Response};
    use std::io::{BufReader, BufWriter, Write};
    use std::net::TcpStream;

    let router = Arc::new(ShardRouter::open_miodb(&test_opts(), 1).unwrap());
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn KvEngine>,
        ServerOptions::default(),
    )
    .unwrap();
    router.put(b"still", b"served").unwrap();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);

    // 0x60 is no opcode this protocol revision knows.
    write_frame(&mut writer, 0x60, 1, b"whatever").unwrap();
    writer.flush().unwrap();
    let frame = read_frame(&mut reader)
        .unwrap()
        .expect("typed reply, not a hangup");
    match Response::decode(frame.opcode, &frame.body).unwrap() {
        Response::Err(msg) => assert!(
            msg.contains("unsupported opcode") && msg.contains("0x60"),
            "error must name the opcode: {msg}"
        ),
        other => panic!("expected Err response, got {other:?}"),
    }

    // The same connection still serves valid requests.
    proto::write_request(
        &mut writer,
        2,
        &Request::Get {
            key: b"still".to_vec(),
        },
    )
    .unwrap();
    writer.flush().unwrap();
    let frame = read_frame(&mut reader)
        .unwrap()
        .expect("connection must stay open");
    assert_eq!(frame.id, 2);
    match Response::decode(frame.opcode, &frame.body).unwrap() {
        Response::Value(v) => assert_eq!(v.as_deref(), Some(&b"served"[..])),
        other => panic!("expected value, got {other:?}"),
    }
    server.shutdown();
    router.close().unwrap();
}

/// Kill the server mid-load: every write the client saw acknowledged must
/// survive into a recovered engine. The "kill" is the repo's crash idiom —
/// snapshot each shard's NVM pool with flushes still in flight (no
/// `wait_idle`, no close) and recover from the copies; acknowledged writes
/// land via WAL replay when their MemTables never flushed.
#[test]
fn killed_server_loses_no_acknowledged_writes() {
    const SHARDS: usize = 2;
    const KEYS: u32 = 2_000;
    let opts = test_opts();
    let (server, router) = start_server(SHARDS);
    let mut c = KvClient::connect(server.local_addr()).unwrap();
    for i in 0..KEYS {
        // Each put is acknowledged before the next is sent.
        c.put(format!("ack{i:06}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    let paths: Vec<_> = (0..SHARDS).map(|s| tmp(&format!("kill{s}"))).collect();
    for (s, path) in paths.iter().enumerate() {
        router.shards()[s].snapshot(path).unwrap();
    }
    drop(c);
    server.shutdown();
    drop(router); // the "killed" process is gone

    let recovered: Vec<MioDb> = paths
        .iter()
        .enumerate()
        .map(|(s, p)| recover_shard(p, &opts.shard(s, SHARDS)))
        .collect();
    let replayed: u64 = recovered.iter().map(MioDb::recovered_wal_records).sum();
    let router = ShardRouter::new(recovered);
    for i in 0..KEYS {
        assert_eq!(
            router
                .get(format!("ack{i:06}").as_bytes())
                .unwrap()
                .as_deref(),
            Some(format!("v{i}").as_bytes()),
            "acknowledged key ack{i:06} lost in server kill (WAL replayed {replayed} records)"
        );
    }
    router.close().unwrap();
    for p in &paths {
        std::fs::remove_file(p).ok();
    }
}

/// Clean shutdown is the opposite guarantee: after `close()` drains the
/// commit queue and flushes MemTables, recovery must replay **zero** WAL
/// records — durability of a clean exit never depends on the log.
#[test]
fn clean_close_needs_no_wal_replay() {
    const SHARDS: usize = 2;
    let opts = test_opts();
    let (server, router) = start_server(SHARDS);

    // Concurrent connections so writes actually form commit groups.
    let addr = server.local_addr();
    std::thread::scope(|s| {
        for t in 0..4u32 {
            s.spawn(move || {
                let mut c = KvClient::connect(addr).unwrap();
                for i in 0..300u32 {
                    c.put(
                        format!("clean-{t}-{i:04}").as_bytes(),
                        format!("v{t}-{i}").as_bytes(),
                    )
                    .unwrap();
                }
                c.close().unwrap();
            });
        }
    });
    server.shutdown();
    router.close().unwrap();

    let paths: Vec<_> = (0..SHARDS).map(|s| tmp(&format!("clean{s}"))).collect();
    for (s, path) in paths.iter().enumerate() {
        router.shards()[s].snapshot(path).unwrap();
    }
    let recovered: Vec<MioDb> = paths
        .iter()
        .enumerate()
        .map(|(s, p)| recover_shard(p, &opts.shard(s, SHARDS)))
        .collect();
    for db in &recovered {
        assert_eq!(
            db.recovered_wal_records(),
            0,
            "clean close must not leave WAL records to replay"
        );
    }
    let recovered = ShardRouter::new(recovered);
    for t in 0..4u32 {
        for i in 0..300u32 {
            assert_eq!(
                recovered
                    .get(format!("clean-{t}-{i:04}").as_bytes())
                    .unwrap()
                    .as_deref(),
                Some(format!("v{t}-{i}").as_bytes()),
                "clean-{t}-{i:04} lost across clean shutdown"
            );
        }
    }
    recovered.close().unwrap();
    for p in &paths {
        std::fs::remove_file(p).ok();
    }
}

/// Graceful shutdown drains in-flight pipelined requests: responses for
/// everything already sent arrive before the connection closes.
/// Histories recorded *through the wire protocol* are linearizable: four
/// client connections hammer a sharded server over a hot keyspace, every
/// invoke/return window and outcome is logged via the `miodb-check`
/// client hooks, and the per-key Wing–Gong checker validates the result.
/// Client-side `MaybeApplied` outcomes (none expected here, but the hook
/// handles them) are treated as ambiguous.
#[test]
fn wire_histories_are_linearizable() {
    use miodb::check::{check_history, HistoryRecorder};
    let (server, router) = start_server(2);
    let addr = server.local_addr();
    let recorder = HistoryRecorder::new();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let mut log = recorder.log();
            s.spawn(move || {
                let mut c = KvClient::connect(addr).unwrap();
                let mut x = 0x5DEECE66D ^ (t + 1);
                for i in 0..120u64 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = format!("wire{:02}", x % 16);
                    match (x >> 33) % 10 {
                        0..=3 => {
                            let value = format!("t{t}-i{i}");
                            log.client_put(&mut c, key.as_bytes(), value.as_bytes())
                                .unwrap();
                        }
                        4..=7 => {
                            log.client_get(&mut c, key.as_bytes()).unwrap();
                        }
                        _ => {
                            log.client_delete(&mut c, key.as_bytes()).unwrap();
                        }
                    }
                }
                c.close().unwrap();
            });
        }
    });
    let history = recorder.take_history();
    assert_eq!(history.len(), 4 * 120);
    let verdict = check_history(&history);
    assert!(verdict.is_linearizable(), "{verdict}");
    server.shutdown();
    router.close().unwrap();
}

/// The wire-protocol linearizability contract holds at connection-sweep
/// scale: one thousand live connections to the event-driven server, each
/// issuing recorded operations over a shared keyspace from a pool of
/// driver threads (the test holds both ends of every socket, hence the
/// fd-limit raise). The recorded history — real invoke/return windows and
/// observed outcomes for every connection — must check linearizable.
#[test]
fn wire_histories_linearizable_at_1000_connections() {
    use miodb::check::{check_history, HistoryRecorder};
    const CONNS: usize = 1000;
    const DRIVERS: usize = 16;
    const OPS_PER_CONN: u64 = 12;
    let achieved = miodb::server::raise_nofile_limit(2 * CONNS as u64 + 512);
    assert!(
        achieved >= 2 * CONNS as u64 + 256,
        "fd limit too low for a 1000-connection test: {achieved}"
    );
    let router = Arc::new(ShardRouter::open_miodb(&test_opts(), 2).unwrap());
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn KvEngine>,
        ServerOptions {
            max_connections: CONNS + 16,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let recorder = HistoryRecorder::new();
    std::thread::scope(|s| {
        for d in 0..DRIVERS {
            let lo = CONNS * d / DRIVERS;
            let hi = CONNS * (d + 1) / DRIVERS;
            // One log (= one checker process) per connection: ops on one
            // connection are sequential, ops across connections overlap.
            let mut logs: Vec<_> = (lo..hi).map(|_| recorder.log()).collect();
            s.spawn(move || {
                let mut conns: Vec<KvClient> =
                    (lo..hi).map(|_| KvClient::connect(addr).unwrap()).collect();
                for i in 0..OPS_PER_CONN {
                    for (j, c) in conns.iter_mut().enumerate() {
                        let log = &mut logs[j];
                        let mut x = 0x9E37_79B9_7F4A_7C15u64
                            ^ ((lo + j) as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
                            ^ i.wrapping_mul(0xD6E8_FEB8_6659_FD93);
                        x ^= x >> 33;
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = format!("sw{:03}", x % 192);
                        match (x >> 33) % 10 {
                            0..=3 => {
                                let value = format!("c{}-i{i}", lo + j);
                                log.client_put(c, key.as_bytes(), value.as_bytes()).unwrap();
                            }
                            4..=8 => {
                                log.client_get(c, key.as_bytes()).unwrap();
                            }
                            _ => {
                                log.client_delete(c, key.as_bytes()).unwrap();
                            }
                        }
                    }
                }
                for c in conns {
                    c.close().unwrap();
                }
            });
        }
    });
    let history = recorder.take_history();
    assert_eq!(history.len(), CONNS * OPS_PER_CONN as usize);
    let verdict = check_history(&history);
    assert!(verdict.is_linearizable(), "{verdict}");
    server.shutdown();
    router.close().unwrap();
}

#[test]
fn shutdown_drains_inflight_pipeline() {
    let (server, router) = start_server(2);
    let mut c = KvClient::connect(server.local_addr()).unwrap();
    // One round trip first: `connect` returns at TCP-handshake time, and
    // the drain guarantee covers *accepted* connections.
    c.put(b"warmup", b"w").unwrap();
    let reqs: Vec<miodb::common::Request> = (0..200u32)
        .map(|i| miodb::common::Request::Put {
            key: format!("drain{i:04}").into_bytes(),
            value: vec![b'd'; 64],
        })
        .collect();
    for req in &reqs {
        c.send(req).unwrap();
    }
    c.flush().unwrap();
    server.shutdown(); // returns only after handlers drained + responded
    let mut acked = 0;
    for _ in &reqs {
        match c.recv() {
            Ok((_, miodb::common::Response::Ok)) => acked += 1,
            Ok((_, other)) => panic!("unexpected response {other:?}"),
            Err(_) => break, // connection closed after drain
        }
    }
    assert_eq!(acked, reqs.len(), "all pipelined requests must be answered");
    router.close().unwrap();
}
