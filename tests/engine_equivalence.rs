//! Cross-engine equivalence: MioDB and every baseline must produce
//! identical results to a reference model under the same operation
//! sequence — puts, overwrites, deletes, point reads and scans.

use std::collections::BTreeMap;
use std::sync::Arc;

use miodb::baselines::{MatrixKv, MatrixKvOptions, NoveLsm, NoveLsmOptions};
use miodb::lsm::{LsmDb, LsmOptions};
use miodb::pmem::DeviceModel;
use miodb::{KvEngine, MioDb, MioOptions, Stats};

fn engines() -> Vec<Box<dyn KvEngine>> {
    let lsm = LsmOptions {
        table_bytes: 16 * 1024,
        level1_max_bytes: 64 * 1024,
        ..Default::default()
    };
    vec![
        Box::new(MioDb::open(MioOptions::small_for_tests()).unwrap()),
        Box::new(
            NoveLsm::open(
                NoveLsmOptions {
                    memtable_bytes: 32 * 1024,
                    nvm_memtable_bytes: 64 * 1024,
                    lsm: lsm.clone(),
                    table_device: DeviceModel::nvm_unthrottled(),
                    nvm_device: DeviceModel::nvm_unthrottled(),
                    nvm_pool_bytes: 64 << 20,
                    ..NoveLsmOptions::default()
                },
                Arc::new(Stats::new()),
            )
            .unwrap(),
        ),
        Box::new(
            NoveLsm::open(
                NoveLsmOptions {
                    memtable_bytes: 32 * 1024,
                    nvm_memtable_bytes: 64 * 1024,
                    no_sst: true,
                    lsm: lsm.clone(),
                    table_device: DeviceModel::nvm_unthrottled(),
                    nvm_device: DeviceModel::nvm_unthrottled(),
                    nvm_pool_bytes: 64 << 20,
                    name: "NoveLSM-NoSST".to_string(),
                    ..NoveLsmOptions::default()
                },
                Arc::new(Stats::new()),
            )
            .unwrap(),
        ),
        Box::new(
            MatrixKv::open(
                MatrixKvOptions {
                    memtable_bytes: 32 * 1024,
                    container_bytes: 128 * 1024,
                    lsm: lsm.clone(),
                    table_device: DeviceModel::nvm_unthrottled(),
                    row_device: DeviceModel::nvm_unthrottled(),
                    ..MatrixKvOptions::default()
                },
                Arc::new(Stats::new()),
            )
            .unwrap(),
        ),
        Box::new(
            LsmDb::open(
                miodb::lsm::db::LsmDbOptions {
                    memtable_bytes: 32 * 1024,
                    lsm,
                    table_device: DeviceModel::nvm_unthrottled(),
                    wal_device: DeviceModel::nvm_unthrottled(),
                    name: "LevelDB".to_string(),
                },
                Arc::new(Stats::new()),
            )
            .unwrap(),
        ),
    ]
}

/// Deterministic pseudo-random op stream.
fn op_stream(n: usize) -> Vec<(u8, u32, u32)> {
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let op = (state % 10) as u8; // 0..7 put, 8..9 delete
            let key = ((state >> 8) % 400) as u32;
            let vlen = 32 + ((state >> 24) % 700) as u32;
            (op, key, vlen)
        })
        .collect()
}

#[test]
fn all_engines_match_reference_model() {
    let ops = op_stream(6_000);
    for engine in engines() {
        let mut model: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        for (i, &(op, key, vlen)) in ops.iter().enumerate() {
            let k = format!("key{key:06}");
            if op < 8 {
                let v = vec![(i % 251) as u8; vlen as usize];
                engine.put(k.as_bytes(), &v).unwrap();
                model.insert(key, v);
            } else {
                engine.delete(k.as_bytes()).unwrap();
                model.remove(&key);
            }
            // Interleave occasional reads mid-stream (during compactions).
            if i % 97 == 0 {
                let probe = (key + 13) % 400;
                let pk = format!("key{probe:06}");
                let got = engine.get(pk.as_bytes()).unwrap();
                assert_eq!(
                    got.as_ref(),
                    model.get(&probe),
                    "{}: mid-stream divergence at op {i} key {probe}",
                    engine.name()
                );
            }
        }
        engine.wait_idle().unwrap();
        // Full verification.
        for key in 0..400u32 {
            let k = format!("key{key:06}");
            let got = engine.get(k.as_bytes()).unwrap();
            assert_eq!(
                got.as_ref(),
                model.get(&key),
                "{}: key {key}",
                engine.name()
            );
        }
        // Scan equivalence over a window.
        let got = engine.scan(b"key000100", 50).unwrap();
        let expected: Vec<(String, Vec<u8>)> = model
            .range(100..)
            .take(50)
            .map(|(k, v)| (format!("key{k:06}"), v.clone()))
            .collect();
        assert_eq!(got.len(), expected.len(), "{}: scan length", engine.name());
        for (g, (ek, ev)) in got.iter().zip(&expected) {
            assert_eq!(&g.key, ek.as_bytes(), "{}: scan key order", engine.name());
            assert_eq!(&g.value, ev, "{}: scan value", engine.name());
        }
    }
}

#[test]
fn empty_and_missing_keys() {
    for engine in engines() {
        assert!(
            engine.get(b"never-written").unwrap().is_none(),
            "{}",
            engine.name()
        );
        assert!(
            engine.scan(b"", 10).unwrap().is_empty(),
            "{}",
            engine.name()
        );
        engine.delete(b"never-written").unwrap(); // deleting absent is fine
        assert!(
            engine.get(b"never-written").unwrap().is_none(),
            "{}",
            engine.name()
        );
    }
}

#[test]
fn large_values_round_trip() {
    for engine in engines() {
        let big = vec![0xA5u8; 300 * 1024];
        engine.put(b"jumbo", &big).unwrap();
        assert_eq!(
            engine.get(b"jumbo").unwrap().unwrap(),
            big,
            "{}",
            engine.name()
        );
        engine.wait_idle().unwrap();
        assert_eq!(
            engine.get(b"jumbo").unwrap().unwrap(),
            big,
            "{}",
            engine.name()
        );
    }
}
