//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! a minimal property-testing engine exposing the subset of proptest's API
//! that the workspace's property tests use:
//!
//! - [`Strategy`] with `prop_map`/`boxed`, [`any`], integer ranges,
//!   tuples, [`collection::vec`], [`Just`] and the [`prop_oneof!`] macro;
//! - the [`proptest!`] macro generating `#[test]` functions that run a
//!   configurable number of random cases ([`ProptestConfig::with_cases`]);
//! - [`prop_assert!`]/[`prop_assert_eq!`] returning
//!   [`test_runner::TestCaseError`].
//!
//! Differences from real proptest: **no shrinking** (failures print the
//! full generated inputs instead), no persistence files, and a fixed
//! deterministic seed derived from the test name so failures reproduce.

use std::fmt::Debug;

pub mod test_runner {
    //! Case execution plumbing used by the generated tests.

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        /// The failure message.
        pub fn message(&self) -> &str {
            &self.0
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 generator seeding each test from its name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (stable across runs).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty draw");
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Types with a canonical uniform strategy (see [`super::any`]).
    pub trait Arbitrary: Debug + Sized {
        /// Draws a uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`super::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    assert!(span > 0, "empty range strategy");
                    self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $idx:tt),+ )),+ $(;)?) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );

    /// Weighted union used by [`prop_oneof!`](crate::prop_oneof).
    pub struct OneOf<T> {
        choices: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> OneOf<T> {
        /// Builds from `(weight, strategy)` pairs.
        pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
            let total = choices.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            OneOf { choices, total }
        }
    }

    impl<T: Debug> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.choices {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

/// The canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy yielding `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a weighted union of strategies: `prop_oneof![s1, s2]` or
/// `prop_oneof![3 => s1, 1 => s2]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Eagerly rendered so the body may move the inputs.
                let mut shown = ::std::string::String::new();
                $(shown.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\ninputs:\n{}",
                        stringify!($name), case + 1, config.cases, e, shown
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Re-exported so fully-qualified `proptest::strategy::Strategy` paths work.
pub use strategy::Strategy;

// Debug is re-exported indirectly through generated format!(); keep the
// import referenced so it is not flagged as unused.
#[allow(unused_imports)]
use Debug as _Debug;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u16, Vec<u8>),
        Del(u16),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (any::<u16>(), collection::vec(any::<u8>(), 0..16)).prop_map(|(k, v)| Op::Put(k, v)),
            1 => any::<u16>().prop_map(Op::Del),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len = {}", v.len());
        }

        /// Doc comments on property tests must parse.
        #[test]
        fn ranges_respect_bounds(x in 64usize..1024) {
            prop_assert!((64..1024).contains(&x));
            if x == 64 {
                return Ok(());
            }
            prop_assert!(x > 64);
        }

        #[test]
        fn oneof_generates_both_arms(ops in collection::vec(op(), 32..64)) {
            let puts = ops.iter().filter(|o| matches!(o, Op::Put(..))).count();
            prop_assert!(puts > 0, "no puts in {ops:?}");
            prop_assert_eq!(ops.len(), ops.len());
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
