//! Offline shim for the `rand` crate.
//!
//! Provides the subset the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::fill_bytes`] — backed by the SplitMix64/xoshiro256** generators.
//! Not cryptographically secure and not stream-compatible with the real
//! crate; only statistical quality suitable for tests and benchmarks.

/// Seeding constructor trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (see [`Random`]).
    fn gen<T: Random>(&mut self) -> T {
        T::random(self.next_u64())
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(range, self.next_u64())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Types constructible from 64 random bits.
pub trait Random {
    /// Builds a uniformly distributed value from raw bits.
    fn random(bits: u64) -> Self;
}

impl Random for f64 {
    fn random(bits: u64) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for u64 {
    fn random(bits: u64) -> u64 {
        bits
    }
}

impl Random for u32 {
    fn random(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Random for bool {
    fn random(bits: u64) -> bool {
        bits & (1 << 63) != 0
    }
}

impl Random for u8 {
    fn random(bits: u64) -> u8 {
        (bits >> 56) as u8
    }
}

/// Integer types uniformly sampleable over a half-open range.
pub trait UniformRange: Sized {
    /// Samples from `range` given raw bits.
    fn sample(range: std::ops::Range<Self>, bits: u64) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample(range: std::ops::Range<Self>, bits: u64) -> Self {
                let span = (range.end - range.start) as u128;
                assert!(span > 0, "empty range");
                // Multiply-shift keeps the modulo bias negligible for the
                // spans used in tests/benchmarks.
                range.start + ((bits as u128 * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform!(u64, u32, u16, u8, usize);

impl UniformRange for i64 {
    fn sample(range: std::ops::Range<Self>, bits: u64) -> Self {
        let span = (range.end as i128 - range.start as i128) as u128;
        assert!(span > 0, "empty range");
        (range.start as i128 + ((bits as u128 * span) >> 64) as i128) as i64
    }
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the shim's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Re-export so `use rand::prelude::*` works.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen_low = false;
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            seen_low |= x == 10;
        }
        assert!(seen_low, "range sampling should reach the low end");
    }

    #[test]
    fn fill_bytes_covers_buffer() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
