//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! a minimal benchmark harness exposing the subset of criterion's API the
//! `crates/bench` benchmarks use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`]/[`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`]/[`Bencher::iter_custom`]/[`Bencher::iter_with_setup`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples (auto-scaled iteration counts), and prints
//! the median per-iteration time plus throughput when configured. There
//! are no statistical comparisons, plots or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample throughput metadata.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Times `routine`, auto-scaling iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up also calibrates how many iterations fit in ~2ms.
        let calib = Instant::now();
        black_box(routine());
        let once = calib.elapsed().max(Duration::from_nanos(50));
        self.iters_per_sample =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine(iters)` where the routine reports its own elapsed time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.iters_per_sample = 1;
        black_box(routine(1)); // warm-up
        for _ in 0..self.sample_count {
            self.samples.push(routine(1));
        }
    }

    /// Times `routine(input)` with untimed per-iteration `setup`.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn median_ns(&self) -> u128 {
        let mut per_iter: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / self.iters_per_sample.max(1) as u128)
            .collect();
        per_iter.sort_unstable();
        per_iter.get(per_iter.len() / 2).copied().unwrap_or(0)
    }
}

fn human_time(ns: u128) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs a benchmark receiving `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Finishes the group (printing is immediate; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let ns = b.median_ns();
        let mut line = format!("{}/{:<28} time: {:>12}", self.name, id, human_time(ns));
        if let Some(tp) = self.throughput {
            let per_sec = |units: u64| units as f64 * 1e9 / ns.max(1) as f64;
            match tp {
                Throughput::Bytes(bytes) => {
                    line.push_str(&format!(
                        "   thrpt: {:.2} MiB/s",
                        per_sec(bytes) / (1 << 20) as f64
                    ));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("   thrpt: {:.0} elem/s", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }
}

/// Benchmark manager handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Creates a manager; `--test` (cargo test over benches) runs one
    /// sample per benchmark.
    pub fn new() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.test_mode { 1 } else { 10 };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Bytes(64));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_with_input(BenchmarkId::new("custom", 1), &(), |b, ()| {
            b.iter_custom(|iters| {
                let t0 = std::time::Instant::now();
                for _ in 0..iters {
                    black_box(0u64);
                }
                t0.elapsed()
            })
        });
        group.bench_with_input(BenchmarkId::new("setup", 1), &(), |b, ()| {
            b.iter_with_setup(|| vec![0u8; 16], |v| black_box(v.len()))
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_time(12), "12 ns");
        assert!(human_time(1_500).contains("µs"));
        assert!(human_time(2_000_000).contains("ms"));
    }
}
