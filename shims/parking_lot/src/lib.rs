//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, API-compatible subset of `parking_lot` implemented on
//! `std::sync` primitives. Semantics match what the workspace relies on:
//!
//! - locks are **not poisoned** by panics (a panicking holder simply
//!   releases the lock, like real `parking_lot`);
//! - [`Condvar::wait_for`] takes the `MutexGuard` by `&mut` and returns a
//!   [`WaitTimeoutResult`];
//! - guards implement `Deref`/`DerefMut`.
//!
//! Only the surface the workspace uses is provided. Fairness, `try_lock`
//! timeouts and the raw-lock APIs of the real crate are intentionally
//! absent.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (shim over [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily move the std guard
    // out (std's wait API consumes and returns it). Outside of that window
    // the slot is always `Some`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard moved during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard moved during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable (shim over [`std::sync::Condvar`]).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard moved during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard moved during wait");
        match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => {
                guard.inner = Some(g);
                WaitTimeoutResult(r.timed_out())
            }
            Err(p) => {
                let (g, r) = p.into_inner();
                guard.inner = Some(g);
                WaitTimeoutResult(r.timed_out())
            }
        }
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (shim over [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(!*g);
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait_for(&mut g, Duration::from_millis(50));
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must stay usable after a panic");
    }
}
