//! A miniature of the paper's Figure 7: run YCSB Load + A/B/C against
//! MioDB, MatrixKV and NoveLSM side by side and print KIOPS.
//!
//! ```text
//! cargo run --release --example ycsb_shootout
//! ```
//!
//! For the full evaluation (all workloads, both value sizes, tail
//! latencies) use `cargo run --release -p miodb-bench --bin repro -- fig7`.

use miodb::baselines::{MatrixKv, MatrixKvOptions, NoveLsm, NoveLsmOptions};
use miodb::workloads::{run_ycsb, YcsbSpec, YcsbWorkload};
use miodb::{KvEngine, MioDb, MioOptions, Stats};
use std::sync::Arc;

fn engines() -> miodb::Result<Vec<Box<dyn KvEngine>>> {
    let mut out: Vec<Box<dyn KvEngine>> = vec![Box::new(MioDb::open(MioOptions {
        memtable_bytes: 256 * 1024,
        nvm_pool_bytes: 256 << 20,
        ..MioOptions::small_for_tests()
    })?) as Box<dyn KvEngine>];
    out.push(Box::new(MatrixKv::open(
        MatrixKvOptions {
            memtable_bytes: 256 * 1024,
            container_bytes: 4 << 20,
            table_device: miodb::pmem::DeviceModel::nvm_unthrottled(),
            row_device: miodb::pmem::DeviceModel::nvm_unthrottled(),
            ..MatrixKvOptions::default()
        },
        Arc::new(Stats::new()),
    )?));
    out.push(Box::new(NoveLsm::open(
        NoveLsmOptions {
            memtable_bytes: 256 * 1024,
            nvm_memtable_bytes: 2 << 20,
            table_device: miodb::pmem::DeviceModel::nvm_unthrottled(),
            nvm_device: miodb::pmem::DeviceModel::nvm_unthrottled(),
            nvm_pool_bytes: 128 << 20,
            ..NoveLsmOptions::default()
        },
        Arc::new(Stats::new()),
    )?));
    Ok(out)
}

fn main() -> miodb::Result<()> {
    let spec = YcsbSpec {
        records: 20_000,
        operations: 20_000,
        value_len: 1024,
        threads: 2,
        seed: 42,
        record_timeline: false,
        max_scan_len: 50,
    };
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10}",
        "engine", "Load", "A", "B", "C"
    );
    for engine in engines()? {
        let mut row = format!("{:>14}", engine.name());
        let load = run_ycsb(engine.as_ref(), YcsbWorkload::Load, &spec)?;
        row.push_str(&format!(" {:>9.1}k", load.kops()));
        for w in [YcsbWorkload::A, YcsbWorkload::B, YcsbWorkload::C] {
            let r = run_ycsb(engine.as_ref(), w, &spec)?;
            row.push_str(&format!(" {:>9.1}k", r.kops()));
        }
        println!("{row}");
    }
    println!("\n(unthrottled devices: software-path cost only — run the repro");
    println!(" binary for device-modeled numbers matching the paper's shape)");
    Ok(())
}
