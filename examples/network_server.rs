//! Network service walk-through: a sharded server on an ephemeral port,
//! a pipelined client, a cross-shard scan and a graceful shutdown.
//!
//! ```text
//! cargo run --release --example network_server
//! ```

use std::sync::Arc;

use std::time::Duration;

use miodb::common::{Request, Response};
use miodb::{ClientOptions, KvClient, KvEngine, KvServer, MioOptions, ServerOptions, ShardRouter};

fn main() -> miodb::Result<()> {
    // Four independent MioDB instances behind one hash-partitioned
    // keyspace; each shard has its own WAL, pools and compactor threads.
    let opts = MioOptions {
        name: "MioDB-example".to_string(),
        ..MioOptions::small_for_tests()
    };
    let router = Arc::new(ShardRouter::open_miodb(&opts, 4)?);
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn KvEngine>,
        ServerOptions::default(),
    )?;
    println!("serving 4 shards on {}", server.local_addr());

    // Socket timeouts bound every round trip: a hung server surfaces as a
    // typed timeout error instead of blocking this process forever.
    let mut client = KvClient::connect_with(
        server.local_addr(),
        ClientOptions {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            ..ClientOptions::default()
        },
    )?;

    // Simple round trips.
    client.put(b"hello", b"from the network")?;
    println!(
        "get(hello) -> {:?}",
        String::from_utf8_lossy(&client.get(b"hello")?.expect("present"))
    );

    // Pipelining: 1000 puts on the wire with a single flush; responses
    // come back strictly in request order.
    let puts: Vec<Request> = (0..1_000u32)
        .map(|i| Request::Put {
            key: format!("user{i:06}").into_bytes(),
            value: format!("profile-{i}").into_bytes(),
        })
        .collect();
    let acks = client.pipeline(&puts)?;
    assert!(acks.iter().all(|r| *r == Response::Ok));
    println!("pipelined {} puts", acks.len());

    // A scan merges the per-shard sorted runs back into one global order.
    let entries = client.scan(b"user000500", 5)?;
    for e in &entries {
        println!(
            "  {} -> {}",
            String::from_utf8_lossy(&e.key),
            String::from_utf8_lossy(&e.value)
        );
    }

    // One scrape returns engine families plus the miodb_server_* gauges
    // and per-opcode latency summaries.
    let stats = client.stats()?;
    for line in stats
        .lines()
        .filter(|l| l.starts_with("miodb_server_"))
        .take(5)
    {
        println!("  {line}");
    }

    client.close()?;
    server.shutdown(); // drains in-flight requests, joins handler threads
    router.close()?; // flushes MemTables: recovery would replay zero WAL
    println!("clean shutdown");
    Ok(())
}
