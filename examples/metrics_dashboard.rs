//! Eyeball the telemetry subsystem without the full repro binary: run a
//! short YCSB-A burst against MioDB, then print the Prometheus text
//! exposition, a per-level occupancy/compaction table, and a digest of
//! the structured event trace.
//!
//! ```text
//! cargo run --release --example metrics_dashboard
//! ```

use miodb::common::{CompactionKind, EventKind, TelemetryOptions};
use miodb::workloads::{run_ycsb, YcsbSpec, YcsbWorkload};
use miodb::{KvEngine, MioDb, MioOptions};

fn main() -> miodb::Result<()> {
    let db = MioDb::open(MioOptions {
        memtable_bytes: 256 * 1024,
        nvm_pool_bytes: 256 << 20,
        telemetry: TelemetryOptions {
            event_capacity: 1 << 15,
            ..TelemetryOptions::default()
        },
        ..MioOptions::small_for_tests()
    })?;

    let spec = YcsbSpec {
        records: 20_000,
        operations: 40_000,
        value_len: 1024,
        threads: 2,
        seed: 7,
        record_timeline: false,
        max_scan_len: 50,
    };
    run_ycsb(&db, YcsbWorkload::Load, &spec)?;
    let r = run_ycsb(&db, YcsbWorkload::A, &spec)?;
    db.wait_idle()?;
    println!(
        "YCSB-A burst done: {} ops at {:.1} KIOPS\n",
        r.ops,
        r.kops()
    );

    println!("=== Prometheus exposition (db.metrics_text()) ===\n");
    print!("{}", db.metrics_text());

    let t = db.telemetry().expect("telemetry enabled above");
    println!("\n=== Per-level occupancy and compaction activity ===\n");
    println!(
        "{:>5} {:>12} {:>8} {:>9} {:>11} {:>12} {:>11} {:>12}",
        "level",
        "bytes",
        "tables",
        "pending",
        "zero-copy",
        "zc time(ms)",
        "lazy-copy",
        "lc time(ms)"
    );
    for (i, l) in t.levels().iter().enumerate() {
        use std::sync::atomic::Ordering::Relaxed;
        println!(
            "{:>5} {:>12} {:>8} {:>9} {:>11} {:>12.1} {:>11} {:>12.1}",
            i,
            l.bytes.load(Relaxed),
            l.tables.load(Relaxed),
            l.pending_compactions.load(Relaxed),
            l.zero_copy_compactions.load(Relaxed),
            l.zero_copy_ns.load(Relaxed) as f64 / 1e6,
            l.lazy_copy_compactions.load(Relaxed),
            l.lazy_copy_ns.load(Relaxed) as f64 / 1e6,
        );
    }

    let events = db.drain_events();
    let mut flushes = 0u64;
    let mut zero_copy = 0u64;
    let mut lazy_copy = 0u64;
    let mut stalls = 0u64;
    let mut swizzles = 0u64;
    for e in &events {
        match e.kind {
            EventKind::FlushEnd { .. } => flushes += 1,
            EventKind::CompactionEnd { kind, .. } => match kind {
                CompactionKind::ZeroCopy => zero_copy += 1,
                CompactionKind::LazyCopy => lazy_copy += 1,
            },
            EventKind::StallBegin { .. } => stalls += 1,
            EventKind::Swizzle { .. } => swizzles += 1,
            _ => {}
        }
    }
    println!("\n=== Event trace digest ===\n");
    println!(
        "{} events drained ({} dropped): {flushes} flushes, {swizzles} swizzles, \
         {zero_copy} zero-copy merges, {lazy_copy} lazy-copy drains, {stalls} stalls",
        events.len(),
        t.events_dropped(),
    );
    if let Some(last) = events.last() {
        println!(
            "trace spans {:.1}ms of engine time",
            (last.ts_ns - events.first().map_or(0, |e| e.ts_ns)) as f64 / 1e6
        );
    }
    Ok(())
}
