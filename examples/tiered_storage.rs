//! DRAM-NVM-SSD mode (paper §4.1/§5.4): the elastic NVM buffer absorbs
//! write bursts and zero-copy compaction removes write amplification
//! before data is serialized to SSD SSTables.
//!
//! ```text
//! cargo run --release --example tiered_storage
//! ```

use miodb::lsm::LsmOptions;
use miodb::pmem::DeviceModel;
use miodb::{KvEngine, MioDb, MioOptions, RepositoryMode};
use std::time::Instant;

fn main() -> miodb::Result<()> {
    let opts = MioOptions {
        repository: RepositoryMode::Ssd {
            lsm: LsmOptions {
                table_bytes: 128 * 1024,
                level1_max_bytes: 512 * 1024,
                ..LsmOptions::default()
            },
            // A throttled SSD model: ~100x NVM latency, ~1/10 bandwidth.
            device: DeviceModel::ssd(),
        },
        name: "MioDB-tiered".to_string(),
        ..MioOptions::small_for_tests()
    };
    let db = MioDb::open(opts)?;

    let value = vec![0x42u8; 1024];
    let n = 20_000u32;
    let t0 = Instant::now();
    for i in 0..n {
        db.put(format!("key{i:06}").as_bytes(), &value)?;
    }
    let write_s = t0.elapsed().as_secs_f64();
    println!(
        "wrote {n} x 1 KiB in {write_s:.2}s ({:.1} MiB/s) — bursts land in the NVM buffer,",
        (n as f64 * 1040.0) / write_s / (1024.0 * 1024.0)
    );
    println!("not on the SSD's critical path");

    db.wait_idle()?;
    let report = db.report();
    println!("\nafter settling:");
    println!(
        "  tables per level (elastic buffer + SSD LSM): {:?}",
        report.tables_per_level
    );
    println!("  NVM bytes in use:  {}", report.nvm_used_bytes);
    println!("  SSD bytes written: {}", report.stats.ssd_bytes_written);
    println!(
        "  write amp:         {:.2}x",
        report.stats.write_amplification
    );
    println!("  interval stalls:   {}", report.stats.interval_stall_count);

    // Reads hit the elastic buffer first; cold keys go to the SSD LSM.
    let t0 = Instant::now();
    let mut hits = 0;
    for i in (0..n).step_by(37) {
        if db.get(format!("key{i:06}").as_bytes())?.is_some() {
            hits += 1;
        }
    }
    println!(
        "\nread-back: {hits} hits in {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}
