//! Runs the same write/read workload against MioDB and MatrixKV and prints
//! each engine's full cost report (Table 1's counters, via the
//! `StatsSnapshot` display) side by side.
//!
//! ```text
//! cargo run --release --example cost_report
//! ```

use miodb::baselines::{MatrixKv, MatrixKvOptions};
use miodb::lsm::LsmOptions;
use miodb::pmem::DeviceModel;
use miodb::{KvEngine, MioDb, MioOptions, Stats};
use std::sync::Arc;

fn drive(engine: &dyn KvEngine) -> miodb::Result<()> {
    let value = vec![0x11u8; 1024];
    for i in 0..20_000u32 {
        engine.put(format!("key{i:06}").as_bytes(), &value)?;
    }
    engine.wait_idle()?;
    for i in (0..20_000u32).step_by(13) {
        engine.get(format!("key{i:06}").as_bytes())?;
    }
    Ok(())
}

fn main() -> miodb::Result<()> {
    let mio = MioDb::open(MioOptions {
        memtable_bytes: 128 * 1024,
        nvm_pool_bytes: 256 << 20,
        nvm_device: DeviceModel::nvm(),
        ..MioOptions::small_for_tests()
    })?;
    drive(&mio)?;
    println!("=== {} ===\n{}\n", mio.name(), mio.report().stats);

    let matrix = MatrixKv::open(
        MatrixKvOptions {
            memtable_bytes: 128 * 1024,
            container_bytes: 2 << 20,
            lsm: LsmOptions {
                table_bytes: 128 * 1024,
                level1_max_bytes: 1 << 20,
                ..LsmOptions::default()
            },
            table_device: DeviceModel::nvm(),
            row_device: DeviceModel::nvm(),
            ..MatrixKvOptions::default()
        },
        Arc::new(Stats::new()),
    )?;
    drive(&matrix)?;
    println!("=== {} ===\n{}", matrix.name(), matrix.report().stats);

    println!("\nNote the contrast the paper's Table 1 highlights: MioDB shows zero");
    println!("cumulative stalls, zero serialization, and write amplification near");
    println!("the theoretical 3x bound, while the block-based baseline pays for");
    println!("serialization and multi-level compaction.");
    Ok(())
}
