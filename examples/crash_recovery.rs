//! Crash-consistency demo (paper §4.7): write data, snapshot the NVM pool
//! at an arbitrary instant ("power failure"), restore it in a fresh
//! process lifetime, run recovery, and verify nothing durable was lost.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use miodb::pmem::PmemPool;
use miodb::{KvEngine, MioDb, MioOptions, Stats};
use std::sync::Arc;

fn main() -> miodb::Result<()> {
    let opts = MioOptions::small_for_tests();
    let snapshot = std::env::temp_dir().join(format!("miodb-crash-demo-{}", std::process::id()));

    // Phase 1: a process writes 5 000 records and then "crashes".
    {
        let db = MioDb::open(opts.clone())?;
        for i in 0..5_000u32 {
            db.put(
                format!("key{i:06}").as_bytes(),
                format!("value-{i}").as_bytes(),
            )?;
        }
        db.delete(b"key000100")?;
        // Snapshot while background flushing/compaction may be mid-flight —
        // this is the moment the power cord is pulled.
        db.snapshot(&snapshot)?;
        println!("phase 1: wrote 5000 records, snapshotted NVM mid-operation");
        // The DRAM MemTable contents die with the process; the NVM pool
        // (WAL, PMTables, manifest, repository) survives in the snapshot.
    }

    // Phase 2: a new process restores the NVM pool and recovers.
    {
        let stats = Arc::new(Stats::new());
        let pool = PmemPool::restore_from_file(&snapshot, opts.nvm_device, stats)?;
        let db = MioDb::recover(pool, opts.clone())?;
        println!("phase 2: recovered from snapshot");

        let mut present = 0;
        for i in 0..5_000u32 {
            if db.get(format!("key{i:06}").as_bytes())?.is_some() {
                present += 1;
            }
        }
        // Every put preceded the snapshot, so WAL replay + manifest
        // recovery must restore all of them (minus the explicit delete).
        println!("phase 2: {present}/5000 records present (1 deliberately deleted)");
        assert_eq!(present, 4_999);
        assert!(
            db.get(b"key000100")?.is_none(),
            "tombstone must survive recovery"
        );

        // The recovered database keeps working.
        db.put(b"post-crash", b"still alive")?;
        assert_eq!(db.get(b"post-crash")?.as_deref(), Some(&b"still alive"[..]));
        println!("phase 2: post-recovery writes OK");
    }

    std::fs::remove_file(&snapshot).ok();
    Ok(())
}
