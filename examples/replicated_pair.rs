//! Replication walk-through: a leader and a follower in one process,
//! semi-sync acks, a replica read, and a kill-the-leader failover with
//! client redirect.
//!
//! ```text
//! cargo run --release --example replicated_pair
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb::common::ReplicationSink;
use miodb::repl::engine_snapshot_bytes;
use miodb::{
    AckLevel, Follower, FollowerOptions, KvClient, KvEngine, KvServer, MioDb, MioOptions,
    ReplConfig, Replicator, ReplicatorOptions, RoleState, ServerOptions,
};

fn main() -> miodb::Result<()> {
    // Leader: a MioDB engine whose group-commit pipeline publishes every
    // committed WAL group into the replicator's in-memory log. Semi-sync
    // means each PUT's commit-wait also waits for the follower's ack.
    let leader_db = Arc::new(MioDb::open(MioOptions {
        name: "MioDB-leader".to_string(),
        ..MioOptions::small_for_tests()
    })?);
    let replicator = Replicator::new(ReplicatorOptions {
        ack_level: AckLevel::SemiSync,
        semi_sync_timeout: Duration::from_secs(5),
        retain_bytes: 64 << 20,
        group_size: 2,
    });
    leader_db.set_commit_sink(Some(Arc::clone(&replicator) as Arc<dyn ReplicationSink>));
    let snap_db = Arc::clone(&leader_db);
    let leader = KvServer::start_replicated(
        "127.0.0.1:0",
        Arc::clone(&leader_db) as Arc<dyn KvEngine>,
        ServerOptions::default(),
        ReplConfig::new(
            Some(Arc::clone(&replicator)),
            Some(Box::new(move || engine_snapshot_bytes(&snap_db))),
            Arc::new(RoleState::new_leader(1)),
            "",
        ),
    )?;
    println!("leader on {}", leader.local_addr());

    // Follower: its own engine, an apply loop streaming the leader's WAL
    // records, and a server that refuses writes with a NotLeader hint.
    let follower_db = Arc::new(MioDb::open(MioOptions {
        name: "MioDB-follower".to_string(),
        ..MioOptions::small_for_tests()
    })?);
    let follower = Follower::start(
        Arc::clone(&follower_db),
        &leader.local_addr().to_string(),
        FollowerOptions::default(),
    )?;
    let fsrv = KvServer::start_replicated(
        "127.0.0.1:0",
        Arc::clone(&follower_db) as Arc<dyn KvEngine>,
        ServerOptions::default(),
        ReplConfig::new(
            None,
            None,
            Arc::new(RoleState::new_follower(1, &leader.local_addr().to_string())),
            "",
        ),
    )?;
    println!("follower on {}", fsrv.local_addr());
    let deadline = Instant::now() + Duration::from_secs(5);
    while replicator.subscriber_count() == 0 {
        assert!(Instant::now() < deadline, "follower never subscribed");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Writes against the leader. Semi-sync: when put() returns, the
    // follower has already applied and acknowledged the write.
    let mut client = KvClient::connect(leader.local_addr())?;
    for i in 0..100u32 {
        client.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())?;
    }
    println!(
        "100 semi-sync puts acked (follower at offset {})",
        follower.applied()
    );

    // Replica read: any acked write is immediately visible on the
    // follower — no settling sleep.
    let mut replica = KvClient::connect(fsrv.local_addr())?;
    let v = replica.get(b"k042")?.expect("replicated");
    println!("replica read k042 -> {}", String::from_utf8_lossy(&v));

    // A write sent to the follower is refused with a typed NotLeader
    // frame carrying the leader's address; the client redials and
    // retries transparently.
    replica.put(b"routed", b"via-redirect")?;
    println!(
        "follower redirected the write ({} redirect{})",
        replica.counters().redirects,
        if replica.counters().redirects == 1 {
            ""
        } else {
            "s"
        },
    );

    // Failover: kill the leader, drain the stream, flip the follower's
    // role. Every acked write survives — that is the semi-sync contract.
    client.close()?;
    replica.close()?;
    leader.shutdown();
    let applied = follower.promote();
    fsrv.promote_to_leader();
    println!("promoted follower at offset {applied}");

    let mut post = KvClient::connect(fsrv.local_addr())?;
    assert_eq!(post.get(b"k099")?.as_deref(), Some(&b"v99"[..]));
    post.put(b"after-failover", b"accepted")?; // the new leader takes writes
    println!(
        "post-failover: k099 survived, new write accepted -> {:?}",
        String::from_utf8_lossy(&post.get(b"after-failover")?.expect("present"))
    );

    post.close()?;
    fsrv.shutdown();
    leader_db.set_commit_sink(None);
    follower_db.close()?;
    println!("clean shutdown");
    Ok(())
}
