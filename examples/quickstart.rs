//! Quickstart: open MioDB, write, read, scan, delete, inspect stats.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use miodb::{KvEngine, MioDb, MioOptions};

fn main() -> miodb::Result<()> {
    // A small unthrottled configuration; see `MioOptions` for the full
    // DRAM/NVM geometry (pool sizes, level count, bloom density, ...).
    let db = MioDb::open(MioOptions::small_for_tests())?;

    // Writes go through an NVM write-ahead log into a DRAM MemTable; full
    // MemTables are one-piece-flushed into the NVM elastic buffer in the
    // background, so puts never stall.
    let mut profile = vec![0u8; 1024];
    for i in 0..10_000u32 {
        let key = format!("user{i:06}");
        profile[..4].copy_from_slice(&i.to_le_bytes());
        db.put(key.as_bytes(), &profile)?;
    }
    println!("inserted 10k records (1 KiB each)");

    // Point lookups search MemTables, then each elastic level (bloom
    // filters skip most tables), then the bottom data repository.
    let v = db.get(b"user004242")?.expect("present");
    println!(
        "user004242 -> {} bytes (id {})",
        v.len(),
        u32::from_le_bytes(v[..4].try_into().unwrap())
    );

    // Range scans merge every layer and skip deleted keys.
    db.delete(b"user000001")?;
    let page = db.scan(b"user000000", 3)?;
    println!("first three users after deleting user000001:");
    for e in &page {
        println!(
            "  {} ({} bytes)",
            String::from_utf8_lossy(&e.key),
            e.value.len()
        );
    }
    assert_eq!(page[1].key, b"user000002");

    // Wait for background compactions and look at the cost profile: no
    // serialization, no interval stalls, write amplification around the
    // paper's 2.9x bound.
    db.wait_idle()?;
    let report = db.report();
    println!("\nengine report:");
    println!("  tables per level: {:?}", report.tables_per_level);
    println!("  nvm used:         {} bytes", report.nvm_used_bytes);
    println!("  flushes:          {}", report.stats.flush_count);
    println!("  zero-copy merges: {}", report.stats.zero_copy_compactions);
    println!("  lazy copies:      {}", report.stats.copy_compactions);
    println!("  interval stalls:  {}", report.stats.interval_stall_count);
    println!(
        "  write amp:        {:.2}x",
        report.stats.write_amplification
    );
    Ok(())
}
