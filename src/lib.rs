//! MioDB — a reproduction of *"Revisiting Log-Structured Merging for KV
//! Stores in Hybrid Memory Systems"* (ASPLOS'23).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`MioDb`] / [`MioOptions`]: the engine itself ([`miodb_core`]);
//! - [`KvEngine`]: the uniform engine trait ([`miodb_common`]);
//! - [`baselines`]: NoveLSM and MatrixKV reimplementations;
//! - [`workloads`]: db_bench and YCSB drivers;
//! - [`server`] / [`client`]: the sharded TCP service layer
//!   ([`KvServer`], [`ShardRouter`], [`KvClient`]);
//! - [`repl`]: WAL-shipping replication ([`Replicator`], [`Follower`],
//!   ack levels, snapshot catch-up and verified failover);
//! - [`check`]: linearizability and crash-durability verification
//!   (history recording, per-key Wing–Gong checking, durable-prefix
//!   oracle, seeded interleaving stress);
//! - the substrates: [`pmem`] (simulated NVM), [`skiplist`] (PMTables),
//!   [`bloom`], [`wal`] and [`lsm`] (the LevelDB-model substrate).
//!
//! # Examples
//!
//! ```
//! use miodb::{KvEngine, MioDb, MioOptions};
//!
//! # fn main() -> miodb::Result<()> {
//! let db = MioDb::open(MioOptions::small_for_tests())?;
//! db.put(b"hello", b"hybrid memory")?;
//! assert_eq!(db.get(b"hello")?.as_deref(), Some(&b"hybrid memory"[..]));
//! # Ok(())
//! # }
//! ```

pub use miodb_baselines as baselines;
pub use miodb_bloom as bloom;
pub use miodb_check as check;
pub use miodb_client as client;
pub use miodb_common as common;
pub use miodb_core as core;
pub use miodb_lsm as lsm;
pub use miodb_pmem as pmem;
pub use miodb_repl as repl;
pub use miodb_server as server;
pub use miodb_skiplist as skiplist;
pub use miodb_wal as wal;
pub use miodb_workloads as workloads;

pub use miodb_client::{ClientCounters, ClientOptions, KvClient};
pub use miodb_common::{majority, Role, RoleState};
pub use miodb_common::{Error, KvEngine, Result, ScanEntry, Stats};
pub use miodb_core::{MioDb, MioOptions, RepositoryMode, WriteBatch};
pub use miodb_repl::{AckLevel, Follower, FollowerOptions, Replicator, ReplicatorOptions};
pub use miodb_server::{
    GroupConfig, KvServer, NodeOptions, ReplConfig, ReplNode, ServerOptions, ShardRouter,
};
