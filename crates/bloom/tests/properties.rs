//! Statistical and structural properties of the Bloom filter at the
//! engine's production geometry (`bloom_bits_per_key = 16`, k = 11):
//! the measured false-positive rate must stay within 2x of the theoretical
//! `(1 - e^(-kn/m))^k`, and merging same-geometry filters must never
//! introduce false negatives.

use miodb_bloom::BloomFilter;
use proptest::prelude::*;

const BITS_PER_KEY: usize = 16;

fn keys(tag: u8, n: usize, seed: u64) -> Vec<Vec<u8>> {
    // splitmix64-derived keys: disjoint across tags, deterministic per seed.
    let mut x = seed ^ (u64::from(tag) << 56) ^ 0x9E37_79B9_7F4A_7C15;
    (0..n)
        .map(|i| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            format!("{tag:02x}-{i:06}-{:016x}", z ^ (z >> 31)).into_bytes()
        })
        .collect()
}

/// Theoretical FPR for n keys in m bits with k hashes.
fn theoretical_fpr(n: usize, m: usize, k: u32) -> f64 {
    let exp = -(k as f64) * (n as f64) / (m as f64);
    (1.0 - exp.exp()).powi(k as i32)
}

#[test]
fn measured_fpr_within_2x_of_theory_at_production_geometry() {
    // Deterministic (not proptest): the FPR is a statistical quantity, so
    // the probe count has to be large and the seeds fixed.
    for seed in [7u64, 21, 63] {
        let n = 1_000;
        let inserted = keys(0xAA, n, seed);
        let mut f = BloomFilter::with_bits_per_key(n, BITS_PER_KEY);
        for k in &inserted {
            f.insert(k);
        }
        // No false negatives, ever.
        for k in &inserted {
            assert!(f.may_contain(k), "false negative on inserted key");
        }
        let probes = keys(0xBB, 60_000, seed);
        let fp = probes.iter().filter(|k| f.may_contain(k)).count();
        let measured = fp as f64 / probes.len() as f64;
        let theory = theoretical_fpr(n, f.num_bits(), f.num_hashes());
        // At 16 bits/key theory is ~4.6e-4; 2x plus a small absolute floor
        // keeps the bound meaningful while tolerating sampling noise at
        // 60k probes.
        assert!(
            measured <= 2.0 * theory + 2e-4,
            "seed {seed}: measured FPR {measured:.6} vs theoretical {theory:.6}"
        );
        // The filter's own estimate agrees with theory to the same factor.
        let estimated = f.estimated_fp_rate();
        assert!(
            estimated <= 2.0 * theory + 2e-4,
            "seed {seed}: estimated FPR {estimated:.6} vs theoretical {theory:.6}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_never_introduces_false_negatives(
        seed in any::<u64>(),
        n_a in 1usize..400,
        n_b in 1usize..400,
    ) {
        // Same geometry: sized for the combined population, as the SSTable
        // builder does when merging runs.
        let capacity = 800;
        let mut a = BloomFilter::with_bits_per_key(capacity, BITS_PER_KEY);
        let mut b = BloomFilter::with_bits_per_key(capacity, BITS_PER_KEY);
        let ka = keys(0x01, n_a, seed);
        let kb = keys(0x02, n_b, seed);
        for k in &ka {
            a.insert(k);
        }
        for k in &kb {
            b.insert(k);
        }
        a.merge(&b).unwrap();
        for k in ka.iter().chain(&kb) {
            prop_assert!(a.may_contain(k), "merge lost a key");
        }
        prop_assert_eq!(a.inserted(), (n_a + n_b) as u64);
    }

    #[test]
    fn fill_ratio_grows_monotonically(
        seed in any::<u64>(),
        n in 1usize..600,
    ) {
        let mut f = BloomFilter::with_bits_per_key(600, BITS_PER_KEY);
        let mut last = f.fill_ratio();
        for k in keys(0x03, n, seed) {
            f.insert(&k);
            let now = f.fill_ratio();
            prop_assert!(now >= last, "fill ratio decreased");
            last = now;
        }
        prop_assert!(last > 0.0);
    }
}
