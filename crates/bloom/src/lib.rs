//! Mergeable bloom filters for PMTables.
//!
//! The paper (§4.6) attaches a **fixed-size** bloom filter to every PMTable
//! so that a point lookup can skip tables that cannot contain the key.
//! Fixing the size makes filters *mergeable*: when two PMTables are
//! compacted by zero-copy merging, their filters are combined with a
//! bitwise **OR** — no rebuild, no access to the keys.
//!
//! The trade-off the paper tunes (number of elastic-buffer levels, Figure 9)
//! is visible here: as merged tables grow, a fixed-size filter saturates
//! and its false-positive rate climbs; [`BloomFilter::fill_ratio`] exposes
//! the saturation so the engine can size levels accordingly.
//!
//! # Examples
//!
//! ```
//! use miodb_bloom::BloomFilter;
//!
//! let mut a = BloomFilter::new(1 << 14, 4);
//! a.insert(b"apple");
//! let mut b = BloomFilter::new(1 << 14, 4);
//! b.insert(b"banana");
//! a.merge(&b).expect("same geometry");
//! assert!(a.may_contain(b"apple"));
//! assert!(a.may_contain(b"banana"));
//! ```

use miodb_common::{Error, Result};

/// A fixed-geometry bloom filter combinable by bitwise OR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `num_bits` bits (rounded up to a multiple of
    /// 64) and `num_hashes` probes per key.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` or `num_hashes` is zero.
    pub fn new(num_bits: usize, num_hashes: u32) -> BloomFilter {
        assert!(num_bits > 0, "bloom filter needs at least one bit");
        assert!(num_hashes > 0, "bloom filter needs at least one hash");
        let words = num_bits.div_ceil(64);
        BloomFilter {
            bits: vec![0u64; words],
            num_bits: words * 64,
            num_hashes,
            inserted: 0,
        }
    }

    /// Creates a filter sized for `expected_keys` at `bits_per_key`
    /// (the paper uses 16 bits/key), with the standard optimal probe count
    /// `k = bits_per_key * ln 2` clamped to `[1, 30]`.
    pub fn with_bits_per_key(expected_keys: usize, bits_per_key: usize) -> BloomFilter {
        let num_bits = (expected_keys.max(1) * bits_per_key).max(64);
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        BloomFilter::new(num_bits, k)
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of hash probes per key.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Number of keys inserted (including via merges).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    #[inline]
    fn probe_positions(&self, key: &[u8]) -> impl Iterator<Item = usize> + '_ {
        // Double hashing (Kirsch–Mitzenmacher): h_i = h1 + i * h2.
        let h = hash64(key);
        let h1 = h;
        let h2 = h.rotate_left(32) | 1;
        let n = self.num_bits as u64;
        (0..self.num_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % n) as usize)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<usize> = self.probe_positions(key).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Returns `false` if the key is definitely absent; `true` if it may be
    /// present.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.probe_positions(key)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// ORs `other` into this filter.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if the two filters have different
    /// geometry (bit count or probe count) — only same-shape filters are
    /// mergeable.
    pub fn merge(&mut self, other: &BloomFilter) -> Result<()> {
        if self.num_bits != other.num_bits || self.num_hashes != other.num_hashes {
            return Err(Error::InvalidArgument(format!(
                "bloom geometry mismatch: {}x{} vs {}x{}",
                self.num_bits, self.num_hashes, other.num_bits, other.num_hashes
            )));
        }
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
        self.inserted += other.inserted;
        Ok(())
    }

    /// The filter's raw 64-bit words, for serialization (SSTable bloom
    /// blocks).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Reconstructs a filter from serialized words.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if `words` does not match
    /// `num_bits`, or if either count is zero.
    pub fn from_words(num_bits: usize, num_hashes: u32, words: Vec<u64>) -> Result<BloomFilter> {
        if num_bits == 0 || num_hashes == 0 || words.len() * 64 != num_bits {
            return Err(Error::InvalidArgument(format!(
                "bloom geometry mismatch: {num_bits} bits, {} words",
                words.len()
            )));
        }
        Ok(BloomFilter {
            bits: words,
            num_bits,
            num_hashes,
            inserted: 0,
        })
    }

    /// Fraction of bits set — the saturation indicator used to bound the
    /// number of OR-merges a fixed-size filter can absorb.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.num_bits as f64
    }

    /// Estimated false-positive rate at the current fill: `fill^k`.
    pub fn estimated_fp_rate(&self) -> f64 {
        self.fill_ratio().powi(self.num_hashes as i32)
    }
}

/// FNV-1a–style 64-bit hash with an avalanche finish.
fn hash64(key: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche (splitmix64 tail) for better bit diffusion.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::new(1024, 4);
        assert!(!f.may_contain(b"anything"));
        assert_eq!(f.fill_ratio(), 0.0);
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_bits_per_key(1000, 16);
        for i in 0..1000u32 {
            f.insert(format!("key{i}").as_bytes());
        }
        for i in 0..1000u32 {
            assert!(
                f.may_contain(format!("key{i}").as_bytes()),
                "false negative for key{i}"
            );
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_16_bits_per_key() {
        let mut f = BloomFilter::with_bits_per_key(10_000, 16);
        for i in 0..10_000u32 {
            f.insert(format!("present{i}").as_bytes());
        }
        let mut fps = 0;
        let probes = 20_000;
        for i in 0..probes {
            if f.may_contain(format!("absent{i}").as_bytes()) {
                fps += 1;
            }
        }
        let rate = fps as f64 / probes as f64;
        assert!(rate < 0.01, "fp rate {rate} too high for 16 bits/key");
    }

    #[test]
    fn merge_is_union() {
        let mut a = BloomFilter::new(4096, 4);
        let mut b = BloomFilter::new(4096, 4);
        a.insert(b"only-a");
        b.insert(b"only-b");
        a.merge(&b).unwrap();
        assert!(a.may_contain(b"only-a"));
        assert!(a.may_contain(b"only-b"));
        assert_eq!(a.inserted(), 2);
    }

    #[test]
    fn merge_geometry_mismatch_rejected() {
        let mut a = BloomFilter::new(4096, 4);
        let b = BloomFilter::new(8192, 4);
        assert!(a.merge(&b).is_err());
        let c = BloomFilter::new(4096, 5);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn saturation_raises_estimated_fp() {
        let mut f = BloomFilter::new(256, 4);
        let before = f.estimated_fp_rate();
        for i in 0..500u32 {
            f.insert(&i.to_le_bytes());
        }
        assert!(f.fill_ratio() > 0.9, "filter should saturate");
        assert!(f.estimated_fp_rate() > before);
        assert!(f.estimated_fp_rate() > 0.5);
    }

    #[test]
    fn bits_rounded_to_words() {
        let f = BloomFilter::new(100, 3);
        assert_eq!(f.num_bits(), 128);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        BloomFilter::new(0, 1);
    }

    #[test]
    fn hash_distributes() {
        // Consecutive keys should not collide into the same few positions.
        let f = BloomFilter::new(1 << 16, 1);
        let mut positions = std::collections::HashSet::new();
        for i in 0..1000u32 {
            for p in f.probe_positions(format!("k{i}").as_bytes()) {
                positions.insert(p);
            }
        }
        assert!(
            positions.len() > 950,
            "only {} distinct positions",
            positions.len()
        );
    }
}
