//! Property tests for the shard router: a `ShardRouter` over N in-memory
//! engines must be observationally equal to one unsharded engine — point
//! reads agree, and cross-shard scans come back globally sorted,
//! deduplicated, and identical to the single-instance oracle.

use miodb_check::MapEngine;
use miodb_common::KvEngine;
use miodb_server::ShardRouter;
use proptest::prelude::*;

/// A workload step: key index (folded to a small space so shards collide),
/// value payload, and whether it is a delete.
fn op_strategy() -> impl Strategy<Value = (u16, Vec<u8>, bool)> {
    (
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..48),
        any::<bool>(),
    )
}

fn key_of(k: u16) -> Vec<u8> {
    format!("key{:04}", k % 200).into_bytes()
}

fn router(shards: usize) -> ShardRouter<MapEngine> {
    ShardRouter::new((0..shards).map(|_| MapEngine::new()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_scan_matches_single_engine_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        shards in 1usize..6,
        start in any::<u16>(),
        limit in 0usize..64,
    ) {
        let sharded = router(shards);
        let oracle = MapEngine::new();
        for (k, v, del) in &ops {
            let key = key_of(*k);
            if *del {
                sharded.delete(&key).unwrap();
                oracle.delete(&key).unwrap();
            } else {
                sharded.put(&key, v).unwrap();
                oracle.put(&key, v).unwrap();
            }
        }
        let start_key = key_of(start);
        let got = sharded.scan(&start_key, limit).unwrap();
        let want = oracle.scan(&start_key, limit).unwrap();
        // Globally sorted and free of duplicates.
        for w in got.windows(2) {
            prop_assert!(w[0].key < w[1].key, "out of order or duplicate key");
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sharded_range_scan_matches_single_engine_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        shards in 1usize..6,
        bounds in (any::<u16>(), any::<u16>()),
    ) {
        let sharded = router(shards);
        let oracle = MapEngine::new();
        for (k, v, del) in &ops {
            let key = key_of(*k);
            if *del {
                sharded.delete(&key).unwrap();
                oracle.delete(&key).unwrap();
            } else {
                sharded.put(&key, v).unwrap();
                oracle.put(&key, v).unwrap();
            }
        }
        let (lo, hi) = (key_of(bounds.0.min(bounds.1)), key_of(bounds.0.max(bounds.1)));
        let got = sharded.scan_range(&lo, &hi, usize::MAX).unwrap();
        let want = oracle.scan_range(&lo, &hi, usize::MAX).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sharded_point_reads_match_single_engine_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        shards in 1usize..6,
    ) {
        let sharded = router(shards);
        let oracle = MapEngine::new();
        for (k, v, del) in &ops {
            let key = key_of(*k);
            if *del {
                sharded.delete(&key).unwrap();
                oracle.delete(&key).unwrap();
            } else {
                sharded.put(&key, v).unwrap();
                oracle.put(&key, v).unwrap();
            }
        }
        for k in 0..200u16 {
            let key = key_of(k);
            prop_assert_eq!(sharded.get(&key).unwrap(), oracle.get(&key).unwrap());
        }
    }
}
