//! Event-driven TCP server speaking the MioDB wire protocol.
//!
//! Design (§14 of DESIGN.md):
//!
//! - **Shard-per-core readiness loops.** Accepted sockets are assigned
//!   round-robin to a small set of shard threads, each owning one epoll
//!   instance (see `poller`), a wake eventfd and the connections routed to
//!   it. Sockets are non-blocking; all reads, frame decoding and writes
//!   happen on the owning shard thread, so per-connection I/O state needs
//!   no synchronization with other shards.
//! - **Connection state machine.** Each connection carries an incremental
//!   [`FrameDecoder`](proto::FrameDecoder) (partial-frame reads), a bounded
//!   queue of decoded-but-unserved request frames, and a write buffer of
//!   encoded responses drained as the socket allows (partial writes).
//! - **Worker pool.** Decoded frames are executed by a shared worker pool.
//!   At most one worker owns a connection at a time (the `executing` flag),
//!   so responses are appended — and therefore hit the wire — strictly in
//!   request order, preserving the pipelining contract.
//! - **Backpressure.** When a connection's request queue or write buffer
//!   hits its cap the shard stops reading from it (`EPOLLIN` dropped) and
//!   sends a single in-band [`Response::Backpressure`] advisory (request
//!   id 0). Reads resume once the client drains responses below half the
//!   caps, which bounds per-connection server memory.
//! - **Fairness.** Per-tick read rounds and per-dispatch execution are both
//!   bounded, so one hot connection cannot starve the others on its shard
//!   or monopolize a worker.
//! - **Shutdown.** [`KvServer::shutdown`] stops the accept loop, has every
//!   shard slurp each socket's already-sent bytes one final time, executes
//!   everything queued, flushes all responses and only then closes — so
//!   in-flight requests always finish, exactly as the thread-per-connection
//!   server promised.
//! - **Connection limit.** Past `max_connections`, an accept is answered
//!   with a single typed `Err` frame and closed.
//! - **Replication** (§13 of DESIGN.md). `ReplSubscribe` on a leader hands
//!   the socket off from the event loop to a dedicated blocking stream
//!   thread (the decoder's residual bytes are chained in front of the
//!   socket so nothing is lost); followers refuse mutations with typed
//!   `NotLeader`, deposed leaders with `StaleEpoch`, and quorum-level
//!   leaders that cannot reach a majority with `QuorumLost`.
//!   [`KvServer::promote_to_leader`] flips the role in place during
//!   failover; [`KvServer::set_partitioned`] simulates a network partition
//!   for chaos tests (inter-node opcodes dropped, streams cut, client
//!   traffic still served).

use crate::poller::{Poller, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use miodb_common::proto::{self, Frame, FrameDecoder, Opcode, ReplBatch, Request, Response};
use miodb_common::trace::{self, SpanKind, TraceCtx};
use miodb_common::{fault, Error, KvEngine, OpKind, Result, RoleState, ServiceTelemetry};
use miodb_repl::Replicator;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Byte budget per `ReplRecords` frame pushed to a subscriber.
const MAX_REPL_FETCH_BYTES: usize = 4 << 20;

/// How long a subscriber sender blocks waiting for new records before
/// emitting a heartbeat (an empty `ReplRecords` frame).
const REPL_POLL: Duration = Duration::from_millis(100);

/// Token reserved for a shard's wake eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

/// Scratch read size per `read()` syscall.
const READ_CHUNK: usize = 16 * 1024;

/// Fairness bound: read syscalls per connection per poll tick. The level-
/// triggered poller re-reports leftover data next tick, so capping rounds
/// never loses bytes — it only interleaves hot connections.
const READ_ROUNDS_PER_TICK: usize = 8;

/// Fairness bound: frames one worker dispatch executes before requeueing
/// the connection behind other pending work.
const FRAMES_PER_DISPATCH: usize = 32;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum simultaneously open client connections; further accepts are
    /// refused with an `Err` frame.
    pub max_connections: usize,
    /// Poll tick of the readiness loops — the shutdown/maintenance poll
    /// interval when no socket event arrives.
    pub read_timeout: Duration,
    /// Readiness-loop (shard) threads; `0` sizes from the CPU count.
    pub event_loops: usize,
    /// Request-execution worker threads; `0` sizes from the CPU count.
    pub event_workers: usize,
    /// Per-connection cap of decoded-but-unserved request frames; hitting
    /// it pauses reads and sends one backpressure advisory.
    pub max_queued_requests: usize,
    /// Per-connection cap of buffered response bytes; hitting it pauses
    /// reads (and execution) until the client drains.
    pub max_conn_buffer_bytes: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            max_connections: 64,
            read_timeout: Duration::from_millis(50),
            event_loops: 0,
            event_workers: 0,
            max_queued_requests: 128,
            max_conn_buffer_bytes: 1 << 20,
        }
    }
}

fn cpu_count() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl ServerOptions {
    fn resolved_event_loops(&self) -> usize {
        if self.event_loops > 0 {
            self.event_loops
        } else {
            cpu_count().clamp(1, 4)
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.event_workers > 0 {
            self.event_workers
        } else {
            // At least 4 so one injected stall (SERVER_REQUEST_STALL holds
            // a worker for its sleep) cannot starve unrelated connections
            // even on a single-core box.
            cpu_count().clamp(4, 16)
        }
    }
}

/// Produces a serialized pool snapshot for `SnapshotFetch` serving
/// (typically [`miodb_repl::engine_snapshot_bytes`] over the engine).
pub type SnapshotFn = Box<dyn Fn() -> Result<Vec<u8>> + Send + Sync>;

/// Reports the engine's highest applied sequence number (for vote
/// responses — a voter only grants to candidates at least as caught up).
pub type AppliedFn = Box<dyn Fn() -> u64 + Send + Sync>;

/// Replication role and wiring for [`KvServer::start_replicated`].
pub struct ReplConfig {
    /// The leader-side hub; also present on followers that may be
    /// promoted (it sits quiescent until the node leads).
    pub replicator: Option<Arc<Replicator>>,
    /// Snapshot producer for `SnapshotFetch`; `None` refuses the opcode.
    pub snapshot: Option<SnapshotFn>,
    /// Shared role/epoch state (typically also handed to the follower
    /// apply loop and the election supervisor).
    pub role: Arc<RoleState>,
    /// This node's address as peers dial it: stamped into vote responses
    /// and used as the leader hint after a promotion.
    pub advertised_addr: String,
    /// Engine applied-sequence probe for vote responses; `None` reports 0
    /// (the node never wins a contested election).
    pub applied: Option<AppliedFn>,
    /// A subscriber silent past this deadline (no acks, not even
    /// heartbeat acks) is declared dead and dropped from the quorum set.
    pub follower_dead_timeout: Duration,
}

impl ReplConfig {
    /// Conventional wiring for a group member at `advertised_addr`.
    pub fn new(
        replicator: Option<Arc<Replicator>>,
        snapshot: Option<SnapshotFn>,
        role: Arc<RoleState>,
        advertised_addr: &str,
    ) -> ReplConfig {
        ReplConfig {
            replicator,
            snapshot,
            role,
            advertised_addr: advertised_addr.to_string(),
            applied: None,
            follower_dead_timeout: Duration::from_secs(3),
        }
    }
}

/// Growable response buffer drained by partial writes.
#[derive(Default)]
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn pending_slice(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > (1 << 20) && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Cross-thread state of one connection: written by the owning shard
/// (decode/enqueue, writes) and by at most one worker at a time
/// (execute/respond).
struct ConnState {
    /// Decoded frames awaiting execution, in arrival order.
    queue: VecDeque<Frame>,
    /// Encoded responses awaiting the socket.
    out: WriteBuf,
    /// A worker currently owns this connection's queue.
    executing: bool,
    /// Reads paused by the queue/buffer caps.
    read_paused: bool,
    /// An advisory was already sent for the current pause.
    backpressure_sent: bool,
    /// Flush remaining output, then close (protocol error, injected drop).
    want_close: bool,
    /// The socket is unusable; close immediately, discarding output.
    socket_dead: bool,
    /// Clean EOF from the client: finish queued work, flush, close.
    read_closed: bool,
    /// Corruption detected after `queue`'s frames: once the queue drains,
    /// answer with this error and close (keeps responses in order).
    pending_error: Option<String>,
    /// A `ReplSubscribe` asked to convert this connection into a push
    /// stream; the shard performs the handoff.
    handoff: Option<(u32, u64)>,
}

struct ConnShared {
    token: u64,
    shard: usize,
    state: Mutex<ConnState>,
}

impl ConnShared {
    fn new(token: u64, shard: usize) -> ConnShared {
        ConnShared {
            token,
            shard,
            state: Mutex::new(ConnState {
                queue: VecDeque::new(),
                out: WriteBuf::default(),
                executing: false,
                read_paused: false,
                backpressure_sent: false,
                want_close: false,
                socket_dead: false,
                read_closed: false,
                pending_error: None,
                handoff: None,
            }),
        }
    }
}

/// Message from the accept thread or a worker to a shard.
enum ShardMsg {
    /// Register a freshly accepted socket.
    NewConn(TcpStream, Arc<ConnShared>),
    /// Re-examine a connection (flush output, close, hand off, resume).
    Touch(u64),
}

struct ShardHandle {
    mailbox: Mutex<Vec<ShardMsg>>,
    wake: WakeFd,
}

impl ShardHandle {
    fn send(&self, msg: ShardMsg) {
        self.mailbox.lock().push(msg);
        self.wake.wake();
    }
}

/// FIFO of connections with executable work, shared by the worker pool.
struct WorkQueue {
    queue: Mutex<VecDeque<Arc<ConnShared>>>,
    cv: Condvar,
    stopped: AtomicBool,
}

impl WorkQueue {
    fn new() -> WorkQueue {
        WorkQueue {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stopped: AtomicBool::new(false),
        }
    }

    fn push(&self, conn: Arc<ConnShared>) {
        self.queue.lock().push_back(conn);
        self.cv.notify_one();
    }

    fn pop(&self) -> Option<Arc<ConnShared>> {
        let mut q = self.queue.lock();
        loop {
            if let Some(c) = q.pop_front() {
                return Some(c);
            }
            if self.stopped.load(Ordering::Acquire) {
                return None;
            }
            self.cv.wait(&mut q);
        }
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::Release);
        self.cv.notify_all();
    }
}

struct Shared {
    /// Swappable so a snapshot re-bootstrap can replace a follower's
    /// engine in place without tearing down client connections.
    engine: RwLock<Arc<dyn KvEngine>>,
    telemetry: ServiceTelemetry,
    shutdown: AtomicBool,
    opts: ServerOptions,
    shards: Vec<Arc<ShardHandle>>,
    work: WorkQueue,
    /// Role/epoch state: plain servers get a permanent epoch-0 leader.
    role: Arc<RoleState>,
    /// Whether this server was started with replication wiring (gates
    /// `ReplVote` and subscriber streams).
    replication_enabled: bool,
    replicator: Option<Arc<Replicator>>,
    snapshot: Option<SnapshotFn>,
    applied: Option<AppliedFn>,
    advertised_addr: String,
    follower_dead_timeout: Duration,
    /// Chaos hook: while set, inter-node opcodes (subscribe/vote/
    /// snapshot) are dropped and active subscriber streams are cut, as a
    /// network partition would. Client opcodes keep being served.
    partitioned: AtomicBool,
}

impl Shared {
    fn engine(&self) -> Arc<dyn KvEngine> {
        Arc::clone(&self.engine.read())
    }

    fn leader(&self) -> bool {
        self.role.is_leader()
    }

    fn applied_seq(&self) -> u64 {
        self.applied.as_ref().map_or(0, |f| f())
    }

    fn not_leader(&self) -> Response {
        Response::NotLeader {
            epoch: self.role.epoch(),
            hint: self.role.leader_hint(),
        }
    }

    fn stale_epoch(&self) -> Response {
        Response::StaleEpoch {
            epoch: self.role.epoch(),
            hint: self.role.leader_hint(),
        }
    }

    fn partitioned(&self) -> bool {
        self.partitioned.load(Ordering::Acquire)
    }
}

/// Maps a typed engine/replication error to its wire response. Fencing
/// and quorum errors keep their dedicated opcodes so clients can react
/// without string matching; everything else degrades to `Err(text)`.
fn error_response(e: &Error) -> Response {
    match e {
        Error::QuorumLost { have, need } => Response::QuorumLost {
            have: *have as u32,
            need: *need as u32,
        },
        Error::StaleEpoch { epoch, hint } => Response::StaleEpoch {
            epoch: *epoch,
            hint: hint.clone(),
        },
        other => Response::Err(other.to_string()),
    }
}

/// A running TCP front end over any [`KvEngine`] (a single engine, a
/// [`ShardRouter`](crate::ShardRouter), or a baseline).
pub struct KvServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    shard_threads: Mutex<Vec<JoinHandle<()>>>,
    worker_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Replication stream threads (and any other per-connection blocking
    /// handlers spawned by handoffs).
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl KvServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop, readiness shards and worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the listener cannot bind or a loop thread
    /// cannot start.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<dyn KvEngine>,
        opts: ServerOptions,
    ) -> Result<KvServer> {
        KvServer::start_inner(addr, engine, opts, None)
    }

    /// Like [`KvServer::start`] but with a replication role: a leader
    /// serves `ReplSubscribe` streams and `SnapshotFetch`; a follower
    /// refuses mutations with `NotLeader` until
    /// [`KvServer::promote_to_leader`].
    ///
    /// Installing the replicator as the engine's commit sink
    /// (`MioDb::set_commit_sink`) is the caller's job — the server only
    /// ships what the engine publishes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the listener cannot bind.
    pub fn start_replicated<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<dyn KvEngine>,
        opts: ServerOptions,
        repl: ReplConfig,
    ) -> Result<KvServer> {
        KvServer::start_inner(addr, engine, opts, Some(repl))
    }

    fn start_inner<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<dyn KvEngine>,
        opts: ServerOptions,
        repl: Option<ReplConfig>,
    ) -> Result<KvServer> {
        let listener = TcpListener::bind(addr).map_err(Error::Io)?;
        listener.set_nonblocking(true).map_err(Error::Io)?;
        let local_addr = listener.local_addr().map_err(Error::Io)?;
        let replication_enabled = repl.is_some();
        let (role, advertised_addr, applied, follower_dead_timeout, replicator, snapshot) =
            match repl {
                None => (
                    Arc::new(RoleState::new_leader(0)),
                    String::new(),
                    None,
                    Duration::from_secs(3),
                    None,
                    None,
                ),
                Some(c) => (
                    c.role,
                    c.advertised_addr,
                    c.applied,
                    c.follower_dead_timeout,
                    c.replicator,
                    c.snapshot,
                ),
            };
        // A leader's hint is its own dialable address, so probes can
        // recognise it as a live leader first-hand.
        if role.is_leader() && !advertised_addr.is_empty() {
            role.set_leader_hint(&advertised_addr);
        }
        let n_shards = opts.resolved_event_loops();
        let n_workers = opts.resolved_workers();
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shards.push(Arc::new(ShardHandle {
                mailbox: Mutex::new(Vec::new()),
                wake: WakeFd::new().map_err(Error::Io)?,
            }));
        }
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
            telemetry: ServiceTelemetry::new(),
            shutdown: AtomicBool::new(false),
            opts,
            shards,
            work: WorkQueue::new(),
            role,
            replication_enabled,
            replicator,
            snapshot,
            applied,
            advertised_addr,
            follower_dead_timeout,
            partitioned: AtomicBool::new(false),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut shard_threads = Vec::with_capacity(n_shards);
        for idx in 0..n_shards {
            let shard_shared = Arc::clone(&shared);
            let shard_handlers = Arc::clone(&handlers);
            let t = std::thread::Builder::new()
                .name(format!("miodb-shard-{idx}"))
                .spawn(move || shard_loop(idx, &shard_shared, &shard_handlers))
                .map_err(Error::Io)?;
            shard_threads.push(t);
        }
        let mut worker_threads = Vec::with_capacity(n_workers);
        for idx in 0..n_workers {
            let worker_shared = Arc::clone(&shared);
            let t = std::thread::Builder::new()
                .name(format!("miodb-worker-{idx}"))
                .spawn(move || worker_loop(&worker_shared))
                .map_err(Error::Io)?;
            worker_threads.push(t);
        }
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("miodb-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(Error::Io)?;
        Ok(KvServer {
            shared,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
            shard_threads: Mutex::new(shard_threads),
            worker_threads: Mutex::new(worker_threads),
            handlers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connection gauges and per-opcode latency histograms.
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.shared.telemetry
    }

    /// The served engine (a clone of the current slot — the engine can be
    /// swapped by [`KvServer::replace_engine`] during a snapshot
    /// re-bootstrap).
    pub fn engine(&self) -> Arc<dyn KvEngine> {
        self.shared.engine()
    }

    /// Swaps the served engine in place (snapshot re-bootstrap on a
    /// follower). In-flight requests finish against the engine they
    /// started with; subsequent requests see the new one.
    pub fn replace_engine(&self, engine: Arc<dyn KvEngine>) {
        *self.shared.engine.write() = engine;
    }

    /// Current replication role (plain servers are always leaders).
    pub fn is_leader(&self) -> bool {
        self.shared.leader()
    }

    /// The shared role/epoch state.
    pub fn role(&self) -> &Arc<RoleState> {
        &self.shared.role
    }

    /// Failover: flips a follower into a leader in place at a fresh
    /// epoch. New mutations are accepted immediately; the caller should
    /// have drained the old leader's stream first
    /// ([`miodb_repl::Follower::promote`]). Also fences the replication
    /// log base at the engine's applied offset: subscribers behind it
    /// must snapshot-catch-up, since this node's log never held those
    /// records and cannot prove their prefix.
    pub fn promote_to_leader(&self) {
        let epoch = self.shared.role.epoch() + 1;
        self.shared.role.become_leader(epoch);
        if !self.shared.advertised_addr.is_empty() {
            self.shared
                .role
                .set_leader_hint(&self.shared.advertised_addr);
        } else {
            self.shared.role.set_leader_hint("");
        }
        if let Some(r) = &self.shared.replicator {
            r.set_base(self.shared.applied_seq());
        }
    }

    /// Chaos hook: simulate this node being cut off from its peers.
    /// While partitioned, inter-node opcodes (`ReplSubscribe`,
    /// `ReplVote`, `SnapshotFetch`) are dropped without a response and
    /// active subscriber streams are severed; ordinary client traffic is
    /// still served (that asymmetry is what makes a partitioned
    /// quorum-level leader answer `QuorumLost`).
    pub fn set_partitioned(&self, partitioned: bool) {
        self.shared
            .partitioned
            .store(partitioned, Ordering::Release);
    }

    /// Whether the partition chaos hook is engaged.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned()
    }

    /// The replication hub, when started with one.
    pub fn replicator(&self) -> Option<&Arc<Replicator>> {
        self.shared.replicator.as_ref()
    }

    /// Stops accepting, drains every connection (queued requests execute,
    /// responses are written and flushed) and joins all server threads.
    /// Idempotent.
    ///
    /// Closing the engine (draining the commit queue and flushing
    /// MemTables) is the owner's job afterwards — e.g.
    /// [`ShardRouter::close`](crate::ShardRouter::close).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for shard in &self.shared.shards {
            shard.wake.wake();
        }
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        // Shards exit only once every connection has been drained, so by
        // the time they are joined the work queue is empty and quiescent.
        let shards: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shard_threads.lock());
        for t in shards {
            let _ = t.join();
        }
        self.shared.work.stop();
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.worker_threads.lock());
        for t in workers {
            let _ = t.join();
        }
        let drained: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock());
        for t in drained {
            let _ = t.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_token: u64 = 1;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.telemetry.active_connections() >= shared.opts.max_connections as u64 {
                    refuse(stream, shared);
                    continue;
                }
                shared.telemetry.conn_opened();
                let token = next_token;
                next_token += 1;
                let shard_idx = (token as usize) % shared.shards.len();
                let conn = Arc::new(ConnShared::new(token, shard_idx));
                shared.shards[shard_idx].send(ShardMsg::NewConn(stream, conn));
            }
            Err(e) if proto::is_timeout(&e) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back off.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Answers an over-limit connection with one `Err` frame and drops it.
fn refuse(stream: TcpStream, shared: &Shared) {
    shared.telemetry.conn_refused();
    let mut w = BufWriter::new(stream);
    let resp = Response::Err("server at connection limit".to_string());
    let _ = proto::write_response(&mut w, 0, Opcode::Get, &resp);
    let _ = w.flush();
}

/// Shard-thread-local half of one connection.
struct ShardConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    shared_conn: Arc<ConnShared>,
    /// Currently registered epoll interest.
    interest: u32,
    /// Reading is over for good (EOF, error, post-drain); the queue/out
    /// lifecycle decides when the connection closes.
    no_more_reads: bool,
}

fn shard_loop(idx: usize, shared: &Arc<Shared>, handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let Ok(poller) = Poller::new() else {
        return;
    };
    let handle = Arc::clone(&shared.shards[idx]);
    if poller.add(handle.wake.fd(), WAKE_TOKEN, EPOLLIN).is_err() {
        return;
    }
    let mut conns: HashMap<u64, ShardConn> = HashMap::new();
    let mut events: Vec<(u64, u32)> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut draining = false;
    loop {
        if poller
            .wait(&mut events, Some(shared.opts.read_timeout))
            .is_err()
        {
            break;
        }
        if !draining && shared.shutdown.load(Ordering::Acquire) {
            draining = true;
            // Final read pass: slurp every socket's already-sent bytes
            // (ignoring the queue caps), then stop reading for good. The
            // loop below keeps executing and flushing until all drained.
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                if let Some(sc) = conns.get_mut(&token) {
                    read_conn(sc, shared, &mut scratch, true);
                    sc.no_more_reads = true;
                    let mut st = sc.shared_conn.state.lock();
                    st.read_closed = true;
                }
                service_conn(token, &mut conns, &poller, shared, handlers);
            }
        }
        for &(token, ev) in &events {
            if token == WAKE_TOKEN {
                handle.wake.drain();
                continue;
            }
            let Some(sc) = conns.get_mut(&token) else {
                continue;
            };
            if ev & (EPOLLERR | EPOLLHUP) != 0 {
                sc.shared_conn.state.lock().socket_dead = true;
            } else if ev & (EPOLLIN | EPOLLRDHUP) != 0 {
                read_conn(sc, shared, &mut scratch, draining);
            }
            service_conn(token, &mut conns, &poller, shared, handlers);
        }
        loop {
            let msgs: Vec<ShardMsg> = std::mem::take(&mut *handle.mailbox.lock());
            if msgs.is_empty() {
                break;
            }
            for msg in msgs {
                match msg {
                    ShardMsg::NewConn(stream, conn) => {
                        if draining {
                            shared.telemetry.conn_closed();
                            continue;
                        }
                        register_conn(stream, conn, &mut conns, &poller, shared, &mut scratch);
                    }
                    ShardMsg::Touch(token) => {
                        service_conn(token, &mut conns, &poller, shared, handlers);
                    }
                }
            }
        }
        if draining && conns.is_empty() {
            break;
        }
    }
    // Unreachable in normal operation, but make sure the gauge stays
    // truthful if the loop ever aborts with connections open.
    for _ in conns.drain() {
        shared.telemetry.conn_closed();
    }
}

fn register_conn(
    stream: TcpStream,
    conn: Arc<ConnShared>,
    conns: &mut HashMap<u64, ShardConn>,
    poller: &Poller,
    shared: &Arc<Shared>,
    scratch: &mut [u8],
) {
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        shared.telemetry.conn_closed();
        return;
    }
    let token = conn.token;
    let interest = EPOLLIN | EPOLLRDHUP;
    if poller.add(stream.as_raw_fd(), token, interest).is_err() {
        shared.telemetry.conn_closed();
        return;
    }
    let mut sc = ShardConn {
        stream,
        decoder: FrameDecoder::new(),
        shared_conn: conn,
        interest,
        no_more_reads: false,
    };
    // The client may have sent its first frames before registration.
    read_conn(&mut sc, shared, scratch, false);
    conns.insert(token, sc);
}

/// Reads until `WouldBlock`/EOF (bounded per tick for fairness unless
/// `unbounded`), feeding the decoder and enqueueing decoded frames.
fn read_conn(sc: &mut ShardConn, shared: &Arc<Shared>, scratch: &mut [u8], unbounded: bool) {
    if sc.no_more_reads {
        return;
    }
    let mut rounds = 0;
    loop {
        {
            let st = sc.shared_conn.state.lock();
            if !unbounded
                && (st.read_paused || st.want_close || st.socket_dead || st.handoff.is_some())
            {
                return;
            }
        }
        match sc.stream.read(scratch) {
            Ok(0) => {
                sc.no_more_reads = true;
                sc.shared_conn.state.lock().read_closed = true;
                return;
            }
            Ok(n) => {
                sc.decoder.feed(&scratch[..n]);
                decode_pending(sc, shared, unbounded);
                rounds += 1;
                if !unbounded && rounds >= READ_ROUNDS_PER_TICK {
                    // Level-triggered: leftover bytes re-report next tick.
                    return;
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => {
                sc.no_more_reads = true;
                sc.shared_conn.state.lock().socket_dead = true;
                return;
            }
        }
    }
}

/// Drains the decoder into the request queue, applying the backpressure
/// caps (skipped while `draining`: shutdown executes everything already
/// sent).
fn decode_pending(sc: &mut ShardConn, shared: &Arc<Shared>, draining: bool) {
    loop {
        {
            let mut st = sc.shared_conn.state.lock();
            if st.handoff.is_some() || st.want_close {
                return;
            }
            if !draining
                && (st.queue.len() >= shared.opts.max_queued_requests
                    || st.out.pending() >= shared.opts.max_conn_buffer_bytes)
            {
                st.read_paused = true;
                if !st.backpressure_sent {
                    st.backpressure_sent = true;
                    let advisory = Response::Backpressure {
                        queued: st.queue.len() as u32,
                    };
                    let _ = proto::write_response(&mut st.out.buf, 0, Opcode::Get, &advisory);
                    shared.telemetry.backpressure_event();
                }
                return;
            }
        }
        match sc.decoder.next_frame() {
            Ok(Some(frame)) => {
                let mut st = sc.shared_conn.state.lock();
                st.queue.push_back(frame);
                if !st.executing {
                    st.executing = true;
                    drop(st);
                    shared.work.push(Arc::clone(&sc.shared_conn));
                }
            }
            Ok(None) => return,
            Err(e) => {
                // Corruption: the stream is no longer frame-aligned.
                // Frames decoded before the bad bytes still get served;
                // the error response and the close follow them in order.
                shared.telemetry.protocol_error();
                sc.no_more_reads = true;
                let mut st = sc.shared_conn.state.lock();
                st.pending_error = Some(format!("protocol error: {e}"));
                if !st.executing {
                    st.executing = true;
                    drop(st);
                    shared.work.push(Arc::clone(&sc.shared_conn));
                }
                return;
            }
        }
    }
}

/// Flushes, resumes, reschedules, hands off or closes one connection
/// based on its current state. Called after every event/message touching
/// the connection.
fn service_conn(
    token: u64,
    conns: &mut HashMap<u64, ShardConn>,
    poller: &Poller,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let Some(sc) = conns.get_mut(&token) else {
        return;
    };
    if sc.shared_conn.state.lock().handoff.is_some() {
        handoff_conn(token, conns, poller, shared, handlers);
        return;
    }
    write_conn(sc);

    // Resume reads once the client has drained below half the caps. The
    // decoder may still hold complete frames consumed from the kernel
    // before the pause; drain them now — level-triggered EPOLLIN only
    // re-reports bytes still sitting in the kernel buffer, so nothing
    // else will ever decode them. This must run before the close check so
    // a read-closed connection executes its final decoded requests.
    let resumed = {
        let mut st = sc.shared_conn.state.lock();
        let can = st.read_paused
            && !st.want_close
            && st.queue.len() < shared.opts.max_queued_requests / 2
            && st.out.pending() < shared.opts.max_conn_buffer_bytes / 2;
        if can {
            st.read_paused = false;
            st.backpressure_sent = false;
        }
        can
    };
    if resumed {
        decode_pending(sc, shared, false);
    }

    let mut st = sc.shared_conn.state.lock();
    let out_empty = st.out.pending() == 0;
    let idle = st.queue.is_empty() && !st.executing && st.pending_error.is_none();
    let close_now = st.socket_dead
        || (st.want_close && out_empty && !st.executing)
        || (st.read_closed && idle && out_empty);
    if close_now {
        drop(st);
        let sc = conns.remove(&token).expect("connection present");
        let _ = poller.delete(sc.stream.as_raw_fd());
        shared.telemetry.conn_closed();
        return;
    }
    // A worker that stalled on the write-buffer cap parked the connection
    // with work still queued; now that the buffer drained, reschedule.
    if !st.executing
        && (!st.queue.is_empty() || st.pending_error.is_some())
        && st.out.pending() < shared.opts.max_conn_buffer_bytes
    {
        st.executing = true;
        shared.work.push(Arc::clone(&sc.shared_conn));
    }
    let want_in = !st.read_paused && !sc.no_more_reads && !st.want_close;
    let want_out = st.out.pending() > 0;
    drop(st);

    // Level-triggered: on a read resume, any bytes the kernel already
    // buffered re-report on the next poll, so no immediate read is needed.
    let mut interest = EPOLLRDHUP;
    if want_in {
        interest |= EPOLLIN;
    }
    if want_out {
        interest |= EPOLLOUT;
    }
    if interest != sc.interest {
        sc.interest = interest;
        let _ = poller.modify(sc.stream.as_raw_fd(), token, interest);
    }
}

/// Writes buffered responses until the socket would block.
fn write_conn(sc: &mut ShardConn) {
    let mut st = sc.shared_conn.state.lock();
    while st.out.pending() > 0 && !st.socket_dead {
        match sc.stream.write(st.out.pending_slice()) {
            Ok(0) => {
                st.socket_dead = true;
            }
            Ok(n) => st.out.consume(n),
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => {
                st.socket_dead = true;
            }
        }
    }
}

/// Converts a connection into a replication push stream: deregisters it
/// from the event loop, restores blocking mode, flushes pending output,
/// and hands the socket (with the decoder's residual bytes and any
/// already-queued frames) to a dedicated stream thread.
fn handoff_conn(
    token: u64,
    conns: &mut HashMap<u64, ShardConn>,
    poller: &Poller,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let Some(sc) = conns.remove(&token) else {
        return;
    };
    let _ = poller.delete(sc.stream.as_raw_fd());
    let ShardConn {
        stream,
        decoder,
        shared_conn,
        ..
    } = sc;
    let (id, from, mut out, leftover) = {
        let mut st = shared_conn.state.lock();
        let (id, from) = st.handoff.take().expect("handoff set");
        let out = std::mem::take(&mut st.out);
        let leftover: Vec<Frame> = st.queue.drain(..).collect();
        (id, from, out, leftover)
    };
    if stream.set_nonblocking(false).is_err() {
        shared.telemetry.conn_closed();
        return;
    }
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    // Flush responses to requests pipelined before the subscribe, so the
    // stream's hello is the next frame the follower sees.
    let mut stream_w = &stream;
    while out.pending() > 0 {
        match stream_w.write(out.pending_slice()) {
            Ok(0) | Err(_) => {
                shared.telemetry.conn_closed();
                return;
            }
            Ok(n) => out.consume(n),
        }
    }
    let residual = decoder.into_residual();
    let stream_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("miodb-repl-stream".to_string())
        .spawn(move || {
            let Ok(read_half) = stream.try_clone() else {
                stream_shared.telemetry.conn_closed();
                return;
            };
            let reader = BufReader::new(std::io::Cursor::new(residual).chain(read_half));
            let writer = BufWriter::new(stream);
            serve_repl_stream(id, from, leftover, reader, writer, &stream_shared);
            stream_shared.telemetry.conn_closed();
        });
    match spawned {
        Ok(t) => handlers.lock().push(t),
        Err(_) => shared.telemetry.conn_closed(),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut out = Vec::new();
    while let Some(conn) = shared.work.pop() {
        let requeue = serve_conn(&conn, shared, &mut out);
        if requeue {
            shared.work.push(Arc::clone(&conn));
        }
        let shard = &shared.shards[conn.shard];
        shard.send(ShardMsg::Touch(conn.token));
    }
}

/// Executes one connection's queued frames in order. Returns `true` when
/// the connection still holds work but yielded for fairness (the caller
/// requeues it).
fn serve_conn(conn: &Arc<ConnShared>, shared: &Arc<Shared>, out: &mut Vec<u8>) -> bool {
    let mut served = 0;
    loop {
        let frame = {
            let mut st = conn.state.lock();
            if st.want_close || st.socket_dead || st.handoff.is_some() {
                st.executing = false;
                return false;
            }
            if st.out.pending() >= shared.opts.max_conn_buffer_bytes {
                // Stalled on the write buffer: park; the shard reschedules
                // once the client drains.
                st.executing = false;
                return false;
            }
            match st.queue.pop_front() {
                Some(f) => f,
                None => {
                    if let Some(msg) = st.pending_error.take() {
                        let resp = Response::Err(msg);
                        let _ = proto::write_response(&mut st.out.buf, 0, Opcode::Get, &resp);
                        st.want_close = true;
                    }
                    st.executing = false;
                    return false;
                }
            }
        };
        out.clear();
        let outcome = serve_frame(&frame, shared, out);
        match outcome {
            FrameOutcome::Wrote => {
                let mut st = conn.state.lock();
                st.out.buf.extend_from_slice(out);
            }
            FrameOutcome::NoResponse => {}
            FrameOutcome::Close => {
                let mut st = conn.state.lock();
                st.queue.clear();
                st.pending_error = None;
                st.want_close = true;
                st.executing = false;
                return false;
            }
            FrameOutcome::StartStream { id, from } => {
                let mut st = conn.state.lock();
                st.handoff = Some((id, from));
                st.executing = false;
                return false;
            }
        }
        served += 1;
        if served >= FRAMES_PER_DISPATCH {
            // Yield to other connections; `executing` stays set so no
            // second worker can claim the queue meanwhile.
            let has_more = {
                let st = conn.state.lock();
                !st.queue.is_empty() || st.pending_error.is_some()
            };
            if has_more {
                return true;
            }
            served = 0;
        }
    }
}

/// What serving one frame decided about the connection's future.
enum FrameOutcome {
    /// A response was encoded into the scratch buffer.
    Wrote,
    /// No response frame (fire-and-forget opcodes).
    NoResponse,
    /// Close the connection (after flushing earlier responses).
    Close,
    /// Convert the connection into a replication push stream, resuming
    /// after `from`.
    StartStream {
        /// Request id of the subscribe handshake (echoed on the hello).
        id: u32,
        /// Resume point: push records with sequence numbers after this.
        from: u64,
    },
}

/// Opcodes exchanged between group members (not clients): these are what
/// a simulated partition drops.
fn is_inter_node(opcode: u8) -> bool {
    matches!(
        Opcode::from_u8(opcode),
        Some(Opcode::ReplSubscribe | Opcode::ReplAck | Opcode::ReplVote | Opcode::SnapshotFetch)
    )
}

/// Decodes and executes one frame, encoding any response into `out`.
/// Decode failure after a structurally valid frame keeps the connection
/// open — framing is still aligned.
fn serve_frame(frame: &Frame, shared: &Shared, out: &mut Vec<u8>) -> FrameOutcome {
    // Injected stall: a `Latency` policy sleeps inside `hit`, holding this
    // connection's pipeline while every other connection keeps serving.
    let _ = fault::hit(fault::points::SERVER_REQUEST_STALL);
    // Injected drop: close the connection without responding — the client
    // must treat an in-flight mutation as ambiguous (`MaybeApplied`) and
    // reconnect. Other connections are unaffected.
    if fault::hit(fault::points::SERVER_CONN_DROP).is_some() {
        return FrameOutcome::Close;
    }
    // Simulated partition: peer traffic vanishes mid-network, exactly as
    // a real partition would look — no refusal frame, just silence.
    if shared.partitioned() && is_inter_node(frame.opcode) {
        return FrameOutcome::Close;
    }
    let started = Instant::now();
    shared.telemetry.request_begin();
    // Adopt the frame's wire trace context so engine-internal spans (and
    // the response frame header) join the client's trace. Both guards
    // live until after the response is encoded.
    let _ctx = (frame.sampled && frame.trace_id != 0 && trace::is_enabled()).then(|| {
        trace::with_ctx(TraceCtx {
            trace_id: frame.trace_id,
            span_id: 0,
            sampled: true,
        })
    });
    let mut srv_span = trace::span(SpanKind::SrvRequest);
    srv_span.annotate(u64::from(frame.opcode));
    let decoded = {
        let _d = trace::span(SpanKind::SrvDecode);
        Request::decode(frame.opcode, &frame.body)
    };
    let (op, resp) = match decoded {
        // Subscribe handshake: answered from the stream handler (it needs
        // the log bounds and a registered subscriber id).
        Ok(Request::ReplSubscribe { from, epoch }) => {
            shared
                .telemetry
                .request_end(Opcode::ReplSubscribe, started.elapsed().as_nanos() as u64);
            // A subscriber presenting a newer epoch fences us: somewhere
            // an election we missed has concluded.
            if epoch > shared.role.epoch() {
                shared.role.observe_epoch(epoch, "");
            }
            if shared.leader() && shared.replicator.is_some() {
                return FrameOutcome::StartStream { id: frame.id, from };
            }
            let resp = if shared.role.is_deposed() {
                shared.stale_epoch()
            } else if !shared.replication_enabled {
                Response::Err("replication not enabled".to_string())
            } else {
                shared.not_leader()
            };
            let _ = proto::write_response(out, frame.id, Opcode::ReplSubscribe, &resp);
            return FrameOutcome::Wrote;
        }
        // Acks are fire-and-forget (no response frame); outside a
        // subscriber stream there is nothing to credit one to — but the
        // epoch on one still fences.
        Ok(Request::ReplAck { epoch, .. }) => {
            shared
                .telemetry
                .request_end(Opcode::ReplAck, started.elapsed().as_nanos() as u64);
            if epoch > shared.role.epoch() {
                shared.role.observe_epoch(epoch, "");
            }
            return FrameOutcome::NoResponse;
        }
        Ok(req) => {
            let op = req.opcode();
            let _e = trace::span(SpanKind::SrvExecute);
            (op, execute(&req, shared))
        }
        Err(e) => {
            shared.telemetry.protocol_error();
            // An unknown opcode gets a typed in-band refusal and the
            // connection stays usable — framing is still aligned, so an
            // older server probed by a newer client degrades gracefully.
            let msg = if Opcode::from_u8(frame.opcode).is_none() {
                format!("unsupported opcode {:#x}", frame.opcode)
            } else {
                format!("bad request: {e}")
            };
            (Opcode::Get, Response::Err(msg))
        }
    };
    shared
        .telemetry
        .request_end(op, started.elapsed().as_nanos() as u64);
    let _ = proto::write_response(out, frame.id, op, &resp);
    FrameOutcome::Wrote
}

fn execute(req: &Request, shared: &Shared) -> Response {
    let engine = shared.engine();
    // Non-leaders refuse mutations *before* any engine work: the request
    // is provably not applied, so the client's redirect-and-retry is
    // always safe (no duplicate-write ambiguity, unlike a dropped
    // connection). A *deposed* leader answers the typed `StaleEpoch` —
    // the distinction matters: `NotLeader` means "follow the hint",
    // `StaleEpoch` means "your leader view is stale, refresh it".
    if matches!(
        req,
        Request::Put { .. } | Request::Delete { .. } | Request::Batch { .. }
    ) {
        if shared.role.is_deposed() {
            return shared.stale_epoch();
        }
        if !shared.leader() {
            return shared.not_leader();
        }
        // Quorum-level admission: a leader that cannot possibly reach a
        // majority refuses typed rather than accepting a write that
        // could never quorum-ack (the partitioned-leader case).
        if let Some(r) = &shared.replicator {
            if let Err(e) = r.admit_write() {
                return error_response(&e);
            }
        }
    }
    let result = match req {
        Request::Get { key } => engine.get(key).map(Response::Value),
        Request::Put { key, value } => engine.put(key, value).map(|()| Response::Ok),
        Request::Delete { key } => engine.delete(key).map(|()| Response::Ok),
        Request::Scan { start, limit } => {
            engine.scan(start, *limit as usize).map(Response::Entries)
        }
        Request::Batch { ops } => ops
            .iter()
            .try_for_each(|(key, value, kind)| match kind {
                OpKind::Put => engine.put(key, value),
                OpKind::Delete => engine.delete(key),
            })
            .map(|()| Response::Ok),
        Request::Stats => {
            let mut text = engine.metrics_text();
            text.push_str(&shared.telemetry.render_prometheus());
            if let Some(replicator) = &shared.replicator {
                text.push_str(&replicator.render_prometheus());
            }
            Ok(Response::Stats(text))
        }
        // Drains every span buffered so far (client spans too when the
        // tracer is process-global, as in netbench) as Chrome trace JSON.
        Request::TraceDump => Ok(Response::Trace(trace::to_chrome_json(&trace::drain()))),
        Request::SnapshotFetch => match &shared.snapshot {
            Some(produce) => produce().map(Response::Snapshot),
            None => Ok(Response::Err("snapshot serving not configured".to_string())),
        },
        // Election traffic: probes (epoch 0) report status, ballots go
        // through the one-vote-per-epoch gate. A deposed-by-ballot leader
        // steps down inside `consider_vote` before the candidate's first
        // write can race it.
        Request::ReplVote {
            epoch,
            last_seq,
            candidate,
        } => {
            if !shared.replication_enabled {
                Ok(Response::Err("replication not enabled".to_string()))
            } else {
                let my_seq = shared.applied_seq();
                let granted = shared.role.consider_vote(
                    *epoch,
                    *last_seq,
                    candidate,
                    my_seq,
                    &shared.advertised_addr,
                );
                Ok(Response::Vote {
                    granted,
                    epoch: shared.role.epoch(),
                    last_seq: my_seq,
                    leader_live: shared.role.leader_live(),
                    leader_hint: shared.role.leader_hint(),
                })
            }
        }
        // Handled in serve_frame before execute; kept for exhaustiveness.
        Request::ReplSubscribe { .. } | Request::ReplAck { .. } => Ok(Response::Err(
            "replication opcode outside stream handshake".to_string(),
        )),
    };
    result.unwrap_or_else(|e| error_response(&e))
}

/// Runs a subscriber connection after the `ReplSubscribe` handshake: this
/// thread pushes epoch-stamped `ReplRecords` frames (fed from the
/// replication log, with heartbeats when idle) while a companion thread
/// reads `ReplAck` frames off the same socket. Every ack — heartbeat acks
/// included — feeds the follower failure detector and the fencing check.
/// Ends on follower hangup, follower death (silence past the deadline),
/// deposition (an ack or ballot carried a newer epoch — the final frame
/// is then a `StaleEpoch` goodbye), shutdown, partition, log truncation
/// or an injected `repl.stream.drop`.
///
/// `leftover` carries frames the event loop had already decoded past the
/// subscribe (acks a follower pipelined before the hello); they are
/// credited before the socket is read.
fn serve_repl_stream<R: Read + Send + 'static>(
    id: u32,
    from: u64,
    leftover: Vec<Frame>,
    mut reader: BufReader<R>,
    mut writer: BufWriter<TcpStream>,
    shared: &Shared,
) {
    let Some(replicator) = shared.replicator.clone() else {
        return;
    };
    let (log_start, last) = replicator.subscribe_bounds();
    let hello = Response::ReplSubscribed {
        log_start,
        last,
        epoch: shared.role.epoch(),
    };
    if proto::write_response(&mut writer, id, Opcode::ReplSubscribe, &hello).is_err()
        || writer.flush().is_err()
    {
        return;
    }
    let sub_id = replicator.register_subscriber();
    let stop = Arc::new(AtomicBool::new(false));

    // Ack reader: same socket, opposite direction. Exits when the
    // follower hangs up, or polls `stop` at its read timeout after the
    // sender below ends the stream.
    let ack_stop = Arc::clone(&stop);
    let ack_replicator = Arc::clone(&replicator);
    let ack_role = Arc::clone(&shared.role);
    let ack_thread = std::thread::Builder::new()
        .name("miodb-repl-ack".to_string())
        .spawn(move || {
            let credit = |frame: &Frame| {
                if let Ok(Request::ReplAck { offset, epoch }) =
                    Request::decode(frame.opcode, &frame.body)
                {
                    // Fencing: a follower that voted in an election we
                    // missed reports the new epoch here; observing it
                    // deposes this leader and the sender loop below winds
                    // the stream down.
                    if epoch > ack_role.epoch() {
                        ack_role.observe_epoch(epoch, "");
                    }
                    ack_replicator.record_ack(sub_id, offset);
                }
            };
            for frame in &leftover {
                credit(frame);
            }
            loop {
                match proto::read_frame(&mut reader) {
                    Ok(Some(frame)) => credit(&frame),
                    Ok(None) => break,
                    Err(Error::Io(ref e)) if proto::is_timeout(e) => {
                        if ack_stop.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            ack_stop.store(true, Ordering::Release);
        })
        .ok();

    let mut cursor = from;
    loop {
        if stop.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Deposed mid-stream: say goodbye with the typed frame so the
        // follower learns the fence even before it finds the new leader.
        if !shared.leader() {
            let _ =
                proto::write_response(&mut writer, 0, Opcode::ReplRecords, &shared.stale_epoch());
            let _ = writer.flush();
            break;
        }
        // Simulated partition: the stream just dies, no goodbye.
        if shared.partitioned() {
            break;
        }
        // Follower failure detection: acks (heartbeat acks included)
        // arrive at least every poll interval from a live follower;
        // silence past the deadline drops it from the quorum set.
        if shared
            .replication_enabled
            .then(|| replicator.ack_silent_for(sub_id))
            .flatten()
            .is_some_and(|silent| silent >= shared.follower_dead_timeout)
        {
            break;
        }
        // Injected stream drop: the subscriber connection dies without a
        // goodbye; the follower reconnects and resumes from its applied
        // offset.
        if fault::hit(fault::points::REPL_STREAM_DROP).is_some() {
            break;
        }
        let fetched = replicator.fetch_after(cursor, MAX_REPL_FETCH_BYTES, REPL_POLL);
        if fetched.truncated {
            let resp = Response::Err("replication log truncated; snapshot required".to_string());
            let _ = proto::write_response(&mut writer, 0, Opcode::ReplRecords, &resp);
            let _ = writer.flush();
            break;
        }
        let batches: Vec<ReplBatch> = fetched
            .entries
            .iter()
            .map(|e| ReplBatch {
                seq_first: e.seq_first,
                seq_last: e.seq_last,
                bytes: e.bytes.as_ref().clone(),
            })
            .collect();
        if let Some(tail) = batches.last() {
            cursor = tail.seq_last;
        }
        // An empty batch list is the heartbeat.
        let frame = Response::ReplRecords {
            epoch: shared.role.epoch(),
            batches,
        };
        if proto::write_response(&mut writer, 0, Opcode::ReplRecords, &frame).is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
    stop.store(true, Ordering::Release);
    drop(writer);
    if let Some(t) = ack_thread {
        let _ = t.join();
    }
    replicator.deregister_subscriber(sub_id);
}
