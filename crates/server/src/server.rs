//! Thread-per-connection TCP server speaking the MioDB wire protocol.
//!
//! Design (§9 of DESIGN.md):
//!
//! - **Thread per connection.** The engine's write pipeline already batches
//!   concurrent writers into group commits, so handler threads map directly
//!   onto the concurrency the engine wants — no user-space scheduler.
//! - **Pipelining.** A handler decodes frames as fast as they arrive and
//!   answers strictly in order. Responses accumulate in a per-connection
//!   `BufWriter` and are flushed only when the read side has no buffered
//!   frame left, so a burst of N pipelined requests costs one syscall out.
//! - **Shutdown.** Handlers block in `read_frame` with a short read
//!   timeout; a timeout *between* frames is the poll point for the shutdown
//!   flag. In-flight requests always finish and their responses are flushed
//!   before the handler exits — [`KvServer::shutdown`] then joins every
//!   thread, so it returns only once the connection set has drained.
//! - **Backpressure.** Past `max_connections`, an accept is answered with a
//!   single `Err` frame and closed; clients retry elsewhere or back off.
//! - **Replication** (§13 of DESIGN.md). A server started with
//!   [`KvServer::start_replicated`] carries a shared [`RoleState`]:
//!   leaders accept `ReplSubscribe` by converting that connection into a
//!   push stream of committed WAL records (fed from the [`Replicator`]'s
//!   log, with acks read back on the same socket), serve `SnapshotFetch`
//!   for cold catch-up and answer `ReplVote` probes/ballots; followers
//!   refuse mutations with a typed `NotLeader` frame carrying the epoch
//!   and a redirect hint. Every replication frame carries the epoch, and
//!   every mutation checks it *before* engine work: a deposed leader
//!   answers `StaleEpoch`, and a quorum-level leader that cannot reach a
//!   majority answers `QuorumLost` instead of silently accepting.
//!   [`KvServer::promote_to_leader`] flips the role in place during
//!   failover; [`KvServer::set_partitioned`] simulates a network
//!   partition for chaos tests (inter-node opcodes dropped, streams cut,
//!   client traffic still served).

use miodb_common::proto::{self, Frame, Opcode, ReplBatch, Request, Response};
use miodb_common::trace::{self, SpanKind, TraceCtx};
use miodb_common::{fault, Error, KvEngine, OpKind, Result, RoleState, ServiceTelemetry};
use miodb_repl::Replicator;
use parking_lot::{Mutex, RwLock};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Byte budget per `ReplRecords` frame pushed to a subscriber.
const MAX_REPL_FETCH_BYTES: usize = 4 << 20;

/// How long a subscriber sender blocks waiting for new records before
/// emitting a heartbeat (an empty `ReplRecords` frame).
const REPL_POLL: Duration = Duration::from_millis(100);

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum simultaneously open client connections; further accepts are
    /// refused with an `Err` frame.
    pub max_connections: usize,
    /// Read timeout used as the shutdown poll interval between frames.
    pub read_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            max_connections: 64,
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// Produces a serialized pool snapshot for `SnapshotFetch` serving
/// (typically [`miodb_repl::engine_snapshot_bytes`] over the engine).
pub type SnapshotFn = Box<dyn Fn() -> Result<Vec<u8>> + Send + Sync>;

/// Reports the engine's highest applied sequence number (for vote
/// responses — a voter only grants to candidates at least as caught up).
pub type AppliedFn = Box<dyn Fn() -> u64 + Send + Sync>;

/// Replication role and wiring for [`KvServer::start_replicated`].
pub struct ReplConfig {
    /// The leader-side hub; also present on followers that may be
    /// promoted (it sits quiescent until the node leads).
    pub replicator: Option<Arc<Replicator>>,
    /// Snapshot producer for `SnapshotFetch`; `None` refuses the opcode.
    pub snapshot: Option<SnapshotFn>,
    /// Shared role/epoch state (typically also handed to the follower
    /// apply loop and the election supervisor).
    pub role: Arc<RoleState>,
    /// This node's address as peers dial it: stamped into vote responses
    /// and used as the leader hint after a promotion.
    pub advertised_addr: String,
    /// Engine applied-sequence probe for vote responses; `None` reports 0
    /// (the node never wins a contested election).
    pub applied: Option<AppliedFn>,
    /// A subscriber silent past this deadline (no acks, not even
    /// heartbeat acks) is declared dead and dropped from the quorum set.
    pub follower_dead_timeout: Duration,
}

impl ReplConfig {
    /// Conventional wiring for a group member at `advertised_addr`.
    pub fn new(
        replicator: Option<Arc<Replicator>>,
        snapshot: Option<SnapshotFn>,
        role: Arc<RoleState>,
        advertised_addr: &str,
    ) -> ReplConfig {
        ReplConfig {
            replicator,
            snapshot,
            role,
            advertised_addr: advertised_addr.to_string(),
            applied: None,
            follower_dead_timeout: Duration::from_secs(3),
        }
    }
}

struct Shared {
    /// Swappable so a snapshot re-bootstrap can replace a follower's
    /// engine in place without tearing down client connections.
    engine: RwLock<Arc<dyn KvEngine>>,
    telemetry: ServiceTelemetry,
    shutdown: AtomicBool,
    opts: ServerOptions,
    /// Role/epoch state: plain servers get a permanent epoch-0 leader.
    role: Arc<RoleState>,
    /// Whether this server was started with replication wiring (gates
    /// `ReplVote` and subscriber streams).
    replication_enabled: bool,
    replicator: Option<Arc<Replicator>>,
    snapshot: Option<SnapshotFn>,
    applied: Option<AppliedFn>,
    advertised_addr: String,
    follower_dead_timeout: Duration,
    /// Chaos hook: while set, inter-node opcodes (subscribe/vote/
    /// snapshot) are dropped and active subscriber streams are cut, as a
    /// network partition would. Client opcodes keep being served.
    partitioned: AtomicBool,
}

impl Shared {
    fn engine(&self) -> Arc<dyn KvEngine> {
        Arc::clone(&self.engine.read())
    }

    fn leader(&self) -> bool {
        self.role.is_leader()
    }

    fn applied_seq(&self) -> u64 {
        self.applied.as_ref().map_or(0, |f| f())
    }

    fn not_leader(&self) -> Response {
        Response::NotLeader {
            epoch: self.role.epoch(),
            hint: self.role.leader_hint(),
        }
    }

    fn stale_epoch(&self) -> Response {
        Response::StaleEpoch {
            epoch: self.role.epoch(),
            hint: self.role.leader_hint(),
        }
    }

    fn partitioned(&self) -> bool {
        self.partitioned.load(Ordering::Acquire)
    }
}

/// Maps a typed engine/replication error to its wire response. Fencing
/// and quorum errors keep their dedicated opcodes so clients can react
/// without string matching; everything else degrades to `Err(text)`.
fn error_response(e: &Error) -> Response {
    match e {
        Error::QuorumLost { have, need } => Response::QuorumLost {
            have: *have as u32,
            need: *need as u32,
        },
        Error::StaleEpoch { epoch, hint } => Response::StaleEpoch {
            epoch: *epoch,
            hint: hint.clone(),
        },
        other => Response::Err(other.to_string()),
    }
}

/// A running TCP front end over any [`KvEngine`] (a single engine, a
/// [`ShardRouter`](crate::ShardRouter), or a baseline).
pub struct KvServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl KvServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the listener cannot bind.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<dyn KvEngine>,
        opts: ServerOptions,
    ) -> Result<KvServer> {
        KvServer::start_inner(addr, engine, opts, None)
    }

    /// Like [`KvServer::start`] but with a replication role: a leader
    /// serves `ReplSubscribe` streams and `SnapshotFetch`; a follower
    /// refuses mutations with `NotLeader` until
    /// [`KvServer::promote_to_leader`].
    ///
    /// Installing the replicator as the engine's commit sink
    /// (`MioDb::set_commit_sink`) is the caller's job — the server only
    /// ships what the engine publishes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the listener cannot bind.
    pub fn start_replicated<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<dyn KvEngine>,
        opts: ServerOptions,
        repl: ReplConfig,
    ) -> Result<KvServer> {
        KvServer::start_inner(addr, engine, opts, Some(repl))
    }

    fn start_inner<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<dyn KvEngine>,
        opts: ServerOptions,
        repl: Option<ReplConfig>,
    ) -> Result<KvServer> {
        let listener = TcpListener::bind(addr).map_err(Error::Io)?;
        listener.set_nonblocking(true).map_err(Error::Io)?;
        let local_addr = listener.local_addr().map_err(Error::Io)?;
        let replication_enabled = repl.is_some();
        let (role, advertised_addr, applied, follower_dead_timeout, replicator, snapshot) =
            match repl {
                None => (
                    Arc::new(RoleState::new_leader(0)),
                    String::new(),
                    None,
                    Duration::from_secs(3),
                    None,
                    None,
                ),
                Some(c) => (
                    c.role,
                    c.advertised_addr,
                    c.applied,
                    c.follower_dead_timeout,
                    c.replicator,
                    c.snapshot,
                ),
            };
        // A leader's hint is its own dialable address, so probes can
        // recognise it as a live leader first-hand.
        if role.is_leader() && !advertised_addr.is_empty() {
            role.set_leader_hint(&advertised_addr);
        }
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
            telemetry: ServiceTelemetry::new(),
            shutdown: AtomicBool::new(false),
            opts,
            role,
            replication_enabled,
            replicator,
            snapshot,
            applied,
            advertised_addr,
            follower_dead_timeout,
            partitioned: AtomicBool::new(false),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = std::thread::Builder::new()
            .name("miodb-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_handlers))
            .map_err(Error::Io)?;
        Ok(KvServer {
            shared,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
            handlers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connection gauges and per-opcode latency histograms.
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.shared.telemetry
    }

    /// The served engine (a clone of the current slot — the engine can be
    /// swapped by [`KvServer::replace_engine`] during a snapshot
    /// re-bootstrap).
    pub fn engine(&self) -> Arc<dyn KvEngine> {
        self.shared.engine()
    }

    /// Swaps the served engine in place (snapshot re-bootstrap on a
    /// follower). In-flight requests finish against the engine they
    /// started with; subsequent requests see the new one.
    pub fn replace_engine(&self, engine: Arc<dyn KvEngine>) {
        *self.shared.engine.write() = engine;
    }

    /// Current replication role (plain servers are always leaders).
    pub fn is_leader(&self) -> bool {
        self.shared.leader()
    }

    /// The shared role/epoch state.
    pub fn role(&self) -> &Arc<RoleState> {
        &self.shared.role
    }

    /// Failover: flips a follower into a leader in place at a fresh
    /// epoch. New mutations are accepted immediately; the caller should
    /// have drained the old leader's stream first
    /// ([`miodb_repl::Follower::promote`]). Also fences the replication
    /// log base at the engine's applied offset: subscribers behind it
    /// must snapshot-catch-up, since this node's log never held those
    /// records and cannot prove their prefix.
    pub fn promote_to_leader(&self) {
        let epoch = self.shared.role.epoch() + 1;
        self.shared.role.become_leader(epoch);
        if !self.shared.advertised_addr.is_empty() {
            self.shared.role.set_leader_hint(&self.shared.advertised_addr);
        } else {
            self.shared.role.set_leader_hint("");
        }
        if let Some(r) = &self.shared.replicator {
            r.set_base(self.shared.applied_seq());
        }
    }

    /// Chaos hook: simulate this node being cut off from its peers.
    /// While partitioned, inter-node opcodes (`ReplSubscribe`,
    /// `ReplVote`, `SnapshotFetch`) are dropped without a response and
    /// active subscriber streams are severed; ordinary client traffic is
    /// still served (that asymmetry is what makes a partitioned
    /// quorum-level leader answer `QuorumLost`).
    pub fn set_partitioned(&self, partitioned: bool) {
        self.shared.partitioned.store(partitioned, Ordering::Release);
    }

    /// Whether the partition chaos hook is engaged.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned()
    }

    /// The replication hub, when started with one.
    pub fn replicator(&self) -> Option<&Arc<Replicator>> {
        self.shared.replicator.as_ref()
    }

    /// Stops accepting, lets every handler finish its in-flight requests,
    /// and joins all server threads. Responses for requests already read
    /// are written and flushed before their connections close. Idempotent.
    ///
    /// Closing the engine (draining the commit queue and flushing
    /// MemTables) is the owner's job afterwards — e.g.
    /// [`ShardRouter::close`](crate::ShardRouter::close).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        let drained: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock());
        for t in drained {
            let _ = t.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Mutex<Vec<JoinHandle<()>>>,
) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.telemetry.active_connections() >= shared.opts.max_connections as u64 {
                    refuse(stream, shared);
                    continue;
                }
                shared.telemetry.conn_opened();
                let conn_shared = Arc::clone(shared);
                match std::thread::Builder::new()
                    .name("miodb-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared);
                        conn_shared.telemetry.conn_closed();
                    }) {
                    Ok(t) => handlers.lock().push(t),
                    Err(_) => shared.telemetry.conn_closed(),
                }
            }
            Err(e) if proto::is_timeout(&e) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back off.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Answers an over-limit connection with one `Err` frame and drops it.
fn refuse(stream: TcpStream, shared: &Shared) {
    shared.telemetry.conn_refused();
    let mut w = BufWriter::new(stream);
    let resp = Response::Err("server at connection limit".to_string());
    let _ = proto::write_response(&mut w, 0, Opcode::Get, &resp);
    let _ = w.flush();
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        match proto::read_frame(&mut reader) {
            Ok(None) => break, // clean EOF
            Ok(Some(frame)) => {
                match serve_frame(&frame, shared, &mut writer) {
                    FrameOutcome::Continue => {}
                    FrameOutcome::Close => break,
                    // The connection stops being request/response and
                    // becomes a replication push stream until it dies.
                    FrameOutcome::StartStream { id, from } => {
                        serve_repl_stream(id, from, reader, writer, shared);
                        return;
                    }
                }
                // Pipelining: only pay the flush syscall once the client
                // has no further buffered frame waiting.
                if reader.buffer().is_empty() && writer.flush().is_err() {
                    break;
                }
            }
            // Idle between frames: flush anything pending, poll shutdown.
            Err(Error::Io(ref e)) if proto::is_timeout(e) => {
                if writer.flush().is_err() || shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(Error::Io(_)) => break,
            // Corruption (bad CRC/version/length): the stream can no
            // longer be trusted to be frame-aligned — report and close.
            Err(e) => {
                shared.telemetry.protocol_error();
                let resp = Response::Err(format!("protocol error: {e}"));
                let _ = proto::write_response(&mut writer, 0, Opcode::Get, &resp);
                break;
            }
        }
    }
    let _ = writer.flush();
}

/// What `serve_frame` decided about the connection's future.
enum FrameOutcome {
    /// Keep reading requests.
    Continue,
    /// Close the connection.
    Close,
    /// Convert the connection into a replication push stream, resuming
    /// after `from`.
    StartStream { id: u32, from: u64 },
}

/// Opcodes exchanged between group members (not clients): these are what
/// a simulated partition drops.
fn is_inter_node(opcode: u8) -> bool {
    matches!(
        Opcode::from_u8(opcode),
        Some(Opcode::ReplSubscribe | Opcode::ReplAck | Opcode::ReplVote | Opcode::SnapshotFetch)
    )
}

/// Decodes and executes one frame. Decode failure after a structurally
/// valid frame keeps the connection open — framing is still aligned.
fn serve_frame<W: Write>(frame: &Frame, shared: &Shared, writer: &mut W) -> FrameOutcome {
    // Injected stall: a `Latency` policy sleeps inside `hit`, holding this
    // connection's pipeline while every other connection keeps serving.
    let _ = fault::hit(fault::points::SERVER_REQUEST_STALL);
    // Injected drop: close the connection without responding — the client
    // must treat an in-flight mutation as ambiguous (`MaybeApplied`) and
    // reconnect. Other connections are unaffected.
    if fault::hit(fault::points::SERVER_CONN_DROP).is_some() {
        return FrameOutcome::Close;
    }
    // Simulated partition: peer traffic vanishes mid-network, exactly as
    // a real partition would look — no refusal frame, just silence.
    if shared.partitioned() && is_inter_node(frame.opcode) {
        return FrameOutcome::Close;
    }
    let started = Instant::now();
    shared.telemetry.request_begin();
    // Adopt the frame's wire trace context so engine-internal spans (and
    // the response frame header) join the client's trace. Both guards
    // live until after the response is written.
    let _ctx = (frame.sampled && frame.trace_id != 0 && trace::is_enabled()).then(|| {
        trace::with_ctx(TraceCtx {
            trace_id: frame.trace_id,
            span_id: 0,
            sampled: true,
        })
    });
    let mut srv_span = trace::span(SpanKind::SrvRequest);
    srv_span.annotate(u64::from(frame.opcode));
    let decoded = {
        let _d = trace::span(SpanKind::SrvDecode);
        Request::decode(frame.opcode, &frame.body)
    };
    let (op, resp) = match decoded {
        // Subscribe handshake: answered from the stream handler (it needs
        // the log bounds and a registered subscriber id).
        Ok(Request::ReplSubscribe { from, epoch }) => {
            shared
                .telemetry
                .request_end(Opcode::ReplSubscribe, started.elapsed().as_nanos() as u64);
            // A subscriber presenting a newer epoch fences us: somewhere
            // an election we missed has concluded.
            if epoch > shared.role.epoch() {
                shared.role.observe_epoch(epoch, "");
            }
            if shared.leader() && shared.replicator.is_some() {
                return FrameOutcome::StartStream { id: frame.id, from };
            }
            let resp = if shared.role.is_deposed() {
                shared.stale_epoch()
            } else if !shared.replication_enabled {
                Response::Err("replication not enabled".to_string())
            } else {
                shared.not_leader()
            };
            return respond(writer, frame.id, Opcode::ReplSubscribe, &resp);
        }
        // Acks are fire-and-forget (no response frame); outside a
        // subscriber stream there is nothing to credit one to — but the
        // epoch on one still fences.
        Ok(Request::ReplAck { epoch, .. }) => {
            shared
                .telemetry
                .request_end(Opcode::ReplAck, started.elapsed().as_nanos() as u64);
            if epoch > shared.role.epoch() {
                shared.role.observe_epoch(epoch, "");
            }
            return FrameOutcome::Continue;
        }
        Ok(req) => {
            let op = req.opcode();
            let _e = trace::span(SpanKind::SrvExecute);
            (op, execute(&req, shared))
        }
        Err(e) => {
            shared.telemetry.protocol_error();
            // An unknown opcode gets a typed in-band refusal and the
            // connection stays usable — framing is still aligned, so an
            // older server probed by a newer client degrades gracefully.
            let msg = if Opcode::from_u8(frame.opcode).is_none() {
                format!("unsupported opcode {:#x}", frame.opcode)
            } else {
                format!("bad request: {e}")
            };
            (Opcode::Get, Response::Err(msg))
        }
    };
    shared
        .telemetry
        .request_end(op, started.elapsed().as_nanos() as u64);
    respond(writer, frame.id, op, &resp)
}

fn respond<W: Write>(writer: &mut W, id: u32, op: Opcode, resp: &Response) -> FrameOutcome {
    if proto::write_response(writer, id, op, resp).is_ok() {
        FrameOutcome::Continue
    } else {
        FrameOutcome::Close
    }
}

fn execute(req: &Request, shared: &Shared) -> Response {
    let engine = shared.engine();
    // Non-leaders refuse mutations *before* any engine work: the request
    // is provably not applied, so the client's redirect-and-retry is
    // always safe (no duplicate-write ambiguity, unlike a dropped
    // connection). A *deposed* leader answers the typed `StaleEpoch` —
    // the distinction matters: `NotLeader` means "follow the hint",
    // `StaleEpoch` means "your leader view is stale, refresh it".
    if matches!(
        req,
        Request::Put { .. } | Request::Delete { .. } | Request::Batch { .. }
    ) {
        if shared.role.is_deposed() {
            return shared.stale_epoch();
        }
        if !shared.leader() {
            return shared.not_leader();
        }
        // Quorum-level admission: a leader that cannot possibly reach a
        // majority refuses typed rather than accepting a write that
        // could never quorum-ack (the partitioned-leader case).
        if let Some(r) = &shared.replicator {
            if let Err(e) = r.admit_write() {
                return error_response(&e);
            }
        }
    }
    let result = match req {
        Request::Get { key } => engine.get(key).map(Response::Value),
        Request::Put { key, value } => engine.put(key, value).map(|()| Response::Ok),
        Request::Delete { key } => engine.delete(key).map(|()| Response::Ok),
        Request::Scan { start, limit } => {
            engine.scan(start, *limit as usize).map(Response::Entries)
        }
        Request::Batch { ops } => ops
            .iter()
            .try_for_each(|(key, value, kind)| match kind {
                OpKind::Put => engine.put(key, value),
                OpKind::Delete => engine.delete(key),
            })
            .map(|()| Response::Ok),
        Request::Stats => {
            let mut text = engine.metrics_text();
            text.push_str(&shared.telemetry.render_prometheus());
            if let Some(replicator) = &shared.replicator {
                text.push_str(&replicator.render_prometheus());
            }
            Ok(Response::Stats(text))
        }
        // Drains every span buffered so far (client spans too when the
        // tracer is process-global, as in netbench) as Chrome trace JSON.
        Request::TraceDump => Ok(Response::Trace(trace::to_chrome_json(&trace::drain()))),
        Request::SnapshotFetch => match &shared.snapshot {
            Some(produce) => produce().map(Response::Snapshot),
            None => Ok(Response::Err("snapshot serving not configured".to_string())),
        },
        // Election traffic: probes (epoch 0) report status, ballots go
        // through the one-vote-per-epoch gate. A deposed-by-ballot leader
        // steps down inside `consider_vote` before the candidate's first
        // write can race it.
        Request::ReplVote {
            epoch,
            last_seq,
            candidate,
        } => {
            if !shared.replication_enabled {
                Ok(Response::Err("replication not enabled".to_string()))
            } else {
                let my_seq = shared.applied_seq();
                let granted = shared.role.consider_vote(
                    *epoch,
                    *last_seq,
                    candidate,
                    my_seq,
                    &shared.advertised_addr,
                );
                Ok(Response::Vote {
                    granted,
                    epoch: shared.role.epoch(),
                    last_seq: my_seq,
                    leader_live: shared.role.leader_live(),
                    leader_hint: shared.role.leader_hint(),
                })
            }
        }
        // Handled in serve_frame before execute; kept for exhaustiveness.
        Request::ReplSubscribe { .. } | Request::ReplAck { .. } => Ok(Response::Err(
            "replication opcode outside stream handshake".to_string(),
        )),
    };
    result.unwrap_or_else(|e| error_response(&e))
}

/// Runs a subscriber connection after the `ReplSubscribe` handshake: this
/// thread pushes epoch-stamped `ReplRecords` frames (fed from the
/// replication log, with heartbeats when idle) while a companion thread
/// reads `ReplAck` frames off the same socket. Every ack — heartbeat acks
/// included — feeds the follower failure detector and the fencing check.
/// Ends on follower hangup, follower death (silence past the deadline),
/// deposition (an ack or ballot carried a newer epoch — the final frame
/// is then a `StaleEpoch` goodbye), shutdown, partition, log truncation
/// or an injected `repl.stream.drop`.
fn serve_repl_stream(
    id: u32,
    from: u64,
    mut reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
    shared: &Shared,
) {
    let Some(replicator) = shared.replicator.clone() else {
        return;
    };
    let (log_start, last) = replicator.subscribe_bounds();
    let hello = Response::ReplSubscribed {
        log_start,
        last,
        epoch: shared.role.epoch(),
    };
    if proto::write_response(&mut writer, id, Opcode::ReplSubscribe, &hello).is_err()
        || writer.flush().is_err()
    {
        return;
    }
    let sub_id = replicator.register_subscriber();
    let stop = Arc::new(AtomicBool::new(false));

    // Ack reader: same socket, opposite direction. Exits when the
    // follower hangs up, or polls `stop` at its read timeout after the
    // sender below ends the stream.
    let ack_stop = Arc::clone(&stop);
    let ack_replicator = Arc::clone(&replicator);
    let ack_role = Arc::clone(&shared.role);
    let ack_thread = std::thread::Builder::new()
        .name("miodb-repl-ack".to_string())
        .spawn(move || {
            loop {
                match proto::read_frame(&mut reader) {
                    Ok(Some(frame)) => {
                        if let Ok(Request::ReplAck { offset, epoch }) =
                            Request::decode(frame.opcode, &frame.body)
                        {
                            // Fencing: a follower that voted in an
                            // election we missed reports the new epoch
                            // here; observing it deposes this leader and
                            // the sender loop below winds the stream down.
                            if epoch > ack_role.epoch() {
                                ack_role.observe_epoch(epoch, "");
                            }
                            ack_replicator.record_ack(sub_id, offset);
                        }
                    }
                    Ok(None) => break,
                    Err(Error::Io(ref e)) if proto::is_timeout(e) => {
                        if ack_stop.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            ack_stop.store(true, Ordering::Release);
        })
        .ok();

    let mut cursor = from;
    loop {
        if stop.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Deposed mid-stream: say goodbye with the typed frame so the
        // follower learns the fence even before it finds the new leader.
        if !shared.leader() {
            let _ = proto::write_response(&mut writer, 0, Opcode::ReplRecords, &shared.stale_epoch());
            let _ = writer.flush();
            break;
        }
        // Simulated partition: the stream just dies, no goodbye.
        if shared.partitioned() {
            break;
        }
        // Follower failure detection: acks (heartbeat acks included)
        // arrive at least every poll interval from a live follower;
        // silence past the deadline drops it from the quorum set.
        if shared
            .replication_enabled
            .then(|| replicator.ack_silent_for(sub_id))
            .flatten()
            .is_some_and(|silent| silent >= shared.follower_dead_timeout)
        {
            break;
        }
        // Injected stream drop: the subscriber connection dies without a
        // goodbye; the follower reconnects and resumes from its applied
        // offset.
        if fault::hit(fault::points::REPL_STREAM_DROP).is_some() {
            break;
        }
        let fetched = replicator.fetch_after(cursor, MAX_REPL_FETCH_BYTES, REPL_POLL);
        if fetched.truncated {
            let resp = Response::Err("replication log truncated; snapshot required".to_string());
            let _ = proto::write_response(&mut writer, 0, Opcode::ReplRecords, &resp);
            let _ = writer.flush();
            break;
        }
        let batches: Vec<ReplBatch> = fetched
            .entries
            .iter()
            .map(|e| ReplBatch {
                seq_first: e.seq_first,
                seq_last: e.seq_last,
                bytes: e.bytes.as_ref().clone(),
            })
            .collect();
        if let Some(tail) = batches.last() {
            cursor = tail.seq_last;
        }
        // An empty batch list is the heartbeat.
        let frame = Response::ReplRecords {
            epoch: shared.role.epoch(),
            batches,
        };
        if proto::write_response(&mut writer, 0, Opcode::ReplRecords, &frame).is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
    stop.store(true, Ordering::Release);
    drop(writer);
    if let Some(t) = ack_thread {
        let _ = t.join();
    }
    replicator.deregister_subscriber(sub_id);
}
