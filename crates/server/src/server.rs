//! Thread-per-connection TCP server speaking the MioDB wire protocol.
//!
//! Design (§9 of DESIGN.md):
//!
//! - **Thread per connection.** The engine's write pipeline already batches
//!   concurrent writers into group commits, so handler threads map directly
//!   onto the concurrency the engine wants — no user-space scheduler.
//! - **Pipelining.** A handler decodes frames as fast as they arrive and
//!   answers strictly in order. Responses accumulate in a per-connection
//!   `BufWriter` and are flushed only when the read side has no buffered
//!   frame left, so a burst of N pipelined requests costs one syscall out.
//! - **Shutdown.** Handlers block in `read_frame` with a short read
//!   timeout; a timeout *between* frames is the poll point for the shutdown
//!   flag. In-flight requests always finish and their responses are flushed
//!   before the handler exits — [`KvServer::shutdown`] then joins every
//!   thread, so it returns only once the connection set has drained.
//! - **Backpressure.** Past `max_connections`, an accept is answered with a
//!   single `Err` frame and closed; clients retry elsewhere or back off.

use miodb_common::proto::{self, Frame, Opcode, Request, Response};
use miodb_common::trace::{self, SpanKind, TraceCtx};
use miodb_common::{fault, Error, KvEngine, OpKind, Result, ServiceTelemetry};
use parking_lot::Mutex;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum simultaneously open client connections; further accepts are
    /// refused with an `Err` frame.
    pub max_connections: usize,
    /// Read timeout used as the shutdown poll interval between frames.
    pub read_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            max_connections: 64,
            read_timeout: Duration::from_millis(50),
        }
    }
}

struct Shared {
    engine: Arc<dyn KvEngine>,
    telemetry: ServiceTelemetry,
    shutdown: AtomicBool,
    opts: ServerOptions,
}

/// A running TCP front end over any [`KvEngine`] (a single engine, a
/// [`ShardRouter`](crate::ShardRouter), or a baseline).
pub struct KvServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl KvServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the listener cannot bind.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<dyn KvEngine>,
        opts: ServerOptions,
    ) -> Result<KvServer> {
        let listener = TcpListener::bind(addr).map_err(Error::Io)?;
        listener.set_nonblocking(true).map_err(Error::Io)?;
        let local_addr = listener.local_addr().map_err(Error::Io)?;
        let shared = Arc::new(Shared {
            engine,
            telemetry: ServiceTelemetry::new(),
            shutdown: AtomicBool::new(false),
            opts,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = std::thread::Builder::new()
            .name("miodb-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_handlers))
            .map_err(Error::Io)?;
        Ok(KvServer {
            shared,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
            handlers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connection gauges and per-opcode latency histograms.
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.shared.telemetry
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<dyn KvEngine> {
        &self.shared.engine
    }

    /// Stops accepting, lets every handler finish its in-flight requests,
    /// and joins all server threads. Responses for requests already read
    /// are written and flushed before their connections close. Idempotent.
    ///
    /// Closing the engine (draining the commit queue and flushing
    /// MemTables) is the owner's job afterwards — e.g.
    /// [`ShardRouter::close`](crate::ShardRouter::close).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        let drained: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock());
        for t in drained {
            let _ = t.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Mutex<Vec<JoinHandle<()>>>,
) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.telemetry.active_connections() >= shared.opts.max_connections as u64 {
                    refuse(stream, shared);
                    continue;
                }
                shared.telemetry.conn_opened();
                let conn_shared = Arc::clone(shared);
                match std::thread::Builder::new()
                    .name("miodb-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared);
                        conn_shared.telemetry.conn_closed();
                    }) {
                    Ok(t) => handlers.lock().push(t),
                    Err(_) => shared.telemetry.conn_closed(),
                }
            }
            Err(e) if proto::is_timeout(&e) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back off.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Answers an over-limit connection with one `Err` frame and drops it.
fn refuse(stream: TcpStream, shared: &Shared) {
    shared.telemetry.conn_refused();
    let mut w = BufWriter::new(stream);
    let resp = Response::Err("server at connection limit".to_string());
    let _ = proto::write_response(&mut w, 0, Opcode::Get, &resp);
    let _ = w.flush();
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        match proto::read_frame(&mut reader) {
            Ok(None) => break, // clean EOF
            Ok(Some(frame)) => {
                if !serve_frame(&frame, shared, &mut writer) {
                    break;
                }
                // Pipelining: only pay the flush syscall once the client
                // has no further buffered frame waiting.
                if reader.buffer().is_empty() && writer.flush().is_err() {
                    break;
                }
            }
            // Idle between frames: flush anything pending, poll shutdown.
            Err(Error::Io(ref e)) if proto::is_timeout(e) => {
                if writer.flush().is_err() || shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(Error::Io(_)) => break,
            // Corruption (bad CRC/version/length): the stream can no
            // longer be trusted to be frame-aligned — report and close.
            Err(e) => {
                shared.telemetry.protocol_error();
                let resp = Response::Err(format!("protocol error: {e}"));
                let _ = proto::write_response(&mut writer, 0, Opcode::Get, &resp);
                break;
            }
        }
    }
    let _ = writer.flush();
}

/// Decodes and executes one frame; returns `false` if the connection must
/// close (decode failure after a structurally valid frame keeps it open —
/// framing is still aligned).
fn serve_frame<W: Write>(frame: &Frame, shared: &Shared, writer: &mut W) -> bool {
    // Injected stall: a `Latency` policy sleeps inside `hit`, holding this
    // connection's pipeline while every other connection keeps serving.
    let _ = fault::hit(fault::points::SERVER_REQUEST_STALL);
    // Injected drop: close the connection without responding — the client
    // must treat an in-flight mutation as ambiguous (`MaybeApplied`) and
    // reconnect. Other connections are unaffected.
    if fault::hit(fault::points::SERVER_CONN_DROP).is_some() {
        return false;
    }
    let started = Instant::now();
    shared.telemetry.request_begin();
    // Adopt the frame's wire trace context so engine-internal spans (and
    // the response frame header) join the client's trace. Both guards
    // live until after the response is written.
    let _ctx = (frame.sampled && frame.trace_id != 0 && trace::is_enabled()).then(|| {
        trace::with_ctx(TraceCtx {
            trace_id: frame.trace_id,
            span_id: 0,
            sampled: true,
        })
    });
    let mut srv_span = trace::span(SpanKind::SrvRequest);
    srv_span.annotate(u64::from(frame.opcode));
    let decoded = {
        let _d = trace::span(SpanKind::SrvDecode);
        Request::decode(frame.opcode, &frame.body)
    };
    let (op, resp) = match decoded {
        Ok(req) => {
            let op = req.opcode();
            let _e = trace::span(SpanKind::SrvExecute);
            (op, execute(&req, shared))
        }
        Err(e) => {
            shared.telemetry.protocol_error();
            (Opcode::Get, Response::Err(format!("bad request: {e}")))
        }
    };
    shared
        .telemetry
        .request_end(op, started.elapsed().as_nanos() as u64);
    proto::write_response(writer, frame.id, op, &resp).is_ok()
}

fn execute(req: &Request, shared: &Shared) -> Response {
    let engine = &shared.engine;
    let result = match req {
        Request::Get { key } => engine.get(key).map(Response::Value),
        Request::Put { key, value } => engine.put(key, value).map(|()| Response::Ok),
        Request::Delete { key } => engine.delete(key).map(|()| Response::Ok),
        Request::Scan { start, limit } => {
            engine.scan(start, *limit as usize).map(Response::Entries)
        }
        Request::Batch { ops } => ops
            .iter()
            .try_for_each(|(key, value, kind)| match kind {
                OpKind::Put => engine.put(key, value),
                OpKind::Delete => engine.delete(key),
            })
            .map(|()| Response::Ok),
        Request::Stats => {
            let mut text = engine.metrics_text();
            text.push_str(&shared.telemetry.render_prometheus());
            Ok(Response::Stats(text))
        }
        // Drains every span buffered so far (client spans too when the
        // tracer is process-global, as in netbench) as Chrome trace JSON.
        Request::TraceDump => Ok(Response::Trace(trace::to_chrome_json(&trace::drain()))),
    };
    result.unwrap_or_else(|e| Response::Err(e.to_string()))
}
