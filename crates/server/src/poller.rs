//! Minimal epoll readiness poller used by the event-driven service layer.
//!
//! The workspace builds offline with no libc/mio/tokio crates, so this
//! module declares the handful of syscall wrappers it needs directly
//! against the C library the standard library already links. Everything
//! is level-triggered: the event loop re-arms nothing and simply retries
//! until `WouldBlock`, which keeps the connection state machine easy to
//! reason about (and to test).

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Readable readiness (level-triggered).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

const EFD_NONBLOCK: i32 = 0o4000;
const EFD_CLOEXEC: i32 = 0o2000000;

/// `struct epoll_event` from the kernel UAPI. Packed on x86_64 (the
/// kernel declares it `__attribute__((packed))` there), natural layout
/// elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

/// Raises the process's open-file soft limit toward `want` (capped at the
/// hard limit) and returns the resulting soft limit. Needed by the
/// connection-sweep benchmark and the 1k-connection tests, which hold two
/// descriptors per connection (client and server side) in one process.
pub fn raise_nofile_limit(want: u64) -> u64 {
    unsafe {
        let mut lim = Rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim.rlim_cur >= want {
            return lim.rlim_cur;
        }
        if want > lim.rlim_max {
            // Privileged processes (CAP_SYS_RESOURCE) may raise the hard
            // cap too; unprivileged ones fall back to it below.
            let raised = Rlimit {
                rlim_cur: want,
                rlim_max: want,
            };
            if setrlimit(RLIMIT_NOFILE, &raised) == 0 {
                return want;
            }
        }
        let target = want.min(lim.rlim_max);
        let new = Rlimit {
            rlim_cur: target,
            rlim_max: lim.rlim_max,
        };
        if setrlimit(RLIMIT_NOFILE, &new) == 0 {
            target
        } else {
            lim.rlim_cur
        }
    }
}

/// One epoll instance. Registered descriptors carry a `u64` token that
/// comes back with each readiness event.
pub(crate) struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub(crate) fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let ev_ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev
        };
        if unsafe { epoll_ctl(self.epfd, op, fd, ev_ptr) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, appending `(token, events)` pairs to `out`
    /// (cleared first). `None` blocks indefinitely.
    pub(crate) fn wait(
        &self,
        out: &mut Vec<(u64, u32)>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        out.clear();
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        let ms = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX),
        };
        let n = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &events[..n as usize] {
            // Copy out of the (possibly packed) struct before use.
            let (data, evs) = (ev.data, ev.events);
            out.push((data, evs));
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// An eventfd used to wake a polling shard from another thread (mailbox
/// delivery, shutdown). Registered with the shard's `Poller` like any
/// other descriptor.
pub(crate) struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    pub(crate) fn new() -> io::Result<WakeFd> {
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the owning shard; safe to call from any thread, idempotent
    /// until the shard drains.
    pub(crate) fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        unsafe {
            // A full counter (EAGAIN) already guarantees a pending wake.
            let _ = write(self.fd, one.as_ptr(), one.len());
        }
    }

    /// Clears the wake counter so level-triggered polling quiesces.
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            let _ = read(self.fd, buf.as_mut_ptr(), buf.len());
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_reports_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 7, EPOLLIN | EPOLLRDHUP)
            .unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "spurious readiness: {events:?}");

        client.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, 7);
        assert_ne!(events[0].1 & EPOLLIN, 0);

        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn wakefd_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let wake = WakeFd::new().unwrap();
        poller.add(wake.fd(), u64::MAX, EPOLLIN).unwrap();

        let mut events = Vec::new();
        wake.wake();
        wake.wake();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, u64::MAX);

        wake.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "wake not drained: {events:?}");
    }

    #[test]
    fn nofile_limit_can_be_queried() {
        let got = raise_nofile_limit(1024);
        assert!(got >= 1024 || got > 0);
    }
}
