//! The self-healing replication group member: one engine + server +
//! follower loop + election supervisor, composed into a [`ReplNode`].
//!
//! A node is always in one of two modes, tracked by the shared
//! [`RoleState`]:
//!
//! - **Leader**: the engine's commit sink publishes into the
//!   [`Replicator`], subscriber streams ship records, and the supervisor
//!   watches for isolation — a leader that lost contact with a majority
//!   probes its peers and deposes itself when it discovers a successor's
//!   epoch (the split-brain heal path).
//! - **Follower**: a [`Follower`] apply loop streams from the believed
//!   leader. The supervisor reacts to how that loop ends: `LeaderDead`
//!   runs a [`try_elect`] round (with rank-staggered jittered retries),
//!   `StaleLeader` re-follows the newly learned leader, `NeedsSnapshot`
//!   performs the snapshot re-bootstrap *itself* — fetch, restore into a
//!   fresh engine, swap it into the server, resume streaming — with
//!   exponential backoff under fault injection.
//!
//! Chaos hooks ([`ReplNode::kill`], [`ReplNode::partition`]) model the
//! two failure shapes the tests drive: process death (server + loops stop
//! answering, engine state survives for a later restart) and a network
//! partition (peers unreachable, clients still served — the shape that
//! must degrade to `QuorumLost`, never silent acceptance).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use miodb_common::{AckLevel, KvEngine, ReplicationSink, Result, RoleState};
use miodb_core::{MioDb, MioOptions};
use miodb_repl::{
    bootstrap_from_leader, engine_snapshot_bytes, probe_peers, try_elect, ElectionOutcome,
    Follower, FollowerOptions, FollowerState, Replicator, ReplicatorOptions,
};
use parking_lot::Mutex;

use crate::server::{KvServer, ReplConfig, ServerOptions};

/// Produces engine options for (re)creating this node's engine — called
/// once at start and again on every snapshot re-bootstrap (each call
/// should name a fresh pool).
pub type EngineOptsFn = Arc<dyn Fn() -> MioOptions + Send + Sync>;

/// Group membership and identity for one [`ReplNode`].
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// This node's dialable address; also what it binds.
    pub self_addr: String,
    /// Every member's address, this node included.
    pub peers: Vec<String>,
    /// The member that starts as leader (epoch 1).
    pub initial_leader: String,
}

/// Tunables for a [`ReplNode`].
#[derive(Clone)]
pub struct NodeOptions {
    /// Engine options factory (fresh pool per call).
    pub engine_opts: EngineOptsFn,
    /// Write acknowledgement level when this node leads.
    pub ack_level: AckLevel,
    /// Semi-sync/quorum ack patience.
    pub ack_timeout: Duration,
    /// Replication log retention budget in bytes.
    pub retain_bytes: usize,
    /// Follower apply-loop tunables (including `leader_dead_timeout`).
    pub follower: FollowerOptions,
    /// Leader-side subscriber silence deadline.
    pub follower_dead_timeout: Duration,
    /// Per-RPC timeout for election probes and ballots.
    pub election_rpc_timeout: Duration,
    /// Server tunables.
    pub server: ServerOptions,
}

impl NodeOptions {
    /// Defaults around `engine_opts`, tuned for in-process tests
    /// (sub-second failure detection).
    pub fn new(engine_opts: EngineOptsFn) -> NodeOptions {
        NodeOptions {
            engine_opts,
            ack_level: AckLevel::Quorum,
            ack_timeout: Duration::from_secs(5),
            retain_bytes: 64 << 20,
            follower: FollowerOptions {
                read_timeout: Duration::from_millis(50),
                reconnect_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(200),
                leader_dead_timeout: Duration::from_millis(700),
            },
            follower_dead_timeout: Duration::from_millis(700),
            election_rpc_timeout: Duration::from_millis(250),
            server: ServerOptions::default(),
        }
    }
}

struct NodeInner {
    addr: String,
    peers: Vec<String>,
    opts: NodeOptions,
    engine: Mutex<Arc<MioDb>>,
    server: KvServer,
    replicator: Arc<Replicator>,
    role: Arc<RoleState>,
    follower: Mutex<Option<Follower>>,
    stop: AtomicBool,
    partitioned: AtomicBool,
    /// Completed snapshot re-bootstraps (observability + test assertions).
    bootstraps: AtomicU64,
    /// Elections this node has won.
    elections_won: AtomicU64,
}

/// One member of a self-healing replication group.
pub struct ReplNode {
    inner: Arc<NodeInner>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl ReplNode {
    /// Starts a group member with a fresh engine. The node binds
    /// `group.self_addr`, starts as leader iff it is `group.initial_leader`
    /// (epoch 1), and supervises itself from there.
    ///
    /// # Errors
    ///
    /// Returns engine-open and bind errors.
    pub fn start(group: &GroupConfig, opts: NodeOptions) -> Result<ReplNode> {
        let engine = Arc::new(MioDb::open((opts.engine_opts)())?);
        ReplNode::start_with_engine(engine, group, opts)
    }

    /// Like [`ReplNode::start`] but reusing an existing engine — the
    /// restart path: a killed node comes back with its surviving engine
    /// state and resumes from its `last_sequence` (already-applied
    /// records are never re-applied).
    ///
    /// # Errors
    ///
    /// Returns bind errors.
    pub fn start_with_engine(
        engine: Arc<MioDb>,
        group: &GroupConfig,
        opts: NodeOptions,
    ) -> Result<ReplNode> {
        let is_leader = group.initial_leader == group.self_addr;
        let role = Arc::new(if is_leader {
            RoleState::new_leader(1)
        } else {
            RoleState::new_follower(1, &group.initial_leader)
        });
        let replicator = Replicator::new(ReplicatorOptions {
            ack_level: opts.ack_level,
            semi_sync_timeout: opts.ack_timeout,
            retain_bytes: opts.retain_bytes,
            group_size: group.peers.len(),
        });
        if is_leader {
            engine.set_commit_sink(Some(replicator.clone() as Arc<dyn ReplicationSink>));
        } else {
            // Restart path: the engine may carry the commit sink from a
            // previous life as leader — a follower must not publish.
            engine.set_commit_sink(None);
        }
        let engine_slot = Arc::new(Mutex::new(Arc::clone(&engine)));
        let snap_slot = Arc::clone(&engine_slot);
        let applied_slot = Arc::clone(&engine_slot);
        let server = KvServer::start_replicated(
            group.self_addr.as_str(),
            Arc::clone(&engine) as Arc<dyn KvEngine>,
            opts.server.clone(),
            ReplConfig {
                replicator: Some(Arc::clone(&replicator)),
                snapshot: Some(Box::new(move || {
                    let db = Arc::clone(&snap_slot.lock());
                    engine_snapshot_bytes(&db)
                })),
                role: Arc::clone(&role),
                advertised_addr: group.self_addr.clone(),
                applied: Some(Box::new(move || {
                    let db = Arc::clone(&applied_slot.lock());
                    db.last_sequence()
                })),
                follower_dead_timeout: opts.follower_dead_timeout,
            },
        )?;
        let follower = if is_leader {
            None
        } else {
            Some(Follower::start_with_role(
                Arc::clone(&engine),
                &group.initial_leader,
                opts.follower.clone(),
                Some(Arc::clone(&role)),
            )?)
        };
        let inner = Arc::new(NodeInner {
            addr: group.self_addr.clone(),
            peers: group.peers.clone(),
            opts,
            engine: Mutex::new(engine),
            server,
            replicator,
            role,
            follower: Mutex::new(follower),
            stop: AtomicBool::new(false),
            partitioned: AtomicBool::new(false),
            bootstraps: AtomicU64::new(0),
            elections_won: AtomicU64::new(0),
        });
        // Keep the external engine slot (captured by the server closures)
        // in sync with the supervisor's swaps.
        let sup = Arc::clone(&inner);
        let slot = engine_slot;
        let supervisor = std::thread::Builder::new()
            .name(format!("miodb-node-{}", inner.addr))
            .spawn(move || sup.supervise(&slot))
            .map_err(miodb_common::Error::Io)?;
        Ok(ReplNode {
            inner,
            supervisor: Mutex::new(Some(supervisor)),
        })
    }

    /// This node's dialable address.
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// The shared role/epoch state.
    pub fn role(&self) -> &Arc<RoleState> {
        &self.inner.role
    }

    /// Whether this node currently believes it leads.
    pub fn is_leader(&self) -> bool {
        self.inner.role.is_leader()
    }

    /// The node's current engine (swapped on snapshot re-bootstrap).
    pub fn engine(&self) -> Arc<MioDb> {
        Arc::clone(&self.inner.engine.lock())
    }

    /// The replication hub.
    pub fn replicator(&self) -> &Arc<Replicator> {
        &self.inner.replicator
    }

    /// The node's server (telemetry, partition hook).
    pub fn server(&self) -> &KvServer {
        &self.inner.server
    }

    /// Completed snapshot re-bootstraps.
    pub fn bootstrap_count(&self) -> u64 {
        self.inner.bootstraps.load(Ordering::Relaxed)
    }

    /// Elections this node has won.
    pub fn elections_won(&self) -> u64 {
        self.inner.elections_won.load(Ordering::Relaxed)
    }

    /// Chaos: process death. The server stops answering, the loops stop,
    /// but engine state survives — restart with
    /// [`ReplNode::start_with_engine`].
    pub fn kill(&self) -> Arc<MioDb> {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(t) = self.supervisor.lock().take() {
            let _ = t.join();
        }
        if let Some(f) = self.inner.follower.lock().take() {
            f.stop();
        }
        self.inner.server.shutdown();
        Arc::clone(&self.inner.engine.lock())
    }

    /// Chaos: network partition. While engaged, this node's inter-node
    /// traffic is cut in both directions (its server drops peer opcodes;
    /// its own follower loop and elections are suspended) but client
    /// traffic is still served — the shape where a quorum-level leader
    /// must answer `QuorumLost` rather than accept unreplicatable writes.
    pub fn partition(&self, engaged: bool) {
        self.inner.server.set_partitioned(engaged);
        self.inner.partitioned.store(engaged, Ordering::Release);
        if engaged {
            // Outgoing direction: a partitioned node cannot stream from
            // the leader either.
            if let Some(f) = self.inner.follower.lock().take() {
                f.stop();
            }
        }
    }

    /// Whether the partition hook is engaged.
    pub fn is_partitioned(&self) -> bool {
        self.inner.partitioned.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop the supervisor, the apply loop and the
    /// server, then close the engine (flushing MemTables).
    ///
    /// # Errors
    ///
    /// Returns engine close errors.
    pub fn shutdown(&self) -> Result<()> {
        let engine = self.kill();
        engine.close()
    }
}

impl NodeInner {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Sleeps `d` in short slices so kill/partition stay responsive.
    fn nap(&self, d: Duration) {
        let until = Instant::now() + d;
        while Instant::now() < until && !self.stopped() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Deterministic per-node jitter in `0..range_ms`, varied by `salt`.
    fn jitter_ms(&self, salt: u64, range_ms: u64) -> u64 {
        let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in self.addr.bytes() {
            x = (x ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        x ^= x >> 33;
        x % range_ms.max(1)
    }

    fn applied_seq(&self) -> u64 {
        self.engine.lock().last_sequence()
    }

    /// The supervisor: reacts to role flips and terminal follower states
    /// until the node stops. `slot` mirrors the current engine for the
    /// server's snapshot/applied closures.
    fn supervise(&self, slot: &Mutex<Arc<MioDb>>) {
        let mut was_leader = self.role.is_leader();
        // When a leader lost its last quorum-relevant subscriber (probes
        // for a successor start after the detector deadline).
        let mut isolated_since: Option<Instant> = None;
        let mut election_attempt: u64 = 0;
        while !self.stopped() {
            if self.partitioned.load(Ordering::Acquire) {
                // A partitioned node can reach nobody: no elections, no
                // reconnects. Its clocks keep running so the moment the
                // partition heals it probes and discovers its fate.
                self.nap(Duration::from_millis(20));
                continue;
            }
            let leading = self.role.is_leader();
            if was_leader && !leading {
                // Deposed (a vote, ack or subscribe carried a newer
                // epoch): stop publishing, follow the successor.
                self.engine.lock().set_commit_sink(None);
                self.start_following();
            }
            was_leader = leading;
            if leading {
                isolated_since = self.leader_tick(isolated_since);
            } else {
                election_attempt = self.follower_tick(slot, election_attempt);
            }
            self.nap(Duration::from_millis(15));
        }
    }

    /// Leader-side supervision: watch for isolation and probe for a
    /// successor once isolated past the detector deadline. Returns the
    /// updated isolation clock.
    fn leader_tick(&self, isolated_since: Option<Instant>) -> Option<Instant> {
        let quorum_relevant = miodb_common::majority(self.peers.len()).saturating_sub(1);
        if quorum_relevant == 0 || self.replicator.subscriber_count() >= quorum_relevant {
            return None;
        }
        let since = isolated_since.unwrap_or_else(Instant::now);
        if since.elapsed() >= self.opts.follower_dead_timeout {
            // Long isolation: either the group is down (nothing to do) or
            // it moved on without us. Probing tells the difference — a
            // successor's higher epoch deposes us via `observe_epoch`.
            for p in probe_peers(&self.peers, &self.addr, self.opts.election_rpc_timeout) {
                if p.epoch > self.role.epoch() {
                    self.role.observe_epoch(p.epoch, &p.leader_hint);
                }
            }
        }
        Some(since)
    }

    /// Follower-side supervision: keep an apply loop running against the
    /// believed leader, elect when it is dead, re-bootstrap when it
    /// truncated past us. Returns the updated election attempt counter.
    fn follower_tick(&self, slot: &Mutex<Arc<MioDb>>, election_attempt: u64) -> u64 {
        let state = self.follower.lock().as_ref().map(|f| f.state());
        match state {
            Some(FollowerState::Connecting | FollowerState::Streaming) => 0,
            Some(FollowerState::LeaderDead) => self.run_election(election_attempt),
            Some(FollowerState::StaleLeader) | Some(FollowerState::Stopped) => {
                // The loop learned of (or lost) a leader; re-follow the
                // current hint, or elect if there is none.
                self.follower.lock().take();
                if self.role.leader_hint().is_empty() {
                    self.run_election(election_attempt)
                } else {
                    self.start_following();
                    0
                }
            }
            Some(FollowerState::NeedsSnapshot) => {
                self.follower.lock().take();
                self.rebootstrap(slot, election_attempt);
                0
            }
            None => {
                // No loop at all (fresh follower role, healed partition,
                // or a finished transition): follow or elect.
                if self.role.leader_hint().is_empty() || !self.role.leader_live() {
                    self.run_election(election_attempt)
                } else {
                    self.start_following();
                    0
                }
            }
        }
    }

    /// Starts (or restarts) the apply loop against the current hint.
    fn start_following(&self) {
        let hint = self.role.leader_hint();
        if hint.is_empty() || hint == self.addr {
            return;
        }
        let engine = Arc::clone(&self.engine.lock());
        // The loop observes frames, so mark the leader tentatively live;
        // its own detector will say otherwise.
        self.role.set_leader_live(true);
        if let Ok(f) = Follower::start_with_role(
            engine,
            &hint,
            self.opts.follower.clone(),
            Some(Arc::clone(&self.role)),
        ) {
            *self.follower.lock() = Some(f);
            // Re-joined as a clean follower: drop the StaleEpoch fence so
            // refused mutations redirect to the successor from here on.
            self.role.acknowledge_deposed();
        }
    }

    /// One staggered election round. Returns the next attempt counter
    /// (0 after a decisive outcome, incremented while contending).
    fn run_election(&self, attempt: u64) -> u64 {
        // Rank stagger + jitter: nodes dial elections at different times,
        // so the best-qualified one usually probes first and the rest
        // adopt it via Standby/FollowLeader instead of splitting votes.
        let delay = 20 + self.jitter_ms(attempt.wrapping_add(1), 60);
        self.nap(Duration::from_millis(delay));
        if self.stopped() || self.partitioned.load(Ordering::Acquire) || self.role.is_leader() {
            return 0;
        }
        let outcome = try_elect(
            &self.role,
            &self.addr,
            &self.peers,
            self.applied_seq(),
            self.opts.election_rpc_timeout,
        );
        match outcome {
            ElectionOutcome::Won { .. } => {
                self.become_group_leader();
                0
            }
            ElectionOutcome::FollowLeader { .. } => {
                self.follower.lock().take();
                self.start_following();
                0
            }
            ElectionOutcome::Standby => {
                self.nap(Duration::from_millis(40 + self.jitter_ms(attempt, 80)));
                attempt + 1
            }
            ElectionOutcome::NoQuorum => {
                // Majority unreachable: nothing can be decided. Stay a
                // follower (mutations answer NotLeader) and retry.
                self.nap(Duration::from_millis(100));
                attempt + 1
            }
        }
    }

    /// Post-win transition: fence the log base at our applied offset
    /// (subscribers behind it must snapshot — this node's log cannot
    /// prove the older prefix) and start publishing.
    fn become_group_leader(&self) {
        self.elections_won.fetch_add(1, Ordering::Relaxed);
        if let Some(f) = self.follower.lock().take() {
            f.stop();
        }
        let engine = Arc::clone(&self.engine.lock());
        self.replicator.set_base(engine.last_sequence());
        engine.set_commit_sink(Some(
            Arc::clone(&self.replicator) as Arc<dyn ReplicationSink>
        ));
    }

    /// Self-driven snapshot catch-up: fetch + restore into a fresh
    /// engine, swap it into the server and resume streaming. Backs off
    /// exponentially on (possibly injected) failure.
    fn rebootstrap(&self, slot: &Mutex<Arc<MioDb>>, election_attempt: u64) {
        let hint = self.role.leader_hint();
        if hint.is_empty() || hint == self.addr {
            return;
        }
        let mut backoff = Duration::from_millis(20);
        loop {
            if self.stopped() || self.partitioned.load(Ordering::Acquire) {
                return;
            }
            match bootstrap_from_leader(&hint, (self.opts.engine_opts)()) {
                Ok(db) => {
                    let db = Arc::new(db);
                    let old = std::mem::replace(&mut *self.engine.lock(), Arc::clone(&db));
                    *slot.lock() = Arc::clone(&db);
                    self.server
                        .replace_engine(Arc::clone(&db) as Arc<dyn KvEngine>);
                    let _ = old.close();
                    self.bootstraps.fetch_add(1, Ordering::Relaxed);
                    self.start_following();
                    return;
                }
                Err(_) => {
                    // Injected or real failure: retry with backoff. The
                    // leader may also have died — notice via its hint
                    // going stale on the next supervisor pass.
                    self.nap(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                    if !self.role.leader_live() && self.role.leader_hint() != hint {
                        // The group moved on mid-bootstrap; let the
                        // supervisor re-evaluate against the new leader.
                        return;
                    }
                    let _ = election_attempt;
                }
            }
        }
    }
}

impl Drop for ReplNode {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(t) = self.supervisor.lock().take() {
            let _ = t.join();
        }
        if let Some(f) = self.inner.follower.lock().take() {
            f.stop();
        }
        self.inner.server.shutdown();
    }
}
