//! Sharded network service layer for MioDB.
//!
//! Turns the in-process [`KvEngine`](miodb_common::KvEngine) crates into a
//! network service: [`ShardRouter`] hash-partitions the keyspace across N
//! independent engine instances (one commit queue, WAL and compactor set
//! each), and [`KvServer`] fronts any engine with the length-prefixed,
//! CRC-protected wire protocol from `miodb_common::proto` — event-driven
//! shard-per-core readiness loops with a worker pool, non-blocking
//! partial-frame I/O, in-order pipelining, bounded per-connection queues
//! with in-band backpressure, connection limits and graceful drain on
//! shutdown. See DESIGN.md §14. [`ReplNode`] composes a server with an
//! engine, a follower apply loop and an election supervisor into one
//! self-healing replication-group member (DESIGN.md §13).

#![deny(missing_docs)]

mod node;
mod poller;
mod server;
mod shard;

pub use node::{EngineOptsFn, GroupConfig, NodeOptions, ReplNode};
pub use poller::raise_nofile_limit;
pub use server::{AppliedFn, KvServer, ReplConfig, ServerOptions, SnapshotFn};
pub use shard::ShardRouter;
