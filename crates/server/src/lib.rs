//! Sharded network service layer for MioDB.
//!
//! Turns the in-process [`KvEngine`](miodb_common::KvEngine) crates into a
//! network service: [`ShardRouter`] hash-partitions the keyspace across N
//! independent engine instances (one commit queue, WAL and compactor set
//! each), and [`KvServer`] fronts any engine with the length-prefixed,
//! CRC-protected wire protocol from `miodb_common::proto` — thread per
//! connection, in-order pipelining, connection limits and graceful drain
//! on shutdown. See DESIGN.md §9. [`ReplNode`] composes a server with an
//! engine, a follower apply loop and an election supervisor into one
//! self-healing replication-group member (DESIGN.md §13).

#![deny(missing_docs)]

mod node;
mod server;
mod shard;

pub use node::{EngineOptsFn, GroupConfig, NodeOptions, ReplNode};
pub use server::{AppliedFn, KvServer, ReplConfig, ServerOptions, SnapshotFn};
pub use shard::ShardRouter;
