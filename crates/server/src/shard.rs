//! Hash-partitioned shard routing: one logical [`KvEngine`] over N
//! independent engine instances.
//!
//! Multi-core hosts scale past a single commit queue by running several
//! engines side by side, each with its own WAL, pmem pools and background
//! workers. The router hashes every key (CRC-32, the workspace's existing
//! integrity hash) to pick the owning shard; point operations touch one
//! shard, scans merge the per-shard sorted streams. Because the router is
//! itself a [`KvEngine`], the server, workloads and benchmarks can treat a
//! sharded MioDB exactly like a single instance — or shard a baseline for
//! apples-to-apples network benchmarks.

use miodb_common::crc32::crc32;
use miodb_common::trace::{self, SpanKind};
use miodb_common::{EngineReport, KvEngine, Result, ScanEntry, Stats};
use miodb_core::{MioDb, MioOptions};

/// N engines behind one hash-partitioned keyspace.
pub struct ShardRouter<E> {
    shards: Vec<E>,
    name: String,
}

impl<E> std::fmt::Debug for ShardRouter<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("name", &self.name)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<E: KvEngine> ShardRouter<E> {
    /// Wraps pre-built engines. Panics if `shards` is empty.
    pub fn new(shards: Vec<E>) -> ShardRouter<E> {
        assert!(!shards.is_empty(), "need at least one shard");
        let name = format!("Sharded({}x{})", shards[0].name(), shards.len());
        ShardRouter { shards, name }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        crc32(key) as usize % self.shards.len()
    }

    /// Direct access to the shard engines (tests, close hooks).
    pub fn shards(&self) -> &[E] {
        &self.shards
    }
}

impl ShardRouter<MioDb> {
    /// Opens `count` MioDB instances from a template (each shard gets a
    /// proportional slice of the pools via [`MioOptions::shard`]).
    ///
    /// # Errors
    ///
    /// Propagates configuration or allocation errors from any shard.
    pub fn open_miodb(template: &MioOptions, count: usize) -> Result<ShardRouter<MioDb>> {
        let count = count.max(1);
        let mut shards = Vec::with_capacity(count);
        for i in 0..count {
            shards.push(MioDb::open(template.shard(i, count))?);
        }
        Ok(ShardRouter::new(shards))
    }

    /// Gracefully closes every shard ([`MioDb::close`]): commit-queue
    /// groups drain through the write pipeline and MemTables flush, so no
    /// acknowledged write depends on WAL replay. Returns the first error
    /// but closes all shards regardless.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's close failure.
    pub fn close(&self) -> Result<()> {
        let mut first_err = None;
        for s in &self.shards {
            if let Err(e) = s.close() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<E: KvEngine> KvEngine for ShardRouter<E> {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.shards[self.shard_of(key)].put(key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.shards[self.shard_of(key)].get(key)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.shards[self.shard_of(key)].delete(key)
    }

    /// Cross-shard scan: every shard returns its own ascending prefix;
    /// merging by key restores a single global order (keys are unique
    /// across shards — the hash assigns each key one owner).
    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        let per_shard = {
            let mut fanout = trace::span(SpanKind::RouterFanout);
            fanout.annotate(self.shards.len() as u64);
            let mut per_shard = Vec::with_capacity(self.shards.len());
            for s in &self.shards {
                per_shard.push(s.scan(start, limit)?);
            }
            per_shard
        };
        let _m = trace::span(SpanKind::RouterMerge);
        Ok(merge_sorted(per_shard, limit))
    }

    fn wait_idle(&self) -> Result<()> {
        for s in &self.shards {
            s.wait_idle()?;
        }
        Ok(())
    }

    fn report(&self) -> EngineReport {
        let agg = Stats::new();
        let mut nvm_used = 0u64;
        let mut nvm_peak = 0u64;
        let mut tables: Vec<usize> = Vec::new();
        for s in &self.shards {
            let r = s.report();
            nvm_used += r.nvm_used_bytes;
            nvm_peak += r.nvm_peak_bytes;
            if tables.len() < r.tables_per_level.len() {
                tables.resize(r.tables_per_level.len(), 0);
            }
            for (t, v) in tables.iter_mut().zip(&r.tables_per_level) {
                *t += v;
            }
            agg.merge(&r.stats);
        }
        EngineReport {
            name: self.name.clone(),
            nvm_used_bytes: nvm_used,
            nvm_peak_bytes: nvm_peak,
            tables_per_level: tables,
            stats: agg.snapshot(),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Merges per-shard ascending runs into one ascending run of ≤ `limit`
/// entries. Simple k-way by smallest head; k is the shard count (small).
fn merge_sorted(mut runs: Vec<Vec<ScanEntry>>, limit: usize) -> Vec<ScanEntry> {
    let mut cursors = vec![0usize; runs.len()];
    let mut out = Vec::new();
    while out.len() < limit {
        let mut best: Option<usize> = None;
        for (i, run) in runs.iter().enumerate() {
            if cursors[i] >= run.len() {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => run[cursors[i]].key < runs[b][cursors[b]].key,
            };
            if better {
                best = Some(i);
            }
        }
        let Some(i) = best else { break };
        let e = &mut runs[i][cursors[i]];
        out.push(ScanEntry {
            key: std::mem::take(&mut e.key),
            value: std::mem::take(&mut e.value),
        });
        cursors[i] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct MapEngine {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
    }

    impl KvEngine for MapEngine {
        fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
            self.map.lock().insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
            Ok(self.map.lock().get(key).cloned())
        }
        fn delete(&self, key: &[u8]) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
            Ok(self
                .map
                .lock()
                .range(start.to_vec()..)
                .take(limit)
                .map(|(k, v)| ScanEntry {
                    key: k.clone(),
                    value: v.clone(),
                })
                .collect())
        }
        fn wait_idle(&self) -> Result<()> {
            Ok(())
        }
        fn report(&self) -> EngineReport {
            EngineReport::default()
        }
        fn name(&self) -> &str {
            "map"
        }
    }

    fn router(n: usize) -> ShardRouter<MapEngine> {
        ShardRouter::new((0..n).map(|_| MapEngine::default()).collect())
    }

    #[test]
    fn routing_is_deterministic_and_spreads() {
        let r = router(4);
        let mut hit = [false; 4];
        for i in 0..256u32 {
            let key = format!("key{i:04}");
            let s = r.shard_of(key.as_bytes());
            assert_eq!(s, r.shard_of(key.as_bytes()));
            hit[s] = true;
        }
        assert!(hit.iter().all(|h| *h), "256 keys must touch all 4 shards");
    }

    #[test]
    fn point_ops_round_trip_across_shards() {
        let r = router(3);
        for i in 0..100u32 {
            r.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(
                r.get(format!("k{i:03}").as_bytes()).unwrap().unwrap(),
                format!("v{i}").as_bytes()
            );
        }
        r.delete(b"k050").unwrap();
        assert!(r.get(b"k050").unwrap().is_none());
        // Shards hold disjoint non-empty subsets.
        let sizes: Vec<usize> = r.shards().iter().map(|s| s.map.lock().len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 99);
        assert!(sizes.iter().all(|&s| s > 0), "sizes = {sizes:?}");
    }

    #[test]
    fn scan_merges_shards_in_global_key_order() {
        let r = router(4);
        for i in 0..200u32 {
            r.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        let out = r.scan(b"k0050", 60).unwrap();
        assert_eq!(out.len(), 60);
        for (j, e) in out.iter().enumerate() {
            assert_eq!(e.key, format!("k{:04}", 50 + j).into_bytes());
        }
        // Limit larger than remaining entries.
        let tail = r.scan(b"k0190", 100).unwrap();
        assert_eq!(tail.len(), 10);
    }

    #[test]
    fn report_aggregates_across_shards() {
        let r = router(2);
        r.put(b"a", b"1").unwrap();
        r.put(b"b", b"2").unwrap();
        let rep = r.report();
        assert_eq!(rep.name, "Sharded(mapx2)");
        assert_eq!(rep.name, r.name());
    }
}
