//! Blocking TCP client for the MioDB wire protocol.
//!
//! [`KvClient`] wraps one connection with buffered reads and writes. The
//! convenience methods ([`put`](KvClient::put), [`get`](KvClient::get), …)
//! are strict request/response round trips; the pipelining primitives
//! ([`send`](KvClient::send) / [`flush`](KvClient::flush) /
//! [`recv`](KvClient::recv), or [`pipeline`](KvClient::pipeline)) keep many
//! requests in flight on one connection, which is where the protocol's
//! throughput comes from — the server answers strictly in request order,
//! so responses match sends positionally.
//!
//! # Failure handling
//!
//! Every socket carries the read/write timeouts from [`ClientOptions`]. On
//! a transport failure the client drops the dead connection and reconnects
//! lazily with exponential backoff plus jitter. What the caller sees
//! depends on the operation:
//!
//! - **Idempotent requests** (GET / SCAN / STATS) are retried transparently
//!   up to [`ClientOptions::max_retries`] times — re-asking a question the
//!   server may already have answered is harmless.
//! - **Mutations** (PUT / DELETE / BATCH) that fail after any part of the
//!   request may have reached the server return
//!   [`Error::MaybeApplied`]: the operation might have been applied, and a
//!   blind resend could apply it twice. The caller decides (read back, or
//!   resend if its writes are idempotent at the application level). The
//!   connection is still re-established for subsequent operations.
//! - The raw pipelining primitives never retry — positional response
//!   matching makes retry a caller-level decision — but they do mark the
//!   connection dead so the next operation reconnects.
//! - **Leader redirects.** A replicated follower refuses mutations with a
//!   typed `NotLeader` frame carrying the group epoch and the leader's
//!   address. Because the refusal happens before any engine work, the
//!   mutation is provably not applied, so the client transparently
//!   re-dials the hinted address and retries (counted in
//!   [`ClientCounters::redirects`]). The loop is bounded: at most
//!   [`ClientOptions::max_redirects`] hops with jittered backoff between
//!   them — two nodes hinting at each other mid-election cannot trap the
//!   client (each exhausted loop is counted in
//!   [`ClientCounters::redirect_loops`]). An empty hint (leader unknown
//!   mid-election) burns a hop waiting for the election to settle. A
//!   client pointed at a follower still serves reads from it (replica
//!   reads — staleness is bounded by the replication lag, zero under
//!   semi-sync/quorum acks).
//! - **Fencing and quorum refusals.** A *deposed* leader answers
//!   mutations with the typed `StaleEpoch` frame, and a quorum-level
//!   leader cut off from its majority answers `QuorumLost`. Both surface
//!   as their typed errors ([`Error::StaleEpoch`],
//!   [`Error::QuorumLost`]) rather than being retried: the first means
//!   the caller's leader view needs a refresh, the second is a
//!   structural outage where blind retry is exactly wrong. The epoch
//!   carried on refusals is remembered ([`KvClient::observed_epoch`]).
//!
//! ```no_run
//! use miodb_client::KvClient;
//!
//! let mut c = KvClient::connect("127.0.0.1:7878").unwrap();
//! c.put(b"k", b"v").unwrap();
//! assert_eq!(c.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
//! ```

#![deny(missing_docs)]

use miodb_common::proto::{self, Request, Response};
use miodb_common::trace::{self, SpanKind, TraceCtx};
use miodb_common::{Error, OpKind, Result, ScanEntry};
use std::collections::hash_map::RandomState;
use std::collections::VecDeque;
use std::hash::{BuildHasher, Hasher};
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client resilience tunables.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Socket read timeout; `None` blocks forever. A recv that times out
    /// surfaces as [`Error::Io`] (and [`Error::MaybeApplied`] for
    /// mutations) rather than hanging the caller.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout; `None` blocks forever.
    pub write_timeout: Option<Duration>,
    /// Retry budget for idempotent requests and reconnect attempts.
    pub max_retries: u32,
    /// Hop budget for following `NotLeader` redirects on one mutation;
    /// exhausted loops surface the final `NotLeader` and count in
    /// [`ClientCounters::redirect_loops`].
    pub max_redirects: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling (before jitter).
    pub backoff_max: Duration,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            max_retries: 3,
            max_redirects: 4,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
        }
    }
}

/// Transport-failure counters, cheap to copy out for benchmark reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Requests retried after a transport failure (idempotent ops only).
    pub retries: u64,
    /// Socket read/write timeouts observed.
    pub timeouts: u64,
    /// Connections re-established after a failure.
    pub reconnects: u64,
    /// Mutations whose outcome was reported as [`Error::MaybeApplied`].
    pub ambiguous: u64,
    /// Mutations re-dialed to a hinted leader after a `NotLeader` refusal.
    pub redirects: u64,
    /// Mutations that exhausted the redirect hop budget without finding a
    /// willing leader (hint cycles or a group mid-election).
    pub redirect_loops: u64,
    /// In-band backpressure advisories received (the server paused
    /// reading this connection until responses were drained).
    pub backpressure: u64,
}

/// One dialed socket. The reader owns the only descriptor; writes are
/// buffered locally and pushed through `reader.get_ref()` (`&TcpStream`
/// implements `Write`), so a connection costs one fd instead of a
/// `try_clone`d pair — that factor of two is what lets a 10k-connection
/// sweep driver fit under a 20k-fd `RLIMIT_NOFILE`.
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    wbuf: Vec<u8>,
}

/// Pending writes beyond this spill to the socket on the next `write`
/// call, mirroring `BufWriter`'s bounded-memory behavior.
const WRITE_SPILL_BYTES: usize = 64 * 1024;

impl Conn {
    fn stream(&self) -> &TcpStream {
        self.reader.get_ref()
    }

    fn write_frame_with<F>(&mut self, f: F) -> std::io::Result<()>
    where
        F: FnOnce(&mut Vec<u8>) -> std::io::Result<()>,
    {
        if self.wbuf.len() >= WRITE_SPILL_BYTES {
            self.flush()?;
        }
        f(&mut self.wbuf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream().write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }
}

/// One blocking connection to a MioDB server, with automatic reconnect.
#[derive(Debug)]
pub struct KvClient {
    conn: Option<Conn>,
    addrs: Vec<SocketAddr>,
    opts: ClientOptions,
    next_id: u32,
    counters: ClientCounters,
    jitter: u64,
    /// Highest replication epoch seen on a typed refusal; a refreshed
    /// leader view is one with a higher epoch.
    last_epoch: u64,
    /// Sampled in-flight requests awaiting their response, in send order:
    /// `(request id, trace context, send-start ns)`. Empty whenever
    /// tracing is off. Responses match positionally by id, so the whole
    /// round trip can be recorded as one span at receive time even under
    /// pipelining.
    inflight_trace: VecDeque<(u32, TraceCtx, u64)>,
}

impl KvClient {
    /// Connects with [`ClientOptions::default`] and disables Nagle (the
    /// protocol already batches via explicit flushes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<KvClient> {
        KvClient::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit [`ClientOptions`]. The resolved addresses are
    /// kept for automatic reconnects.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if resolution yields no address or every
    /// address refuses the connection.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, opts: ClientOptions) -> Result<KvClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(Error::Io)?.collect();
        if addrs.is_empty() {
            return Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )));
        }
        let conn = dial(&addrs, &opts)?;
        // Seed the backoff jitter from a per-process random hasher: clients
        // that fail together then retry spread out instead of stampeding.
        let jitter = RandomState::new().build_hasher().finish() | 1;
        Ok(KvClient {
            conn: Some(conn),
            addrs,
            opts,
            next_id: 1,
            counters: ClientCounters::default(),
            jitter,
            last_epoch: 0,
            inflight_trace: VecDeque::new(),
        })
    }

    /// Transport-failure counters accumulated over this client's lifetime.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// Highest replication epoch observed on `NotLeader`/`StaleEpoch`
    /// refusals (0 until one is seen). Lets callers tell a fresh leader
    /// view from a stale one when re-resolving after [`Error::StaleEpoch`].
    pub fn observed_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// True while a live connection is held (a failed operation drops it;
    /// the next operation reconnects).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    // ----- connection management -------------------------------------

    /// Ensures a live connection, dialing with exponential backoff plus
    /// jitter after failures. Counts a reconnect when a new connection had
    /// to be made.
    fn ensure_connected(&mut self) -> Result<&mut Conn> {
        if self.conn.is_none() {
            let mut attempt = 0u32;
            let conn = loop {
                match dial(&self.addrs, &self.opts) {
                    Ok(c) => break c,
                    Err(e) => {
                        if attempt >= self.opts.max_retries {
                            return Err(e);
                        }
                        attempt += 1;
                        std::thread::sleep(self.backoff_delay(attempt));
                    }
                }
            };
            self.conn = Some(conn);
            // Request ids are per-connection; the server never sees the old
            // stream again, so restarting avoids id-space drift.
            self.next_id = 1;
            self.counters.reconnects += 1;
            // In-flight requests died with the old connection.
            self.inflight_trace.clear();
        }
        // Invariant: just populated above if it was None.
        Ok(self.conn.as_mut().unwrap())
    }

    /// Exponential backoff for `attempt` (1-based) with up to +50% jitter.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .opts
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1))
            .min(self.opts.backoff_max);
        // xorshift64*: cheap deterministic stream per client.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let frac = (self.jitter % 512) as u32; // 0..512 -> 0..50% of exp
        exp + exp.saturating_mul(frac) / 1024
    }

    /// Drops the connection after a transport failure and classifies the
    /// error for the counters.
    fn note_transport_failure(&mut self, e: &std::io::Error) {
        if proto::is_timeout(e) {
            self.counters.timeouts += 1;
        }
        if let Some(conn) = self.conn.take() {
            let _ = conn.stream().shutdown(Shutdown::Both);
        }
        // Responses for in-flight requests will never arrive.
        self.inflight_trace.clear();
    }

    // ----- pipelining primitives -------------------------------------

    /// Buffers one request; returns the id its response will echo. Call
    /// [`flush`](KvClient::flush) to put buffered requests on the wire.
    ///
    /// Never retries (see the module docs); a failure marks the connection
    /// dead so the next operation reconnects.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on write failure.
    pub fn send(&mut self, req: &Request) -> Result<u32> {
        self.ensure_connected()?;
        // Read the id only after a possible reconnect reset it.
        let id = self.next_id;
        // Sampling decision for this round trip; the context rides the
        // frame header while installed below.
        let ctx = trace::begin_trace();
        let send_start = if ctx.sampled { trace::now_ns() } else { 0 };
        // Invariant: `ensure_connected` just succeeded.
        let conn = self.conn.as_mut().unwrap();
        let written = {
            let _c = trace::with_ctx(ctx);
            conn.write_frame_with(|buf| proto::write_request(buf, id, req))
        };
        match written {
            Ok(()) => {
                if ctx.sampled {
                    trace::record(
                        SpanKind::ClientSend,
                        ctx.trace_id,
                        0,
                        ctx.span_id,
                        send_start,
                        trace::now_ns(),
                        0,
                    );
                    self.inflight_trace.push_back((id, ctx, send_start));
                }
                self.next_id = self.next_id.wrapping_add(1);
                Ok(id)
            }
            Err(e) => {
                self.note_transport_failure(&e);
                Err(Error::Io(e))
            }
        }
    }

    /// Flushes buffered requests to the socket.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on write failure.
    pub fn flush(&mut self) -> Result<()> {
        let Some(conn) = self.conn.as_mut() else {
            return Ok(()); // nothing buffered on a dead connection
        };
        match conn.flush() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.note_transport_failure(&e);
                Err(Error::Io(e))
            }
        }
    }

    /// Reads the next response frame (blocking up to the read timeout).
    /// Responses arrive in request order; the returned id echoes the
    /// matching [`send`].
    ///
    /// An in-band server error decodes as [`Response::Err`] — it is *not*
    /// turned into `Err(_)` here, because in a pipeline the caller must
    /// still pair it with its request.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on transport failure or timeout (including
    /// the server closing the connection) and [`Error::Corruption`] for
    /// frames that fail CRC or decoding.
    ///
    /// [`send`]: KvClient::send
    pub fn recv(&mut self) -> Result<(u32, Response)> {
        let Some(conn) = self.conn.as_mut() else {
            return Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection previously failed",
            )));
        };
        let recv_start = match self.inflight_trace.front() {
            Some(_) => trace::now_ns(),
            None => 0,
        };
        let mut advisories = 0u64;
        let read = loop {
            match proto::read_frame(&mut conn.reader) {
                Ok(Some(frame))
                    if frame.opcode & !proto::RESPONSE_BIT == proto::OP_BACKPRESSURE =>
                {
                    // Advisory, not an answer to any request (id 0): count
                    // it and keep waiting for the real response. Draining
                    // responses is exactly what releases the pressure.
                    advisories += 1;
                }
                other => break other,
            }
        };
        self.counters.backpressure += advisories;
        self.finish_recv(read, recv_start)
    }

    fn finish_recv(
        &mut self,
        read: Result<Option<proto::Frame>>,
        recv_start: u64,
    ) -> Result<(u32, Response)> {
        match read {
            Ok(Some(frame)) => {
                // If this frame answers the oldest sampled request, close
                // out its round-trip spans (responses arrive in order, so
                // a front-id match is exact).
                if let Some(&(fid, ctx, send_start)) = self.inflight_trace.front() {
                    if fid == frame.id {
                        self.inflight_trace.pop_front();
                        let now = trace::now_ns();
                        trace::record(
                            SpanKind::ClientRecv,
                            ctx.trace_id,
                            0,
                            ctx.span_id,
                            recv_start,
                            now,
                            0,
                        );
                        trace::record(
                            SpanKind::ClientRequest,
                            ctx.trace_id,
                            ctx.span_id,
                            0,
                            send_start,
                            now,
                            u64::from(frame.opcode),
                        );
                    }
                }
                let resp = Response::decode(frame.opcode, &frame.body)?;
                Ok((frame.id, resp))
            }
            Ok(None) => {
                let e = std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                );
                self.note_transport_failure(&e);
                Err(Error::Io(e))
            }
            Err(Error::Io(e)) => {
                self.note_transport_failure(&e);
                Err(Error::Io(e))
            }
            Err(other) => Err(other),
        }
    }

    /// Bytes already buffered on the read side. Nonzero means at least
    /// part of a response frame has arrived, so a [`recv`](KvClient::recv)
    /// will return promptly — closed-loop drivers use this to drain every
    /// available response before refilling the pipeline, keeping requests
    /// and responses batched instead of degenerating into one-frame
    /// ping-pong.
    pub fn buffered(&self) -> usize {
        self.conn.as_ref().map_or(0, |c| c.reader.buffer().len())
    }

    /// Sends `reqs` back to back with one flush, then collects their
    /// responses in order. Never retries (positional matching makes retry
    /// a caller-level decision).
    ///
    /// # Errors
    ///
    /// Returns the first transport or decode error; in-band
    /// [`Response::Err`] values are returned in the vector.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>> {
        for req in reqs {
            self.send(req)?;
        }
        self.flush()?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            out.push(self.recv()?.1);
        }
        Ok(out)
    }

    // ----- one-shot convenience calls --------------------------------

    /// One strict round trip on the current connection; transport errors
    /// have already marked the connection dead when this returns.
    fn try_round_trip(&mut self, req: &Request) -> Result<Response> {
        let id = self.send(req)?;
        self.flush()?;
        let (got_id, resp) = self.recv()?;
        // Err first: out-of-band refusals (connection limit) carry id 0.
        if let Response::Err(msg) = resp {
            return Err(Error::Background(msg));
        }
        match resp {
            Response::NotLeader { epoch, hint } => {
                self.last_epoch = self.last_epoch.max(epoch);
                return Err(Error::NotLeader(hint));
            }
            Response::StaleEpoch { epoch, hint } => {
                self.last_epoch = self.last_epoch.max(epoch);
                return Err(Error::StaleEpoch { epoch, hint });
            }
            Response::QuorumLost { have, need } => {
                return Err(Error::QuorumLost {
                    have: have as usize,
                    need: need as usize,
                });
            }
            _ => {}
        }
        if got_id != id {
            // The stream can no longer be trusted to pair responses.
            let e = std::io::Error::other("response id mismatch");
            self.note_transport_failure(&e);
            return Err(Error::Corruption(format!(
                "response id {got_id} does not match request id {id}"
            )));
        }
        Ok(resp)
    }

    /// Round trip for idempotent requests: transport failures reconnect
    /// (with backoff) and retry up to the configured budget.
    fn round_trip_idempotent(&mut self, req: &Request) -> Result<Response> {
        let mut attempt = 0u32;
        loop {
            match self.try_round_trip(req) {
                Err(Error::Io(e)) if attempt < self.opts.max_retries => {
                    attempt += 1;
                    self.counters.retries += 1;
                    let delay = self.backoff_delay(attempt);
                    std::thread::sleep(delay);
                    let _ = e;
                }
                other => return other,
            }
        }
    }

    /// Round trip for mutations: once any part of the request may have
    /// reached the server, a transport failure is ambiguous — surface
    /// [`Error::MaybeApplied`] instead of guessing. A `NotLeader` refusal
    /// is the opposite of ambiguous (the server provably applied nothing),
    /// so the client re-dials the hinted leader and retries — but only up
    /// to the hop budget, with jittered backoff between hops, so hint
    /// cycles and mid-election churn cannot trap it. `StaleEpoch` and
    /// `QuorumLost` are *not* retried: both are typed verdicts (refresh
    /// your leader view; the group lost its majority) where blind retry
    /// hides the condition the type exists to surface.
    fn round_trip_mutation(&mut self, req: &Request, what: &str) -> Result<Response> {
        let mut redirects = 0u32;
        loop {
            let was_connected = self.conn.is_some();
            match self.try_round_trip(req) {
                Err(Error::NotLeader(hint)) => {
                    if redirects >= self.opts.max_redirects {
                        self.counters.redirect_loops += 1;
                        return Err(Error::NotLeader(hint));
                    }
                    // An empty hint means the group is mid-election:
                    // burning a hop on backoff alone gives it time to
                    // settle, then re-asks the same node.
                    if hint.is_empty() || self.redirect_to(&hint) {
                        redirects += 1;
                        self.counters.redirects += 1;
                        let delay = self.backoff_delay(redirects);
                        std::thread::sleep(delay);
                        continue;
                    }
                    return Err(Error::NotLeader(hint));
                }
                Err(Error::Io(e)) => {
                    if was_connected {
                        self.counters.ambiguous += 1;
                        return Err(Error::MaybeApplied(format!(
                            "{what} interrupted by transport failure: {e}"
                        )));
                    }
                    // The failure happened while (re)connecting — nothing
                    // was ever sent, so the plain error is accurate and the
                    // caller may retry safely.
                    return Err(Error::Io(e));
                }
                other => return other,
            }
        }
    }

    /// Re-points this client at `hint` (a `NotLeader` redirect target) and
    /// drops the current connection so the next operation dials it.
    /// Returns `false` if the hint does not resolve.
    fn redirect_to(&mut self, hint: &str) -> bool {
        let Ok(resolved) = hint.to_socket_addrs() else {
            return false;
        };
        let addrs: Vec<SocketAddr> = resolved.collect();
        if addrs.is_empty() {
            return false;
        }
        self.addrs = addrs;
        if let Some(conn) = self.conn.take() {
            let _ = conn.stream().shutdown(Shutdown::Both);
        }
        self.inflight_trace.clear();
        true
    }

    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// [`Error::MaybeApplied`] if the connection failed mid-request (the
    /// put may or may not have been applied), [`Error::Background`]
    /// carrying the server's error message, or [`Error::Io`] if no
    /// connection could be established at all.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        match self.round_trip_mutation(
            &Request::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            "PUT",
        )? {
            Response::Ok => Ok(()),
            other => Err(unexpected("PUT", &other)),
        }
    }

    /// Looks up `key`. Idempotent: transparently retried over a reconnect
    /// after transport failures.
    ///
    /// # Errors
    ///
    /// Transport errors (after the retry budget), or [`Error::Background`]
    /// carrying the server's error message.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.round_trip_idempotent(&Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected("GET", &other)),
        }
    }

    /// Deletes `key`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::put`] (including
    /// [`Error::MaybeApplied`]).
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        match self.round_trip_mutation(&Request::Delete { key: key.to_vec() }, "DELETE")? {
            Response::Ok => Ok(()),
            other => Err(unexpected("DELETE", &other)),
        }
    }

    /// Returns up to `limit` entries with keys `>= start`, ascending,
    /// merged across the server's shards. Idempotent: transparently
    /// retried like [`KvClient::get`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::get`].
    pub fn scan(&mut self, start: &[u8], limit: u32) -> Result<Vec<ScanEntry>> {
        match self.round_trip_idempotent(&Request::Scan {
            start: start.to_vec(),
            limit,
        })? {
            Response::Entries(entries) => Ok(entries),
            other => Err(unexpected("SCAN", &other)),
        }
    }

    /// Applies `(key, value, kind)` operations in order as one request.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::put`] (the whole batch is one
    /// mutation: a mid-request failure is ambiguous for all of it).
    pub fn batch(&mut self, ops: Vec<(Vec<u8>, Vec<u8>, OpKind)>) -> Result<()> {
        match self.round_trip_mutation(&Request::Batch { ops }, "BATCH")? {
            Response::Ok => Ok(()),
            other => Err(unexpected("BATCH", &other)),
        }
    }

    /// Fetches the server's metrics in Prometheus text exposition format
    /// (engine families plus `miodb_server_*` service families).
    /// Idempotent: transparently retried like [`KvClient::get`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::get`].
    pub fn stats(&mut self) -> Result<String> {
        match self.round_trip_idempotent(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected("STATS", &other)),
        }
    }

    /// Drains the server's collected trace spans as Chrome trace-event
    /// JSON (loadable in Perfetto). Destructive read: each span is
    /// returned once. Idempotent at the transport level, so retried like
    /// [`KvClient::get`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::get`].
    pub fn trace_dump(&mut self) -> Result<String> {
        match self.round_trip_idempotent(&Request::TraceDump)? {
            Response::Trace(text) => Ok(text),
            other => Err(unexpected("TRACE", &other)),
        }
    }

    /// Flushes outstanding writes and shuts the connection down.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the final flush fails.
    pub fn close(mut self) -> Result<()> {
        if let Some(mut conn) = self.conn.take() {
            conn.flush().map_err(Error::Io)?;
            let _ = conn.stream().shutdown(Shutdown::Both);
        }
        Ok(())
    }
}

/// Dials the first reachable address and applies the socket options.
fn dial(addrs: &[SocketAddr], opts: &ClientOptions) -> Result<Conn> {
    let mut last_err: Option<std::io::Error> = None;
    for addr in addrs {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).map_err(Error::Io)?;
                stream
                    .set_read_timeout(opts.read_timeout)
                    .map_err(Error::Io)?;
                stream
                    .set_write_timeout(opts.write_timeout)
                    .map_err(Error::Io)?;
                return Ok(Conn {
                    reader: BufReader::new(stream),
                    wbuf: Vec::new(),
                });
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(Error::Io(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address to dial")
    })))
}

fn unexpected(what: &str, resp: &Response) -> Error {
    Error::Corruption(format!("unexpected {what} response: {resp:?}"))
}
