//! Blocking TCP client for the MioDB wire protocol.
//!
//! [`KvClient`] wraps one connection with buffered reads and writes. The
//! convenience methods ([`put`](KvClient::put), [`get`](KvClient::get), …)
//! are strict request/response round trips; the pipelining primitives
//! ([`send`](KvClient::send) / [`flush`](KvClient::flush) /
//! [`recv`](KvClient::recv), or [`pipeline`](KvClient::pipeline)) keep many
//! requests in flight on one connection, which is where the protocol's
//! throughput comes from — the server answers strictly in request order,
//! so responses match sends positionally.
//!
//! ```no_run
//! use miodb_client::KvClient;
//!
//! let mut c = KvClient::connect("127.0.0.1:7878").unwrap();
//! c.put(b"k", b"v").unwrap();
//! assert_eq!(c.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
//! ```

#![deny(missing_docs)]

use miodb_common::proto::{self, Request, Response};
use miodb_common::{Error, OpKind, Result, ScanEntry};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

/// One blocking connection to a MioDB server.
#[derive(Debug)]
pub struct KvClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u32,
}

impl KvClient {
    /// Connects and disables Nagle (the protocol already batches via
    /// explicit flushes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<KvClient> {
        let stream = TcpStream::connect(addr).map_err(Error::Io)?;
        stream.set_nodelay(true).map_err(Error::Io)?;
        let read_half = stream.try_clone().map_err(Error::Io)?;
        Ok(KvClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    // ----- pipelining primitives -------------------------------------

    /// Buffers one request; returns the id its response will echo. Call
    /// [`flush`](KvClient::flush) to put buffered requests on the wire.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on write failure.
    pub fn send(&mut self, req: &Request) -> Result<u32> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        proto::write_request(&mut self.writer, id, req).map_err(Error::Io)?;
        Ok(id)
    }

    /// Flushes buffered requests to the socket.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on write failure.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush().map_err(Error::Io)
    }

    /// Reads the next response frame (blocking). Responses arrive in
    /// request order; the returned id echoes the matching [`send`].
    ///
    /// An in-band server error decodes as [`Response::Err`] — it is *not*
    /// turned into `Err(_)` here, because in a pipeline the caller must
    /// still pair it with its request.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on transport failure (including the server
    /// closing the connection) and [`Error::Corruption`] for frames that
    /// fail CRC or decoding.
    ///
    /// [`send`]: KvClient::send
    pub fn recv(&mut self) -> Result<(u32, Response)> {
        match proto::read_frame(&mut self.reader)? {
            None => Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Some(frame) => {
                let resp = Response::decode(frame.opcode, &frame.body)?;
                Ok((frame.id, resp))
            }
        }
    }

    /// Bytes already buffered on the read side. Nonzero means at least
    /// part of a response frame has arrived, so a [`recv`](KvClient::recv)
    /// will return promptly — closed-loop drivers use this to drain every
    /// available response before refilling the pipeline, keeping requests
    /// and responses batched instead of degenerating into one-frame
    /// ping-pong.
    pub fn buffered(&self) -> usize {
        self.reader.buffer().len()
    }

    /// Sends `reqs` back to back with one flush, then collects their
    /// responses in order.
    ///
    /// # Errors
    ///
    /// Returns the first transport or decode error; in-band
    /// [`Response::Err`] values are returned in the vector.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>> {
        for req in reqs {
            self.send(req)?;
        }
        self.flush()?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            out.push(self.recv()?.1);
        }
        Ok(out)
    }

    // ----- one-shot convenience calls --------------------------------

    fn round_trip(&mut self, req: &Request) -> Result<Response> {
        let id = self.send(req)?;
        self.flush()?;
        let (got_id, resp) = self.recv()?;
        // Err first: out-of-band refusals (connection limit) carry id 0.
        if let Response::Err(msg) = resp {
            return Err(Error::Background(msg));
        }
        if got_id != id {
            return Err(Error::Corruption(format!(
                "response id {got_id} does not match request id {id}"
            )));
        }
        Ok(resp)
    }

    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`Error::Background`] carrying the server's
    /// error message.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        match self.round_trip(&Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("PUT", &other)),
        }
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::put`].
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.round_trip(&Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected("GET", &other)),
        }
    }

    /// Deletes `key`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::put`].
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        match self.round_trip(&Request::Delete { key: key.to_vec() })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("DELETE", &other)),
        }
    }

    /// Returns up to `limit` entries with keys `>= start`, ascending,
    /// merged across the server's shards.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::put`].
    pub fn scan(&mut self, start: &[u8], limit: u32) -> Result<Vec<ScanEntry>> {
        match self.round_trip(&Request::Scan {
            start: start.to_vec(),
            limit,
        })? {
            Response::Entries(entries) => Ok(entries),
            other => Err(unexpected("SCAN", &other)),
        }
    }

    /// Applies `(key, value, kind)` operations in order as one request.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::put`].
    pub fn batch(&mut self, ops: Vec<(Vec<u8>, Vec<u8>, OpKind)>) -> Result<()> {
        match self.round_trip(&Request::Batch { ops })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("BATCH", &other)),
        }
    }

    /// Fetches the server's metrics in Prometheus text exposition format
    /// (engine families plus `miodb_server_*` service families).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvClient::put`].
    pub fn stats(&mut self) -> Result<String> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected("STATS", &other)),
        }
    }

    /// Flushes outstanding writes and shuts the connection down.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the final flush fails.
    pub fn close(mut self) -> Result<()> {
        self.writer.flush().map_err(Error::Io)?;
        let _ = self.writer.get_ref().shutdown(Shutdown::Both);
        Ok(())
    }
}

fn unexpected(what: &str, resp: &Response) -> Error {
    Error::Corruption(format!("unexpected {what} response: {resp:?}"))
}
