//! Property tests for the wire-protocol frame codec: the incremental
//! [`FrameDecoder`] behind the event-driven server must be byte-for-byte
//! equivalent to the blocking [`proto::read_frame`] path — every split of
//! every frame at every byte boundary decodes to identical frames, and
//! both paths reject the same corrupted input.

use std::io::Cursor;

use miodb_common::proto::{self, FrameDecoder};
use proptest::prelude::*;

/// An arbitrary wire frame: opcode byte, request id, raw body. The codec
/// is payload-agnostic, so property coverage does not need well-formed
/// `Request`/`Response` bodies — those have their own round-trip tests.
fn frame_strategy() -> impl Strategy<Value = (u8, u32, Vec<u8>)> {
    (
        any::<u8>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..200),
    )
}

/// Encodes `frames` the way every peer does (via `write_frame`) into one
/// contiguous byte stream.
fn encode_stream(frames: &[(u8, u32, Vec<u8>)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (op, id, body) in frames {
        proto::write_frame(&mut bytes, *op, *id, body).unwrap();
    }
    bytes
}

/// Decodes the whole stream with the blocking reader (the oracle).
fn blocking_decode(bytes: &[u8]) -> Vec<proto::Frame> {
    let mut cur = Cursor::new(bytes);
    let mut out = Vec::new();
    while let Some(f) = proto::read_frame(&mut cur).unwrap() {
        out.push(f);
    }
    out
}

/// Drains every currently-complete frame from the decoder.
fn drain(dec: &mut FrameDecoder, out: &mut Vec<proto::Frame>) {
    while let Some(f) = dec.next_frame().unwrap() {
        out.push(f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Split the encoded stream at *every* byte boundary (two feeds per
    /// boundary) — partial length prefixes, split headers, split bodies,
    /// split CRCs — and require the exact frames the blocking reader
    /// produces, plus an empty residual.
    #[test]
    fn every_split_point_decodes_identically(
        frames in proptest::collection::vec(frame_strategy(), 1..4),
    ) {
        let bytes = encode_stream(&frames);
        let want = blocking_decode(&bytes);
        prop_assert_eq!(want.len(), frames.len());
        for split in 0..=bytes.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            dec.feed(&bytes[..split]);
            drain(&mut dec, &mut got);
            dec.feed(&bytes[split..]);
            drain(&mut dec, &mut got);
            prop_assert_eq!(&got, &want, "split at byte {}", split);
            prop_assert_eq!(dec.buffered(), 0, "residual after split at {}", split);
            prop_assert!(dec.into_residual().is_empty());
        }
    }

    /// Arbitrary multi-chunk deliveries (including empty chunks) are
    /// equivalent to one blocking read of the concatenation, and bytes
    /// beyond the last complete frame come back verbatim as the residual.
    #[test]
    fn arbitrary_chunking_matches_blocking(
        frames in proptest::collection::vec(frame_strategy(), 1..5),
        cuts in proptest::collection::vec(any::<u16>(), 0..8),
        truncate in any::<u16>(),
    ) {
        let mut bytes = encode_stream(&frames);
        // Optionally truncate mid-frame: the tail must survive as residual.
        let keep = bytes.len() - (truncate as usize % bytes.len().min(40));
        bytes.truncate(keep);
        let want = blocking_decode_lossy(&bytes);
        let mut offsets: Vec<usize> = cuts.iter().map(|c| *c as usize % (bytes.len() + 1)).collect();
        offsets.push(0);
        offsets.push(bytes.len());
        offsets.sort_unstable();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for w in offsets.windows(2) {
            dec.feed(&bytes[w[0]..w[1]]);
            drain(&mut dec, &mut got);
        }
        prop_assert_eq!(&got, &want.0);
        prop_assert_eq!(dec.into_residual(), want.1);
    }

    /// Flipping any byte after the length prefix of a frame (header, body
    /// or CRC) must be rejected by both paths: everything there is under
    /// the CRC, and the CRC field itself then mismatches the payload.
    #[test]
    fn corrupt_byte_rejected_by_both_paths(
        frame in frame_strategy(),
        at in any::<u16>(),
        flip in any::<u8>(),
    ) {
        let (op, id, body) = frame;
        let mut bytes = encode_stream(&[(op, id, body)]);
        let pos = 4 + (at as usize) % (bytes.len() - 4);
        bytes[pos] ^= flip | 1; // always a real flip
        let blocking = proto::read_frame(&mut Cursor::new(&bytes));
        prop_assert!(blocking.is_err(), "blocking path accepted corrupt byte at {}", pos);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        prop_assert!(dec.next_frame().is_err(), "incremental path accepted corrupt byte at {}", pos);
    }
}

/// Like [`blocking_decode`] but stops at a truncated tail, returning the
/// complete frames plus the leftover bytes.
fn blocking_decode_lossy(bytes: &[u8]) -> (Vec<proto::Frame>, Vec<u8>) {
    let mut out = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &bytes[off..];
        if rest.len() < 4 {
            return (out, rest.to_vec());
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() < 4 + len {
            return (out, rest.to_vec());
        }
        let mut cur = Cursor::new(&rest[..4 + len]);
        out.push(proto::read_frame(&mut cur).unwrap().unwrap());
        off += 4 + len;
    }
}
