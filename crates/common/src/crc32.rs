//! CRC-32 (IEEE 802.3) for persistent-record integrity checks.
//!
//! Used by the write-ahead log, the manifest and the SSTable block format.
//! Table-driven implementation; no external dependency.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 of `data`.
///
/// # Examples
///
/// ```
/// // Standard check value for "123456789".
/// assert_eq!(miodb_common::crc32::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    extend(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Extends a running (pre-inverted) CRC state with more bytes. Start from
/// `0xFFFF_FFFF` and XOR the final state with `0xFFFF_FFFF`.
pub fn extend(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Incremental CRC-32 over multiple slices.
///
/// # Examples
///
/// ```
/// use miodb_common::crc32::{crc32, Crc32};
///
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finish(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = extend(self.state, data);
    }

    /// Finalizes and returns the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"some longer payload with structure 0123456789";
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"record payload".to_vec();
        let orig = crc32(&data);
        data[3] ^= 0x10;
        assert_ne!(crc32(&data), orig);
    }
}
