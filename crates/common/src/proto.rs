//! The network wire protocol shared by `miodb-server` and `miodb-client`.
//!
//! Frames are length-prefixed and CRC-protected so a stream can be parsed
//! incrementally and corruption is detected before any payload is trusted:
//!
//! ```text
//! v2: [u32 len][u8 version][u8 opcode][u32 request_id]
//!     [u64 trace_id][u8 trace_flags][body ...][u32 crc32]
//!  ^len counts everything after itself (header + body + crc)
//!  ^crc32 covers version..body (everything between len and crc)
//! ```
//!
//! All integers are little-endian. `request_id` is chosen by the client and
//! echoed verbatim in the response so pipelined requests can be matched to
//! their answers (the server always responds in request order; the id is a
//! cross-check, not a reordering mechanism). Responses set the high bit of
//! the request's opcode; errors use the dedicated [`OP_ERR`] opcode.
//!
//! Version 2 extends the v1 header with a trace context — a 64-bit trace
//! id plus a flags byte whose bit 0 marks the request as sampled — so the
//! [`trace`](crate::trace) subsystem can stitch client, server and engine
//! spans into one tree. Writers always emit v2; readers accept v1 frames
//! (empty trace context) for compatibility with older peers.

use crate::crc32::crc32;
use crate::engine::ScanEntry;
use crate::error::{Error, Result};
use crate::trace;
use crate::types::OpKind;
use std::io::{Read, Write};

/// Protocol version carried in every frame header written by this build.
pub const PROTO_VERSION: u8 = 2;

/// Oldest protocol version still accepted when reading.
pub const MIN_PROTO_VERSION: u8 = 1;

/// Largest accepted frame body: bounds allocation from untrusted input.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Response frames set this bit on the request's opcode.
pub const RESPONSE_BIT: u8 = 0x80;

/// Error-response opcode (any request can fail).
pub const OP_ERR: u8 = 0x7F;

/// Not-leader response opcode: a replication follower refused a mutation.
/// Distinct from [`OP_ERR`] so clients can redirect instead of failing;
/// the body carries the refusing node's epoch plus a leader-address hint
/// (possibly empty).
pub const OP_NOT_LEADER: u8 = 0x7E;

/// Stale-epoch response opcode: a *deposed* leader refused a request
/// because a newer leader exists at a higher epoch. Distinct from
/// [`OP_NOT_LEADER`] so clients can tell fencing (split-brain
/// protection) from an ordinary follower redirect; the body carries the
/// refusing node's current epoch and a leader hint (possibly empty).
pub const OP_STALE_EPOCH: u8 = 0x7D;

/// Quorum-lost response opcode: the leader cannot reach a majority of
/// its replication group, so a quorum-acked mutation is refused *before*
/// entering the engine. The body carries the reachable / required member
/// counts; retrying is always safe.
pub const OP_QUORUM_LOST: u8 = 0x7C;

/// Backpressure advisory opcode: the server has stopped reading this
/// connection because its request queue or response buffer hit the cap.
/// Sent in-band with request id 0, *between* ordinary responses — it does
/// not answer any request, so pipelined positional matching is
/// unaffected; clients count it and keep draining responses. The body
/// carries the queued-request count at the moment the connection was
/// paused.
pub const OP_BACKPRESSURE: u8 = 0x7B;

/// Trace-flags bit marking the request as sampled for tracing.
pub const TRACE_SAMPLED: u8 = 0x01;

/// Fixed v1 header bytes after the length prefix (version + opcode + id).
const HEADER_BYTES_V1: usize = 6;

/// Fixed v2 header bytes after the length prefix (v1 + trace id + flags).
const HEADER_BYTES_V2: usize = 15;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Point lookup.
    Get = 1,
    /// Insert/overwrite.
    Put = 2,
    /// Tombstone write.
    Delete = 3,
    /// Ordered range read from a start key.
    Scan = 4,
    /// Multiple put/delete operations in one frame.
    Batch = 5,
    /// Engine + service metrics in Prometheus text format.
    Stats = 6,
    /// Drain collected trace spans as Chrome trace-event JSON.
    Trace = 7,
    /// Follower subscribes to the leader's replication log from an offset.
    ReplSubscribe = 8,
    /// Leader pushes committed WAL record batches to a subscribed
    /// follower (response-bit frames; never sent as a request).
    ReplRecords = 9,
    /// Follower acknowledges the highest contiguously applied offset.
    ReplAck = 10,
    /// Follower fetches a pool snapshot for cold/lagging catch-up.
    SnapshotFetch = 11,
    /// Election vote request (or, with epoch 0, a liveness/epoch probe)
    /// between replication group members.
    ReplVote = 12,
}

impl Opcode {
    /// All opcodes, for per-opcode metric tables.
    pub const ALL: [Opcode; 12] = [
        Opcode::Get,
        Opcode::Put,
        Opcode::Delete,
        Opcode::Scan,
        Opcode::Batch,
        Opcode::Stats,
        Opcode::Trace,
        Opcode::ReplSubscribe,
        Opcode::ReplRecords,
        Opcode::ReplAck,
        Opcode::SnapshotFetch,
        Opcode::ReplVote,
    ];

    /// Parses a wire opcode byte (without the response bit).
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            1 => Some(Opcode::Get),
            2 => Some(Opcode::Put),
            3 => Some(Opcode::Delete),
            4 => Some(Opcode::Scan),
            5 => Some(Opcode::Batch),
            6 => Some(Opcode::Stats),
            7 => Some(Opcode::Trace),
            8 => Some(Opcode::ReplSubscribe),
            9 => Some(Opcode::ReplRecords),
            10 => Some(Opcode::ReplAck),
            11 => Some(Opcode::SnapshotFetch),
            12 => Some(Opcode::ReplVote),
            _ => None,
        }
    }

    /// Lower-case label for metrics and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Opcode::Get => "get",
            Opcode::Put => "put",
            Opcode::Delete => "delete",
            Opcode::Scan => "scan",
            Opcode::Batch => "batch",
            Opcode::Stats => "stats",
            Opcode::Trace => "trace",
            Opcode::ReplSubscribe => "repl_subscribe",
            Opcode::ReplRecords => "repl_records",
            Opcode::ReplAck => "repl_ack",
            Opcode::SnapshotFetch => "snapshot_fetch",
            Opcode::ReplVote => "repl_vote",
        }
    }
}

/// One contiguous run of framed WAL records shipped leader → follower.
///
/// `bytes` is the exact on-NVM record framing ([`crc32` | `len` |
/// payload]) produced by the leader's WAL append — followers feed it
/// straight to the WAL decoder, so a single CRC protects both the pmem
/// copy and the wire copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplBatch {
    /// First sequence number in the batch.
    pub seq_first: u64,
    /// Last sequence number in the batch (inclusive).
    pub seq_last: u64,
    /// Framed WAL record bytes, byte-identical to the leader's log.
    pub bytes: Vec<u8>,
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get {
        /// Key to look up.
        key: Vec<u8>,
    },
    /// Insert/overwrite.
    Put {
        /// Key to write.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Tombstone write.
    Delete {
        /// Key to delete.
        key: Vec<u8>,
    },
    /// Up to `limit` entries with keys `>= start`, ascending.
    Scan {
        /// First candidate key.
        start: Vec<u8>,
        /// Maximum entries returned.
        limit: u32,
    },
    /// Multiple put/delete operations applied in order.
    Batch {
        /// `(key, value, kind)` triples; `value` is empty for deletes.
        ops: Vec<(Vec<u8>, Vec<u8>, OpKind)>,
    },
    /// Metrics snapshot request.
    Stats,
    /// Drain the server's collected trace spans (Chrome trace JSON).
    TraceDump,
    /// Subscribe to the replication log; the leader answers with
    /// [`Response::ReplSubscribed`] and then pushes
    /// [`Response::ReplRecords`] frames on the same connection.
    ReplSubscribe {
        /// Resume point: the subscriber has applied everything `<= from`
        /// and wants records starting at `from + 1`.
        from: u64,
        /// The subscriber's current epoch; a leader that sees a higher
        /// one than its own has been deposed and must refuse the stream.
        epoch: u64,
    },
    /// Follower → leader progress report; no response is sent. Also the
    /// follower → leader heartbeat: followers ack every pushed frame,
    /// including empty heartbeats, so the leader's failure detector sees
    /// a regular pulse.
    ReplAck {
        /// Highest contiguously applied sequence number.
        offset: u64,
        /// The follower's current epoch; carrying it on every ack is how
        /// a stale leader discovers it was deposed mid-stream.
        epoch: u64,
    },
    /// Fetch a pool snapshot for cold-follower catch-up.
    SnapshotFetch,
    /// Election vote request. `epoch == 0` is a *probe*: never grantable,
    /// it just solicits the peer's `(epoch, last_seq, leader)` status.
    ReplVote {
        /// The epoch the candidate is standing for (0 = probe).
        epoch: u64,
        /// The candidate's highest applied sequence number.
        last_seq: u64,
        /// The candidate's advertised address (vote ledger key).
        candidate: String,
    },
}

impl Request {
    /// The request's wire opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Get { .. } => Opcode::Get,
            Request::Put { .. } => Opcode::Put,
            Request::Delete { .. } => Opcode::Delete,
            Request::Scan { .. } => Opcode::Scan,
            Request::Batch { .. } => Opcode::Batch,
            Request::Stats => Opcode::Stats,
            Request::TraceDump => Opcode::Trace,
            Request::ReplSubscribe { .. } => Opcode::ReplSubscribe,
            Request::ReplAck { .. } => Opcode::ReplAck,
            Request::SnapshotFetch => Opcode::SnapshotFetch,
            Request::ReplVote { .. } => Opcode::ReplVote,
        }
    }

    /// Serializes the body (everything between the header and the CRC).
    pub fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Get { key } | Request::Delete { key } => put_bytes(buf, key),
            Request::Put { key, value } => {
                put_bytes(buf, key);
                put_bytes(buf, value);
            }
            Request::Scan { start, limit } => {
                put_bytes(buf, start);
                buf.extend_from_slice(&limit.to_le_bytes());
            }
            Request::Batch { ops } => {
                buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for (key, value, kind) in ops {
                    buf.push(match kind {
                        OpKind::Put => 0,
                        OpKind::Delete => 1,
                    });
                    put_bytes(buf, key);
                    put_bytes(buf, value);
                }
            }
            Request::Stats | Request::TraceDump | Request::SnapshotFetch => {}
            Request::ReplSubscribe { from, epoch } => {
                buf.extend_from_slice(&from.to_le_bytes());
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
            Request::ReplAck { offset, epoch } => {
                buf.extend_from_slice(&offset.to_le_bytes());
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
            Request::ReplVote {
                epoch,
                last_seq,
                candidate,
            } => {
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&last_seq.to_le_bytes());
                put_bytes(buf, candidate.as_bytes());
            }
        }
    }

    /// Parses a request from an opcode and body.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] for truncated or malformed bodies.
    pub fn decode(opcode: u8, body: &[u8]) -> Result<Request> {
        let op = Opcode::from_u8(opcode)
            .ok_or_else(|| Error::Corruption(format!("unknown opcode {opcode:#x}")))?;
        let mut c = Cursor { buf: body, pos: 0 };
        let req = match op {
            Opcode::Get => Request::Get {
                key: c.take_bytes()?,
            },
            Opcode::Put => Request::Put {
                key: c.take_bytes()?,
                value: c.take_bytes()?,
            },
            Opcode::Delete => Request::Delete {
                key: c.take_bytes()?,
            },
            Opcode::Scan => Request::Scan {
                start: c.take_bytes()?,
                limit: c.take_u32()?,
            },
            Opcode::Batch => {
                let n = c.take_u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let kind = match c.take_u8()? {
                        0 => OpKind::Put,
                        1 => OpKind::Delete,
                        other => {
                            return Err(Error::Corruption(format!("bad batch op kind {other}")))
                        }
                    };
                    let key = c.take_bytes()?;
                    let value = c.take_bytes()?;
                    ops.push((key, value, kind));
                }
                Request::Batch { ops }
            }
            Opcode::Stats => Request::Stats,
            Opcode::Trace => Request::TraceDump,
            Opcode::ReplSubscribe => Request::ReplSubscribe {
                from: c.take_u64()?,
                epoch: c.take_u64()?,
            },
            Opcode::ReplAck => Request::ReplAck {
                offset: c.take_u64()?,
                epoch: c.take_u64()?,
            },
            Opcode::SnapshotFetch => Request::SnapshotFetch,
            Opcode::ReplVote => Request::ReplVote {
                epoch: c.take_u64()?,
                last_seq: c.take_u64()?,
                candidate: String::from_utf8_lossy(&c.take_bytes()?).into_owned(),
            },
            Opcode::ReplRecords => {
                return Err(Error::Corruption(
                    "ReplRecords frames are push-only (never a request)".to_string(),
                ))
            }
        };
        c.finish()?;
        Ok(req)
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET result: `Some(value)` or `None` for absent/deleted keys.
    Value(Option<Vec<u8>>),
    /// PUT/DELETE/BATCH acknowledgement: the write is logged and durable.
    Ok,
    /// SCAN result, ascending by key.
    Entries(Vec<ScanEntry>),
    /// STATS result: Prometheus text exposition.
    Stats(String),
    /// TRACE result: Chrome trace-event JSON of drained spans.
    Trace(String),
    /// The request failed server-side.
    Err(String),
    /// REPL_SUBSCRIBE accepted: the range the leader's in-memory
    /// replication log still covers. If the subscriber's resume point is
    /// older than `log_start - 1` it must snapshot-catch-up first.
    ReplSubscribed {
        /// Oldest sequence number still retained in the replication log
        /// (0 when the log has never truncated).
        log_start: u64,
        /// Highest sequence number published so far (0 when empty).
        last: u64,
        /// The leader's current epoch; the subscriber adopts it.
        epoch: u64,
    },
    /// Pushed record batches (empty = heartbeat / liveness probe). Every
    /// frame carries the leader's epoch so a follower that has adopted a
    /// newer one refuses a stale leader's records immediately.
    ReplRecords {
        /// The sending leader's epoch at push time.
        epoch: u64,
        /// Record batches, oldest first (empty = heartbeat).
        batches: Vec<ReplBatch>,
    },
    /// SNAPSHOT_FETCH result: a serialized pool snapshot image.
    Snapshot(Vec<u8>),
    /// A mutation was refused because this node is a follower; the
    /// payload hints where the leader lives (possibly empty).
    NotLeader {
        /// The refusing node's current epoch — clients ignore hints from
        /// responses older than the newest epoch they have seen.
        epoch: u64,
        /// Believed leader address (possibly empty mid-election).
        hint: String,
    },
    /// A request was refused because this node is a *deposed* leader
    /// fenced by a newer epoch (split-brain protection).
    StaleEpoch {
        /// The refusing node's current (newer) epoch.
        epoch: u64,
        /// Believed leader address (possibly empty).
        hint: String,
    },
    /// A quorum-acked mutation was refused before entering the engine:
    /// the leader cannot currently reach a majority of its group.
    QuorumLost {
        /// Reachable members, counting the leader itself.
        have: u32,
        /// Members required for a majority.
        need: u32,
    },
    /// In-band backpressure advisory (always request id 0): the server
    /// stopped reading this connection because its request queue or
    /// response buffer hit the configured cap. Purely informational —
    /// clients skip it during positional response matching and keep
    /// draining responses, which is what releases the pressure.
    Backpressure {
        /// Requests queued on the connection when it was paused.
        queued: u32,
    },
    /// REPL_VOTE result.
    Vote {
        /// Whether the vote was granted (always `false` for probes).
        granted: bool,
        /// The voter's current epoch (after observing the request's).
        epoch: u64,
        /// The voter's highest applied sequence number.
        last_seq: u64,
        /// Whether the voter currently believes its leader is alive
        /// (`true` when the voter *is* a leader).
        leader_live: bool,
        /// The voter's believed leader address (possibly empty).
        leader_hint: String,
    },
}

impl Response {
    /// The wire opcode for this response to a request with `req_op`.
    pub fn opcode(&self, req_op: Opcode) -> u8 {
        match self {
            Response::Err(_) => OP_ERR | RESPONSE_BIT,
            Response::NotLeader { .. } => OP_NOT_LEADER | RESPONSE_BIT,
            Response::StaleEpoch { .. } => OP_STALE_EPOCH | RESPONSE_BIT,
            Response::QuorumLost { .. } => OP_QUORUM_LOST | RESPONSE_BIT,
            Response::Backpressure { .. } => OP_BACKPRESSURE | RESPONSE_BIT,
            Response::ReplRecords { .. } => Opcode::ReplRecords as u8 | RESPONSE_BIT,
            _ => req_op as u8 | RESPONSE_BIT,
        }
    }

    /// Serializes the body.
    pub fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Value(v) => match v {
                Some(v) => {
                    buf.push(1);
                    put_bytes(buf, v);
                }
                None => buf.push(0),
            },
            Response::Ok => {}
            Response::Entries(entries) => {
                buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    put_bytes(buf, &e.key);
                    put_bytes(buf, &e.value);
                }
            }
            Response::Stats(text) | Response::Trace(text) => put_bytes(buf, text.as_bytes()),
            Response::Err(msg) => put_bytes(buf, msg.as_bytes()),
            Response::NotLeader { epoch, hint } | Response::StaleEpoch { epoch, hint } => {
                buf.extend_from_slice(&epoch.to_le_bytes());
                put_bytes(buf, hint.as_bytes());
            }
            Response::QuorumLost { have, need } => {
                buf.extend_from_slice(&have.to_le_bytes());
                buf.extend_from_slice(&need.to_le_bytes());
            }
            Response::Backpressure { queued } => {
                buf.extend_from_slice(&queued.to_le_bytes());
            }
            Response::ReplSubscribed {
                log_start,
                last,
                epoch,
            } => {
                buf.extend_from_slice(&log_start.to_le_bytes());
                buf.extend_from_slice(&last.to_le_bytes());
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
            Response::ReplRecords { epoch, batches } => {
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&(batches.len() as u32).to_le_bytes());
                for b in batches {
                    buf.extend_from_slice(&b.seq_first.to_le_bytes());
                    buf.extend_from_slice(&b.seq_last.to_le_bytes());
                    put_bytes(buf, &b.bytes);
                }
            }
            Response::Snapshot(bytes) => put_bytes(buf, bytes),
            Response::Vote {
                granted,
                epoch,
                last_seq,
                leader_live,
                leader_hint,
            } => {
                buf.push(u8::from(*granted));
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&last_seq.to_le_bytes());
                buf.push(u8::from(*leader_live));
                put_bytes(buf, leader_hint.as_bytes());
            }
        }
    }

    /// Parses a response frame's body given its wire opcode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] for truncated or malformed bodies.
    pub fn decode(opcode: u8, body: &[u8]) -> Result<Response> {
        if opcode & RESPONSE_BIT == 0 {
            return Err(Error::Corruption(format!(
                "response frame without response bit: {opcode:#x}"
            )));
        }
        let base = opcode & !RESPONSE_BIT;
        let mut c = Cursor { buf: body, pos: 0 };
        let resp = if base == OP_ERR {
            Response::Err(String::from_utf8_lossy(&c.take_bytes()?).into_owned())
        } else if base == OP_NOT_LEADER {
            Response::NotLeader {
                epoch: c.take_u64()?,
                hint: String::from_utf8_lossy(&c.take_bytes()?).into_owned(),
            }
        } else if base == OP_STALE_EPOCH {
            Response::StaleEpoch {
                epoch: c.take_u64()?,
                hint: String::from_utf8_lossy(&c.take_bytes()?).into_owned(),
            }
        } else if base == OP_QUORUM_LOST {
            Response::QuorumLost {
                have: c.take_u32()?,
                need: c.take_u32()?,
            }
        } else if base == OP_BACKPRESSURE {
            Response::Backpressure {
                queued: c.take_u32()?,
            }
        } else {
            let op = Opcode::from_u8(base)
                .ok_or_else(|| Error::Corruption(format!("unknown response opcode {base:#x}")))?;
            match op {
                Opcode::Get => match c.take_u8()? {
                    0 => Response::Value(None),
                    1 => Response::Value(Some(c.take_bytes()?)),
                    other => {
                        return Err(Error::Corruption(format!("bad GET presence byte {other}")))
                    }
                },
                Opcode::Put | Opcode::Delete | Opcode::Batch => Response::Ok,
                Opcode::Scan => {
                    let n = c.take_u32()? as usize;
                    let mut entries = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        let key = c.take_bytes()?;
                        let value = c.take_bytes()?;
                        entries.push(ScanEntry { key, value });
                    }
                    Response::Entries(entries)
                }
                Opcode::Stats => {
                    Response::Stats(String::from_utf8_lossy(&c.take_bytes()?).into_owned())
                }
                Opcode::Trace => {
                    Response::Trace(String::from_utf8_lossy(&c.take_bytes()?).into_owned())
                }
                Opcode::ReplSubscribe => Response::ReplSubscribed {
                    log_start: c.take_u64()?,
                    last: c.take_u64()?,
                    epoch: c.take_u64()?,
                },
                Opcode::ReplRecords => {
                    let epoch = c.take_u64()?;
                    let n = c.take_u32()? as usize;
                    let mut batches = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        let seq_first = c.take_u64()?;
                        let seq_last = c.take_u64()?;
                        let bytes = c.take_bytes()?;
                        batches.push(ReplBatch {
                            seq_first,
                            seq_last,
                            bytes,
                        });
                    }
                    Response::ReplRecords { epoch, batches }
                }
                // A ReplAck never gets a real response; decoding one (e.g.
                // in a test harness echo) degrades to a bare Ok.
                Opcode::ReplAck => Response::Ok,
                Opcode::SnapshotFetch => Response::Snapshot(c.take_bytes()?),
                Opcode::ReplVote => Response::Vote {
                    granted: c.take_u8()? != 0,
                    epoch: c.take_u64()?,
                    last_seq: c.take_u64()?,
                    leader_live: c.take_u8()? != 0,
                    leader_hint: String::from_utf8_lossy(&c.take_bytes()?).into_owned(),
                },
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Writes one v2 frame (`len | version | opcode | id | trace | body |
/// crc`). The trace context is the calling thread's current one (see
/// [`trace::current`]) — all-zero when tracing is off, so the header cost
/// is 9 constant bytes and no atomics beyond one relaxed load.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_frame<W: Write>(w: &mut W, opcode: u8, id: u32, body: &[u8]) -> std::io::Result<()> {
    let ctx = trace::current();
    let mut head = [0u8; 4 + HEADER_BYTES_V2];
    let len = (HEADER_BYTES_V2 + body.len() + 4) as u32;
    head[0..4].copy_from_slice(&len.to_le_bytes());
    head[4] = PROTO_VERSION;
    head[5] = opcode;
    head[6..10].copy_from_slice(&id.to_le_bytes());
    head[10..18].copy_from_slice(&ctx.trace_id.to_le_bytes());
    head[18] = if ctx.sampled { TRACE_SAMPLED } else { 0 };
    let mut crc = crate::crc32::Crc32::new();
    crc.update(&head[4..]);
    crc.update(body);
    w.write_all(&head)?;
    w.write_all(body)?;
    w.write_all(&crc.finish().to_le_bytes())
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Wire opcode (response bit included for responses).
    pub opcode: u8,
    /// Client-chosen request id, echoed in responses.
    pub id: u32,
    /// Trace id propagated from the client (0 on v1 frames / untraced).
    pub trace_id: u64,
    /// Whether the request is sampled for tracing.
    pub sampled: bool,
    /// Frame body (between header and CRC).
    pub body: Vec<u8>,
}

/// Reads one frame; `Ok(None)` means the peer closed the stream cleanly
/// (EOF at a frame boundary).
///
/// A read timeout (`WouldBlock`/`TimedOut`) **before the first byte** of a
/// frame surfaces as [`Error::Io`], letting servers poll a shutdown flag
/// between frames; once any byte of a frame has been consumed the read
/// retries through timeouts, because abandoning a half-read frame would
/// desynchronize the stream.
///
/// # Errors
///
/// Returns [`Error::Io`] for transport failures and [`Error::Corruption`]
/// for CRC mismatches, bad versions and oversized or truncated frames.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    check_frame_len(len)?;
    let mut rest = vec![0u8; len];
    read_exact_retry(r, &mut rest)?;
    decode_frame_rest(len, &rest).map(Some)
}

/// Validates the length prefix of a frame before its body is available.
fn check_frame_len(len: usize) -> Result<()> {
    if len < HEADER_BYTES_V1 + 4 {
        return Err(Error::Corruption(format!("frame too short: {len} bytes")));
    }
    if len > MAX_FRAME_BYTES {
        return Err(Error::Corruption(format!("frame too large: {len} bytes")));
    }
    Ok(())
}

/// Decodes everything after the length prefix (header + body + CRC) into a
/// [`Frame`]. Shared by the blocking [`read_frame`] and the incremental
/// [`FrameDecoder`] so both paths accept and reject byte-identical input.
fn decode_frame_rest(len: usize, rest: &[u8]) -> Result<Frame> {
    debug_assert_eq!(rest.len(), len);
    let (payload, crc_bytes) = rest.split_at(len - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte crc"));
    if crc32(payload) != want {
        return Err(Error::Corruption("frame crc mismatch".to_string()));
    }
    // v1 peers are still accepted: their frames simply carry no trace
    // context.
    let (header_bytes, trace_id, sampled) = match payload[0] {
        1 => (HEADER_BYTES_V1, 0, false),
        2 => {
            if payload.len() < HEADER_BYTES_V2 {
                return Err(Error::Corruption(format!(
                    "v2 frame too short: {len} bytes"
                )));
            }
            let trace_id = u64::from_le_bytes(payload[6..14].try_into().expect("8-byte trace id"));
            (HEADER_BYTES_V2, trace_id, payload[14] & TRACE_SAMPLED != 0)
        }
        v => {
            return Err(Error::Corruption(format!(
                "unsupported protocol version {v}"
            )));
        }
    };
    let opcode = payload[1];
    let id = u32::from_le_bytes(payload[2..6].try_into().expect("4-byte id"));
    Ok(Frame {
        opcode,
        id,
        trace_id,
        sampled,
        body: payload[header_bytes..].to_vec(),
    })
}

/// Incremental frame decoder for non-blocking transports.
///
/// Bytes arrive in arbitrary chunks via [`feed`](Self::feed);
/// [`next_frame`](Self::next_frame) yields each complete frame exactly as
/// the blocking [`read_frame`] would have decoded it (same CRC, version
/// and length validation — see `decode_frame_rest`). A decode error is
/// sticky in practice: the stream is desynchronized, so callers must drop
/// the connection, matching the blocking path's behavior.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily to keep feeds O(1)
    /// amortized.
    start: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet decoded into frames.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Consumes the decoder, returning the residual undecoded bytes.
    /// Used when a connection is handed off from the event loop to a
    /// dedicated blocking reader (replication streams): the residue is
    /// chained in front of the socket so no bytes are lost.
    #[must_use]
    pub fn into_residual(mut self) -> Vec<u8> {
        self.buf.drain(..self.start);
        self.buf
    }

    /// Decodes the next complete frame, or `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Same corruption errors as [`read_frame`]; the connection must be
    /// dropped afterwards.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4-byte len")) as usize;
        check_frame_len(len)?;
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let frame = decode_frame_rest(len, &avail[4..4 + len])?;
        self.start += 4 + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(frame))
    }

    fn compact(&mut self) {
        // Reclaim the consumed prefix once it dominates the buffer, so a
        // long-lived connection doesn't grow its buffer without bound.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Serializes and writes one request frame.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_request<W: Write>(w: &mut W, id: u32, req: &Request) -> std::io::Result<()> {
    let mut body = Vec::new();
    req.encode_body(&mut body);
    write_frame(w, req.opcode() as u8, id, &body)
}

/// Serializes and writes one response frame.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_response<W: Write>(
    w: &mut W,
    id: u32,
    req_op: Opcode,
    resp: &Response,
) -> std::io::Result<()> {
    let mut body = Vec::new();
    resp.encode_body(&mut body);
    write_frame(w, resp.opcode(req_op), id, &body)
}

/// Reads to fill `buf`; returns `false` on EOF before the first byte.
/// Timeouts before the first byte propagate (poll point); after it they
/// retry, as the frame is already partially consumed.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(Error::Corruption("connection closed mid-frame".to_string())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if filled > 0 && is_timeout(&e) => {}
            Err(e) => return Err(Error::Io(e)),
        }
    }
    Ok(true)
}

/// Fills `buf`, retrying through timeouts (used past the length prefix,
/// where the frame is committed).
fn read_exact_retry<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(Error::Corruption("connection closed mid-frame".to_string())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted || is_timeout(&e) => {}
            Err(e) => return Err(Error::Io(e)),
        }
    }
    Ok(())
}

/// Is this a read-timeout error (`WouldBlock` on Unix, `TimedOut` on
/// Windows)?
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
    buf.extend_from_slice(b);
}

/// Bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take_u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| Error::Corruption("truncated frame body".to_string()))?;
        self.pos += 1;
        Ok(b)
    }

    fn take_u32(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Error::Corruption("truncated frame body".to_string()))?;
        self.pos = end;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn take_u64(&mut self) -> Result<u64> {
        let end = self.pos + 8;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Error::Corruption("truncated frame body".to_string()))?;
        self.pos = end;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn take_bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.take_u32()? as usize;
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::Corruption("truncated frame body".to_string()))?;
        let out = self.buf[self.pos..end].to_vec();
        self.pos = end;
        Ok(out)
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(Error::Corruption(format!(
                "{} trailing bytes in frame body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut wire = Vec::new();
        write_request(&mut wire, 7, &req).unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(frame.id, 7);
        assert_eq!(Request::decode(frame.opcode, &frame.body).unwrap(), req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Get { key: b"k".to_vec() });
        round_trip_request(Request::Put {
            key: b"k".to_vec(),
            value: vec![0xAB; 300],
        });
        round_trip_request(Request::Delete { key: Vec::new() });
        round_trip_request(Request::Scan {
            start: b"a".to_vec(),
            limit: 99,
        });
        round_trip_request(Request::Batch {
            ops: vec![
                (b"a".to_vec(), b"1".to_vec(), OpKind::Put),
                (b"b".to_vec(), Vec::new(), OpKind::Delete),
            ],
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::TraceDump);
        round_trip_request(Request::ReplSubscribe { from: 42, epoch: 3 });
        round_trip_request(Request::ReplAck {
            offset: u64::MAX,
            epoch: 7,
        });
        round_trip_request(Request::SnapshotFetch);
        round_trip_request(Request::ReplVote {
            epoch: 5,
            last_seq: 1234,
            candidate: "127.0.0.1:7002".to_string(),
        });
        round_trip_request(Request::ReplVote {
            epoch: 0,
            last_seq: 0,
            candidate: String::new(),
        });
    }

    #[test]
    fn repl_records_is_push_only() {
        let err = Request::decode(Opcode::ReplRecords as u8, &[]).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(err.to_string().contains("push-only"), "{err}");
    }

    #[test]
    fn v1_frames_without_trace_context_still_accepted() {
        // Hand-craft a v1 GET frame: [len][ver=1][op][id][body][crc].
        let mut body = Vec::new();
        Request::Get { key: b"k".to_vec() }.encode_body(&mut body);
        let mut payload = vec![1u8, Opcode::Get as u8];
        payload.extend_from_slice(&7u32.to_le_bytes());
        payload.extend_from_slice(&body);
        let mut wire = Vec::new();
        wire.extend_from_slice(&((payload.len() + 4) as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        wire.extend_from_slice(&crc32(&payload).to_le_bytes());

        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(frame.id, 7);
        assert_eq!(frame.trace_id, 0);
        assert!(!frame.sampled);
        assert_eq!(
            Request::decode(frame.opcode, &frame.body).unwrap(),
            Request::Get { key: b"k".to_vec() }
        );
    }

    #[test]
    fn trace_context_rides_the_frame_header() {
        let _g = trace::exclusive();
        trace::enable(1 << 8, 1, false);
        let ctx = trace::TraceCtx {
            trace_id: 0xDEAD_BEEF_0042,
            span_id: 9,
            sampled: true,
        };
        let mut wire = Vec::new();
        {
            let _c = trace::with_ctx(ctx);
            write_request(&mut wire, 1, &Request::Stats).unwrap();
        }
        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(frame.trace_id, 0xDEAD_BEEF_0042);
        assert!(frame.sampled);

        // Without a context the header carries zeros.
        let mut wire2 = Vec::new();
        write_request(&mut wire2, 2, &Request::Stats).unwrap();
        let frame2 = read_frame(&mut wire2.as_slice()).unwrap().unwrap();
        assert_eq!(frame2.trace_id, 0);
        assert!(!frame2.sampled);
    }

    fn round_trip_response(req_op: Opcode, resp: Response) {
        let mut wire = Vec::new();
        write_response(&mut wire, 3, req_op, &resp).unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(frame.id, 3);
        assert_eq!(Response::decode(frame.opcode, &frame.body).unwrap(), resp);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Opcode::Get, Response::Value(Some(b"v".to_vec())));
        round_trip_response(Opcode::Get, Response::Value(None));
        round_trip_response(Opcode::Put, Response::Ok);
        round_trip_response(
            Opcode::Scan,
            Response::Entries(vec![ScanEntry {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }]),
        );
        round_trip_response(Opcode::Stats, Response::Stats("# HELP x\n".to_string()));
        round_trip_response(
            Opcode::Trace,
            Response::Trace("{\"traceEvents\":[]}".to_string()),
        );
        round_trip_response(Opcode::Put, Response::Err("boom".to_string()));
        round_trip_response(
            Opcode::ReplSubscribe,
            Response::ReplSubscribed {
                log_start: 10,
                last: 99,
                epoch: 2,
            },
        );
        round_trip_response(
            Opcode::ReplRecords,
            Response::ReplRecords {
                epoch: 4,
                batches: vec![
                    ReplBatch {
                        seq_first: 1,
                        seq_last: 3,
                        bytes: vec![0xAA; 37],
                    },
                    ReplBatch {
                        seq_first: 4,
                        seq_last: 4,
                        bytes: vec![0xBB; 9],
                    },
                ],
            },
        );
        round_trip_response(
            Opcode::ReplRecords,
            Response::ReplRecords {
                epoch: 1,
                batches: Vec::new(),
            },
        );
        round_trip_response(Opcode::SnapshotFetch, Response::Snapshot(vec![7; 1024]));
        round_trip_response(
            Opcode::Put,
            Response::NotLeader {
                epoch: 3,
                hint: "127.0.0.1:7001".to_string(),
            },
        );
        round_trip_response(
            Opcode::Put,
            Response::StaleEpoch {
                epoch: 9,
                hint: "127.0.0.1:7002".to_string(),
            },
        );
        round_trip_response(Opcode::Put, Response::QuorumLost { have: 1, need: 2 });
        round_trip_response(
            Opcode::ReplVote,
            Response::Vote {
                granted: true,
                epoch: 6,
                last_seq: 321,
                leader_live: false,
                leader_hint: "127.0.0.1:7000".to_string(),
            },
        );
    }

    #[test]
    fn not_leader_is_distinct_from_err() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            1,
            Opcode::Put,
            &Response::NotLeader {
                epoch: 0,
                hint: String::new(),
            },
        )
        .unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(frame.opcode, OP_NOT_LEADER | RESPONSE_BIT);
        assert_eq!(
            Response::decode(frame.opcode, &frame.body).unwrap(),
            Response::NotLeader {
                epoch: 0,
                hint: String::new()
            }
        );
    }

    #[test]
    fn fencing_responses_have_dedicated_opcodes() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            1,
            Opcode::Put,
            &Response::StaleEpoch {
                epoch: 5,
                hint: String::new(),
            },
        )
        .unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(frame.opcode, OP_STALE_EPOCH | RESPONSE_BIT);

        let mut wire = Vec::new();
        write_response(
            &mut wire,
            2,
            Opcode::Put,
            &Response::QuorumLost { have: 2, need: 3 },
        )
        .unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(frame.opcode, OP_QUORUM_LOST | RESPONSE_BIT);
    }

    #[test]
    fn backpressure_has_dedicated_opcode_and_round_trips() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            0,
            Opcode::Put,
            &Response::Backpressure { queued: 128 },
        )
        .unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(frame.opcode, OP_BACKPRESSURE | RESPONSE_BIT);
        assert_eq!(frame.id, 0);
        assert_eq!(
            Response::decode(frame.opcode, &frame.body).unwrap(),
            Response::Backpressure { queued: 128 }
        );
    }

    #[test]
    fn incremental_decoder_matches_blocking_path_per_byte() {
        let mut wire = Vec::new();
        write_request(&mut wire, 1, &Request::Get { key: b"k".to_vec() }).unwrap();
        write_response(
            &mut wire,
            1,
            Opcode::Get,
            &Response::Value(Some(b"v".to_vec())),
        )
        .unwrap();
        write_request(&mut wire, 2, &Request::Stats).unwrap();

        let mut expected = Vec::new();
        let mut r = wire.as_slice();
        while let Some(f) = read_frame(&mut r).unwrap() {
            expected.push(f);
        }

        // Feed one byte at a time: frames must come out identical.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            dec.feed(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, expected);
        assert_eq!(dec.buffered(), 0);
        assert!(dec.into_residual().is_empty());
    }

    #[test]
    fn incremental_decoder_rejects_corrupt_crc() {
        let mut wire = Vec::new();
        write_request(&mut wire, 1, &Request::Stats).unwrap();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x40;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn incremental_decoder_keeps_residual_bytes() {
        let mut wire = Vec::new();
        write_request(&mut wire, 1, &Request::Stats).unwrap();
        let whole = wire.len();
        write_request(&mut wire, 2, &Request::Stats).unwrap();
        // Feed the first frame plus half of the second.
        let cut = whole + (wire.len() - whole) / 2;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        assert!(dec.next_frame().unwrap().is_some());
        assert_eq!(dec.buffered(), cut - whole);
        assert_eq!(dec.into_residual(), wire[whole..cut].to_vec());
    }

    #[test]
    fn eof_at_boundary_is_clean() {
        assert!(read_frame(&mut (&[] as &[u8])).unwrap().is_none());
    }

    #[test]
    fn eof_mid_frame_is_corruption() {
        let mut wire = Vec::new();
        write_request(&mut wire, 1, &Request::Stats).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn crc_flip_detected() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            1,
            &Request::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        )
        .unwrap();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x40;
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut wire = Vec::new();
        write_request(&mut wire, 1, &Request::Stats).unwrap();
        // Rewrite the version byte and fix up the CRC.
        wire[4] = 9;
        let len = u32::from_le_bytes(wire[0..4].try_into().unwrap()) as usize;
        let crc = crc32(&wire[4..4 + len - 4]);
        let at = 4 + len - 4;
        wire[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Vec::new();
        Request::Get { key: b"k".to_vec() }.encode_body(&mut body);
        body.push(0);
        assert!(Request::decode(Opcode::Get as u8, &body).is_err());
    }
}
