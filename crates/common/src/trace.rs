//! Low-overhead end-to-end request tracing with critical-path spans.
//!
//! A process-global tracer collects [`SpanRecord`]s — timed, parented
//! intervals such as *commit-queue wait*, *WAL append* or *per-level
//! probe* — into a bounded lock-free [`MpmcRing`]. Trace context travels
//! in a thread-local [`TraceCtx`] (installed by the server per request,
//! by the client per round trip, or implicitly by the engine for
//! direct-drive harnesses), so instrumentation sites never thread ids
//! through APIs: [`span`] reads the context, allocates a span id, and the
//! returned [`SpanGuard`] restores the parent and publishes the record on
//! drop.
//!
//! Cost model: when tracing is disabled every instrumentation site is a
//! single relaxed atomic load and a branch; when enabled but a request is
//! unsampled it is that load plus a thread-local read. Emission never
//! blocks — a full ring drops the span and bumps a saturating counter
//! ([`dropped_spans`]).
//!
//! Across the wire the context is carried by the protocol-v2 frame header
//! (trace id + sampled flag, see [`proto`](crate::proto)); collected spans
//! export as Chrome trace-event JSON ([`to_chrome_json`], loadable in
//! Perfetto or `chrome://tracing`) or as a human-readable slow-request
//! log ([`slow_log`]).
//!
//! The tracer is global state: concurrently running tests that enable it
//! would interfere, so trace tests serialize through [`exclusive`], which
//! also disables tracing when the guard drops (even on panic).

use crate::ring::MpmcRing;
use parking_lot::{Mutex, MutexGuard};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Which process track a span belongs to in the Chrome trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanLayer {
    /// Client-side round-trip spans.
    Client,
    /// Server dispatch and shard-router spans.
    Server,
    /// Engine request-path spans (write pipeline, read probes).
    Engine,
    /// Background work (flush, compaction, swizzle).
    Background,
}

impl SpanLayer {
    /// Synthetic process id used in the Chrome trace export.
    pub fn pid(&self) -> u32 {
        match self {
            SpanLayer::Client => 1,
            SpanLayer::Server => 2,
            SpanLayer::Engine => 3,
            SpanLayer::Background => 4,
        }
    }

    /// Track name shown by trace viewers.
    pub fn label(&self) -> &'static str {
        match self {
            SpanLayer::Client => "client",
            SpanLayer::Server => "server",
            SpanLayer::Engine => "engine",
            SpanLayer::Background => "background",
        }
    }
}

/// Named request-path phases. Every span carries exactly one kind, so
/// critical-path attribution can bucket wall time without string parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Whole client round trip: request buffered until response decoded.
    ClientRequest = 1,
    /// Client-side request encode + socket write.
    ClientSend,
    /// Client-side blocking wait for the response frame.
    ClientRecv,
    /// Whole server-side request: decode, execute, encode response.
    SrvRequest,
    /// Request body decode.
    SrvDecode,
    /// Engine dispatch (everything between decode and response encode).
    SrvExecute,
    /// Shard-router fan-out of a scan to every shard.
    RouterFanout,
    /// Shard-router k-way merge of per-shard scan runs.
    RouterMerge,
    /// Commit-queue wait: enqueue until the group commit completes
    /// (includes the leader's WAL append and the member's insert hand-off).
    CommitWait,
    /// Leader's combined WAL record append for one commit group.
    WalAppend,
    /// Skip-list insert of this request's operations into the MemTable.
    MemtableInsert,
    /// Writer blocked on MemTable rotation (interval stall); `arg` links
    /// the flush span being waited on.
    RotationStall,
    /// Read probe of the active + immutable MemTables.
    MemtableProbe,
    /// Read probe of one PMTable level; `arg` is the level.
    LevelProbe,
    /// Read probe of the DRAM repository (final level).
    RepoProbe,
    /// Instant marker: a bloom filter skipped a table; `arg` is the level.
    BloomSkip,
    /// Background MemTable flush; `arg` is bytes flushed.
    Flush,
    /// Background compaction; `arg` packs `level | (zero_copy as u64) << 32`.
    Compaction,
    /// Pointer swizzling during a one-piece flush.
    Swizzle,
}

impl SpanKind {
    /// Stable lowercase label used in exports and tables.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::ClientRequest => "client_request",
            SpanKind::ClientSend => "client_send",
            SpanKind::ClientRecv => "client_recv",
            SpanKind::SrvRequest => "srv_request",
            SpanKind::SrvDecode => "srv_decode",
            SpanKind::SrvExecute => "srv_execute",
            SpanKind::RouterFanout => "router_fanout",
            SpanKind::RouterMerge => "router_merge",
            SpanKind::CommitWait => "commit_wait",
            SpanKind::WalAppend => "wal_append",
            SpanKind::MemtableInsert => "memtable_insert",
            SpanKind::RotationStall => "rotation_stall",
            SpanKind::MemtableProbe => "memtable_probe",
            SpanKind::LevelProbe => "level_probe",
            SpanKind::RepoProbe => "repo_probe",
            SpanKind::BloomSkip => "bloom_skip",
            SpanKind::Flush => "flush",
            SpanKind::Compaction => "compaction",
            SpanKind::Swizzle => "swizzle",
        }
    }

    /// The export track this kind belongs to.
    pub fn layer(&self) -> SpanLayer {
        match self {
            SpanKind::ClientRequest | SpanKind::ClientSend | SpanKind::ClientRecv => {
                SpanLayer::Client
            }
            SpanKind::SrvRequest
            | SpanKind::SrvDecode
            | SpanKind::SrvExecute
            | SpanKind::RouterFanout
            | SpanKind::RouterMerge => SpanLayer::Server,
            SpanKind::CommitWait
            | SpanKind::WalAppend
            | SpanKind::MemtableInsert
            | SpanKind::RotationStall
            | SpanKind::MemtableProbe
            | SpanKind::LevelProbe
            | SpanKind::RepoProbe
            | SpanKind::BloomSkip => SpanLayer::Engine,
            SpanKind::Flush | SpanKind::Compaction | SpanKind::Swizzle => SpanLayer::Background,
        }
    }
}

/// One finished span. `Copy` and scalar-only so emission never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace the span belongs to (0 = background, no owning request).
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Enclosing span id, or 0 for a root.
    pub parent_id: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the process trace epoch.
    pub end_ns: u64,
    /// Kind-specific scalar annotation (level, bytes, linked span id).
    pub arg: u64,
    /// Small per-thread id (assigned on first emission per thread).
    pub tid: u32,
    /// What phase the span measures.
    pub kind: SpanKind,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Per-thread trace context: which trace (if any) the current request
/// belongs to and which span is innermost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id shared by every span of one request.
    pub trace_id: u64,
    /// Innermost open span (the parent for new spans); 0 at the root.
    pub span_id: u64,
    /// Whether spans should be recorded for this request.
    pub sampled: bool,
}

impl TraceCtx {
    /// No active trace.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
        sampled: false,
    };
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static IMPLICIT_ROOTS: AtomicBool = AtomicBool::new(false);
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);
static SAMPLE_COUNTER: AtomicU64 = AtomicU64::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
/// Drop count at the last `enable`, so `dropped_spans` reports per-session.
static DROPPED_BASE: AtomicU64 = AtomicU64::new(0);
static RING: OnceLock<MpmcRing<SpanRecord>> = OnceLock::new();

thread_local! {
    static CTX: Cell<TraceCtx> = const { Cell::new(TraceCtx::NONE) };
    static TID: Cell<u32> = const { Cell::new(0) };
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first tracer touch).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

fn tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// One sampling draw: true for 1-in-`sample_every` calls.
fn sample() -> bool {
    let every = SAMPLE_EVERY.load(Ordering::Relaxed).max(1);
    SAMPLE_COUNTER
        .fetch_add(1, Ordering::Relaxed)
        .is_multiple_of(every)
}

fn push(rec: SpanRecord) {
    if let Some(ring) = RING.get() {
        ring.push(rec);
    }
}

/// Turns the tracer on.
///
/// `capacity` sizes the span ring **on the first enable in the process**
/// (later enables reuse the existing ring, drained of stale spans).
/// `sample_every` records 1 in N new traces. With `implicit_roots`, spans
/// opened outside any request context start their own trace — this is how
/// direct-drive harnesses (repro, lincheck, crash_fuzz) trace engine
/// internals without a client; servers leave it off so unsampled requests
/// stay free.
pub fn enable(capacity: usize, sample_every: u64, implicit_roots: bool) {
    let ring = RING.get_or_init(|| MpmcRing::with_capacity(capacity));
    ring.drain();
    DROPPED_BASE.store(ring.dropped(), Ordering::Relaxed);
    SAMPLE_EVERY.store(sample_every.max(1), Ordering::Relaxed);
    SAMPLE_COUNTER.store(0, Ordering::Relaxed);
    IMPLICIT_ROOTS.store(implicit_roots, Ordering::Relaxed);
    // Initialize the epoch before the first span so timestamps are small.
    let _ = epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Turns the tracer off. Already-collected spans stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether the tracer is currently collecting.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Removes and returns every collected span (FIFO by completion).
pub fn drain() -> Vec<SpanRecord> {
    RING.get().map(MpmcRing::drain).unwrap_or_default()
}

/// Spans dropped on ring overflow since the last [`enable`].
pub fn dropped_spans() -> u64 {
    RING.get()
        .map(|r| {
            r.dropped()
                .saturating_sub(DROPPED_BASE.load(Ordering::Relaxed))
        })
        .unwrap_or(0)
}

/// The calling thread's current trace context ([`TraceCtx::NONE`] when
/// tracing is disabled).
pub fn current() -> TraceCtx {
    if !ENABLED.load(Ordering::Relaxed) {
        return TraceCtx::NONE;
    }
    CTX.with(Cell::get)
}

/// Starts a new trace (client side): draws the sampling decision and, if
/// sampled, allocates a trace id and a root span id. Does not touch the
/// thread-local context — pair with [`with_ctx`] or record manually via
/// [`record`].
pub fn begin_trace() -> TraceCtx {
    if !ENABLED.load(Ordering::Relaxed) || !sample() {
        return TraceCtx::NONE;
    }
    TraceCtx {
        trace_id: next_id(),
        span_id: next_id(),
        sampled: true,
    }
}

/// Installs `ctx` as the calling thread's trace context until the guard
/// drops (the previous context is restored). Used by the server to adopt
/// a frame's wire context and by the client around sends.
pub fn with_ctx(ctx: TraceCtx) -> CtxGuard {
    let prev = CTX.with(|c| c.replace(ctx));
    CtxGuard { prev }
}

/// RAII guard from [`with_ctx`]; restores the previous context on drop.
#[must_use]
pub struct CtxGuard {
    prev: TraceCtx,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

struct ActiveSpan {
    rec: SpanRecord,
    prev: TraceCtx,
}

/// An open span; publishes its record and restores the parent context
/// when dropped. Inactive (and near-free) when tracing is disabled or the
/// request is unsampled.
#[must_use]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    const INACTIVE: SpanGuard = SpanGuard { active: None };

    /// Whether this span is actually recording.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// This span's id (0 when inactive) — for cross-linking spans.
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.rec.span_id)
    }

    /// Sets the kind-specific scalar annotation.
    pub fn annotate(&mut self, arg: u64) {
        if let Some(a) = &mut self.active {
            a.rec.arg = arg;
        }
    }

    fn open(kind: SpanKind, trace_id: u64, parent: u64, prev: TraceCtx) -> SpanGuard {
        let span_id = next_id();
        CTX.with(|c| {
            c.set(TraceCtx {
                trace_id,
                span_id,
                sampled: true,
            })
        });
        SpanGuard {
            active: Some(ActiveSpan {
                rec: SpanRecord {
                    trace_id,
                    span_id,
                    parent_id: parent,
                    start_ns: now_ns(),
                    end_ns: 0,
                    arg: 0,
                    tid: tid(),
                    kind,
                },
                prev,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            CTX.with(|c| c.set(a.prev));
            let mut rec = a.rec;
            rec.end_ns = now_ns();
            push(rec);
        }
    }
}

/// Opens a span under the calling thread's context. Inactive when tracing
/// is disabled or the context is unsampled — unless implicit roots are on
/// (direct-drive harnesses), in which case an out-of-context span draws
/// its own sampling decision and starts a fresh trace.
pub fn span(kind: SpanKind) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard::INACTIVE;
    }
    let prev = CTX.with(Cell::get);
    let (trace_id, parent) = if prev.sampled {
        (prev.trace_id, prev.span_id)
    } else if IMPLICIT_ROOTS.load(Ordering::Relaxed) && sample() {
        (next_id(), 0)
    } else {
        return SpanGuard::INACTIVE;
    };
    SpanGuard::open(kind, trace_id, parent, prev)
}

/// Opens a background span (flush/compaction worker). Records whenever
/// tracing is enabled; top-level background spans use trace id 0 (their
/// own track), nested ones parent normally.
pub fn bg_span(kind: SpanKind) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard::INACTIVE;
    }
    let prev = CTX.with(Cell::get);
    let (trace_id, parent) = if prev.sampled {
        (prev.trace_id, prev.span_id)
    } else {
        (0, 0)
    };
    SpanGuard::open(kind, trace_id, parent, prev)
}

/// Records a zero-duration marker under the current context (no-op when
/// unsampled).
pub fn instant(kind: SpanKind, arg: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let ctx = CTX.with(Cell::get);
    if !ctx.sampled {
        return;
    }
    let now = now_ns();
    push(SpanRecord {
        trace_id: ctx.trace_id,
        span_id: next_id(),
        parent_id: ctx.span_id,
        start_ns: now,
        end_ns: now,
        arg,
        tid: tid(),
        kind,
    });
}

/// Publishes a fully specified span. Used where RAII scoping does not fit
/// (e.g. the client's pipelined round trips, where send and receive of
/// one request are separated by other frames). Pass `span_id` 0 to have
/// an id allocated; the id actually used is returned.
#[allow(clippy::too_many_arguments)]
pub fn record(
    kind: SpanKind,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start_ns: u64,
    end_ns: u64,
    arg: u64,
) -> u64 {
    if !ENABLED.load(Ordering::Relaxed) {
        return 0;
    }
    let span_id = if span_id == 0 { next_id() } else { span_id };
    push(SpanRecord {
        trace_id,
        span_id,
        parent_id,
        start_ns,
        end_ns,
        arg,
        tid: tid(),
        kind,
    });
    span_id
}

/// Serializes tracer tests and guarantees cleanup: while the returned
/// guard is alive no other thread can hold it, and dropping it (normally
/// or during a panic) disables tracing and drains leftovers.
pub fn exclusive() -> ExclusiveGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK.get_or_init(|| Mutex::new(())).lock();
    disable();
    drain();
    ExclusiveGuard { _guard: guard }
}

/// RAII guard from [`exclusive`]; disables tracing when dropped.
pub struct ExclusiveGuard {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for ExclusiveGuard {
    fn drop(&mut self) {
        disable();
        drain();
    }
}

/// Renders spans as Chrome trace-event JSON (the `traceEvents` array
/// format), loadable in Perfetto or `chrome://tracing`. Spans are placed
/// on one synthetic process per layer (client/server/engine/background)
/// and one track per recording thread.
pub fn to_chrome_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for layer in [
        SpanLayer::Client,
        SpanLayer::Server,
        SpanLayer::Engine,
        SpanLayer::Background,
    ] {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            layer.pid(),
            layer.label()
        ));
    }
    for s in spans {
        out.push(',');
        let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"trace\":\"{:#018x}\",\"span\":{},\
             \"parent\":{},\"arg\":{}}}}}",
            s.kind.label(),
            s.kind.layer().label(),
            s.kind.layer().pid(),
            s.tid,
            us(s.start_ns),
            us(s.dur_ns()),
            s.trace_id,
            s.span_id,
            s.parent_id,
            s.arg,
        ));
    }
    out.push_str("]}");
    out
}

/// The root spans of one trace (parent id 0), most significant first:
/// `ClientRequest` outranks `SrvRequest` outranks anything else.
fn root_rank(kind: SpanKind) -> u8 {
    match kind {
        SpanKind::ClientRequest => 0,
        SpanKind::SrvRequest => 1,
        _ => 2,
    }
}

/// Renders every trace whose root span lasted at least `threshold_ns` as
/// an indented span tree (slow-request log). Background spans (trace id
/// 0) are skipped. Traces print slowest first.
pub fn slow_log(spans: &[SpanRecord], threshold_ns: u64) -> String {
    use std::collections::HashMap;
    let mut traces: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for s in spans {
        if s.trace_id != 0 {
            traces.entry(s.trace_id).or_default().push(s);
        }
    }
    let mut slow: Vec<(u64, u64, Vec<&SpanRecord>)> = Vec::new();
    for (id, mut list) in traces {
        list.sort_by_key(|s| (root_rank(s.kind), s.start_ns));
        let Some(top) = list.iter().find(|s| s.parent_id == 0) else {
            continue;
        };
        let total = top.dur_ns();
        if total >= threshold_ns {
            slow.push((total, id, list));
        }
    }
    slow.sort_by_key(|s| std::cmp::Reverse(s.0));
    let mut out = String::new();
    for (total, id, list) in slow {
        out.push_str(&format!(
            "-- slow trace {id:#018x}: {:.1}us total\n",
            total as f64 / 1_000.0
        ));
        let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        for s in &list {
            children.entry(s.parent_id).or_default().push(s);
        }
        for v in children.values_mut() {
            v.sort_by_key(|s| s.start_ns);
        }
        // Iterative pre-order from the roots.
        let mut stack: Vec<(&SpanRecord, usize)> = children
            .get(&0)
            .map(|roots| roots.iter().rev().map(|s| (*s, 1)).collect())
            .unwrap_or_default();
        while let Some((s, depth)) = stack.pop() {
            out.push_str(&format!(
                "{:indent$}{} {:.1}us [tid {}]{}\n",
                "",
                s.kind.label(),
                s.dur_ns() as f64 / 1_000.0,
                s.tid,
                if s.arg != 0 {
                    format!(" arg={}", s.arg)
                } else {
                    String::new()
                },
                indent = depth * 2
            ));
            if let Some(kids) = children.get(&s.span_id) {
                for k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
    }
    out
}

/// Counts traces that form a complete client→engine tree: a
/// `ClientRequest` root, a `SrvRequest` on the same trace id, and at
/// least one engine-layer span. Used by smoke tests and `netbench`.
pub fn complete_tree_count(spans: &[SpanRecord]) -> usize {
    use std::collections::HashMap;
    #[derive(Default)]
    struct Seen {
        client: bool,
        server: bool,
        engine: bool,
    }
    let mut traces: HashMap<u64, Seen> = HashMap::new();
    for s in spans {
        if s.trace_id == 0 {
            continue;
        }
        let e = traces.entry(s.trace_id).or_default();
        match s.kind {
            SpanKind::ClientRequest => e.client = true,
            SpanKind::SrvRequest => e.server = true,
            k if k.layer() == SpanLayer::Engine => e.engine = true,
            _ => {}
        }
    }
    traces
        .values()
        .filter(|s| s.client && s.server && s.engine)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inactive_and_free() {
        let _g = exclusive();
        let s = span(SpanKind::WalAppend);
        assert!(!s.is_active());
        drop(s);
        assert!(drain().is_empty());
    }

    #[test]
    fn nested_spans_share_trace_and_parent_correctly() {
        let _g = exclusive();
        enable(1 << 10, 1, true);
        {
            let outer = span(SpanKind::CommitWait);
            let outer_id = outer.id();
            assert!(outer.is_active());
            {
                let inner = span(SpanKind::WalAppend);
                assert!(inner.is_active());
                assert_ne!(inner.id(), outer_id);
            }
            let _ = outer;
        }
        let spans = drain();
        assert_eq!(spans.len(), 2);
        // Inner drops first, so it drains first.
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.kind, SpanKind::WalAppend);
        assert_eq!(outer.kind, SpanKind::CommitWait);
        assert_eq!(inner.trace_id, outer.trace_id);
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(outer.parent_id, 0);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn sampling_skips_traces() {
        let _g = exclusive();
        enable(1 << 10, 1 << 30, true);
        // Burn the aligned draw so the rest are unsampled.
        let _ = begin_trace();
        for _ in 0..100 {
            let s = span(SpanKind::MemtableProbe);
            assert!(!s.is_active());
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn with_ctx_restores_previous_context() {
        let _g = exclusive();
        enable(1 << 10, 1, false);
        let ctx = TraceCtx {
            trace_id: 42,
            span_id: 7,
            sampled: true,
        };
        {
            let _c = with_ctx(ctx);
            assert_eq!(current().trace_id, 42);
            let s = span(SpanKind::SrvExecute);
            assert!(s.is_active());
        }
        assert_eq!(current(), TraceCtx::NONE);
        let spans = drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace_id, 42);
        assert_eq!(spans[0].parent_id, 7);
    }

    #[test]
    fn chrome_json_is_well_formed_and_has_metadata() {
        let _g = exclusive();
        enable(1 << 10, 1, true);
        {
            let mut s = span(SpanKind::LevelProbe);
            s.annotate(3);
        }
        let spans = drain();
        let json = to_chrome_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"level_probe\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"arg\":3"));
    }

    #[test]
    fn slow_log_dumps_only_slow_traces() {
        let _g = exclusive();
        enable(1 << 10, 1, false);
        record(SpanKind::ClientRequest, 5, 50, 0, 0, 2_000_000, 0);
        record(SpanKind::CommitWait, 5, 51, 50, 100, 1_900_000, 0);
        record(SpanKind::ClientRequest, 6, 60, 0, 0, 10_000, 0);
        let spans = drain();
        let log = slow_log(&spans, 1_000_000);
        assert!(log.contains("commit_wait"));
        assert!(log.contains("client_request 2000.0us"));
        assert!(
            !log.contains("10.0us"),
            "fast trace leaked into slow log:\n{log}"
        );
    }

    #[test]
    fn complete_tree_counting() {
        let _g = exclusive();
        enable(1 << 10, 1, false);
        record(SpanKind::ClientRequest, 9, 90, 0, 0, 100, 0);
        record(SpanKind::SrvRequest, 9, 91, 0, 10, 90, 0);
        record(SpanKind::MemtableProbe, 9, 92, 91, 20, 30, 0);
        record(SpanKind::ClientRequest, 10, 95, 0, 0, 100, 0);
        let spans = drain();
        assert_eq!(complete_tree_count(&spans), 1);
    }
}
