//! Keys, values, sequence numbers and operation kinds.

use std::fmt;

/// Monotonically increasing number assigned to every write.
///
/// Larger sequence numbers denote newer data; multi-version structures
/// (skip lists, SSTables) order duplicate keys by *descending* sequence
/// number so the freshest version is found first.
pub type SequenceNumber = u64;

/// The largest representable sequence number, used as the "read everything"
/// snapshot in lookups.
pub const MAX_SEQUENCE_NUMBER: SequenceNumber = u64::MAX;

/// The kind of a logged/stored operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// Insert or overwrite a key.
    Put = 0,
    /// Delete a key (a *tombstone*; physically removed during lazy-copy
    /// compaction / bottom-level LSM compaction).
    Delete = 1,
}

impl OpKind {
    /// Decodes an operation kind from its on-media byte.
    ///
    /// Returns `None` for unknown encodings so corruption is surfaced to the
    /// caller instead of being silently misinterpreted.
    pub fn from_u8(v: u8) -> Option<OpKind> {
        match v {
            0 => Some(OpKind::Put),
            1 => Some(OpKind::Delete),
            _ => None,
        }
    }

    /// Returns `true` if this kind is a tombstone.
    pub fn is_delete(self) -> bool {
        matches!(self, OpKind::Delete)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Put => f.write_str("put"),
            OpKind::Delete => f.write_str("delete"),
        }
    }
}

/// Compares two versioned entries in *multi-version order*:
/// keys ascending, then sequence numbers descending (newest first).
///
/// This is the order used inside PMTables (paper §4.3, Figure 5) and
/// SSTables, so that the first match for a key during a search is always
/// its newest version.
pub fn mv_cmp(
    a_key: &[u8],
    a_seq: SequenceNumber,
    b_key: &[u8],
    b_seq: SequenceNumber,
) -> std::cmp::Ordering {
    a_key.cmp(b_key).then(b_seq.cmp(&a_seq))
}

/// A borrowed view of one stored entry, used by iterators across the
/// workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryRef<'a> {
    /// User key bytes.
    pub key: &'a [u8],
    /// Value bytes (empty for tombstones).
    pub value: &'a [u8],
    /// Sequence number of the write.
    pub seq: SequenceNumber,
    /// Whether this entry is a put or a tombstone.
    pub kind: OpKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn op_kind_round_trip() {
        assert_eq!(OpKind::from_u8(OpKind::Put as u8), Some(OpKind::Put));
        assert_eq!(OpKind::from_u8(OpKind::Delete as u8), Some(OpKind::Delete));
        assert_eq!(OpKind::from_u8(7), None);
        assert!(OpKind::Delete.is_delete());
        assert!(!OpKind::Put.is_delete());
    }

    #[test]
    fn mv_order_keys_ascending() {
        assert_eq!(mv_cmp(b"a", 5, b"b", 1), Ordering::Less);
        assert_eq!(mv_cmp(b"b", 1, b"a", 5), Ordering::Greater);
    }

    #[test]
    fn mv_order_same_key_newest_first() {
        // Newer (larger seq) sorts *before* older for the same key.
        assert_eq!(mv_cmp(b"k", 9, b"k", 3), Ordering::Less);
        assert_eq!(mv_cmp(b"k", 3, b"k", 9), Ordering::Greater);
        assert_eq!(mv_cmp(b"k", 3, b"k", 3), Ordering::Equal);
    }

    #[test]
    fn display_kind() {
        assert_eq!(OpKind::Put.to_string(), "put");
        assert_eq!(OpKind::Delete.to_string(), "delete");
    }
}
