//! Service-layer telemetry: connection gauges and per-opcode request
//! latency histograms for the network front end.
//!
//! The server owns one [`ServiceTelemetry`]; handlers bump the gauges on
//! connection open/close and around each request, and record wall-clock
//! request latency into the per-opcode [`ConcurrentHistogram`]s. STATS
//! responses append [`ServiceTelemetry::render_into`]'s families to the
//! engine's own metrics, so one scrape covers both layers.

use crate::conc_histogram::ConcurrentHistogram;
use crate::metrics::MetricsRegistry;
use crate::proto::Opcode;
use std::sync::atomic::{AtomicU64, Ordering};

/// Gauges and histograms for one server instance.
#[derive(Debug)]
pub struct ServiceTelemetry {
    /// Currently open client connections.
    active_connections: AtomicU64,
    /// Connections accepted since start.
    connections_total: AtomicU64,
    /// Connections refused by the connection limit.
    connections_refused: AtomicU64,
    /// Requests currently being executed (decoded but not yet answered).
    requests_inflight: AtomicU64,
    /// Malformed frames that tore down a connection.
    protocol_errors: AtomicU64,
    /// Backpressure advisories sent (connections paused by queue or
    /// write-buffer caps).
    backpressure_events: AtomicU64,
    /// Per-opcode request latency in nanoseconds, indexed by
    /// [`Opcode::ALL`] order.
    latency: [ConcurrentHistogram; Opcode::ALL.len()],
}

impl Default for ServiceTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceTelemetry {
    /// Creates zeroed telemetry with all histograms enabled.
    pub fn new() -> ServiceTelemetry {
        ServiceTelemetry {
            active_connections: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            connections_refused: AtomicU64::new(0),
            requests_inflight: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            backpressure_events: AtomicU64::new(0),
            latency: std::array::from_fn(|_| ConcurrentHistogram::new()),
        }
    }

    /// The latency histogram for `op`.
    pub fn latency(&self, op: Opcode) -> &ConcurrentHistogram {
        let idx = Opcode::ALL
            .iter()
            .position(|o| *o == op)
            .expect("opcode in ALL");
        &self.latency[idx]
    }

    /// Marks a connection accepted; returns the new active count.
    pub fn conn_opened(&self) -> u64 {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.active_connections.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Marks a connection closed.
    pub fn conn_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Marks a connection refused by the limit.
    pub fn conn_refused(&self) {
        self.connections_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one request as started.
    pub fn request_begin(&self) {
        self.requests_inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one request finished and records its latency.
    pub fn request_end(&self, op: Opcode, ns: u64) {
        self.requests_inflight.fetch_sub(1, Ordering::Relaxed);
        self.latency(op).record(ns);
    }

    /// Counts a malformed frame.
    pub fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one backpressure advisory (a connection paused because its
    /// request queue or response buffer hit the cap).
    pub fn backpressure_event(&self) {
        self.backpressure_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Backpressure advisories sent since start.
    pub fn backpressure_events(&self) -> u64 {
        self.backpressure_events.load(Ordering::Relaxed)
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Ordering::Relaxed)
    }

    /// Requests currently in flight.
    pub fn requests_inflight(&self) -> u64 {
        self.requests_inflight.load(Ordering::Relaxed)
    }

    /// Requests served since start (all opcodes).
    pub fn requests_total(&self) -> u64 {
        self.latency.iter().map(ConcurrentHistogram::count).sum()
    }

    /// Appends the service metric families to `reg` (Prometheus names are
    /// prefixed `miodb_server_`).
    pub fn render_into(&self, reg: &mut MetricsRegistry) {
        reg.gauge(
            "miodb_server_active_connections",
            "Currently open client connections",
            &[],
            self.active_connections.load(Ordering::Relaxed) as f64,
        );
        reg.counter(
            "miodb_server_connections_total",
            "Connections accepted since start",
            &[],
            self.connections_total.load(Ordering::Relaxed) as f64,
        );
        reg.counter(
            "miodb_server_connections_refused_total",
            "Connections refused by the connection limit",
            &[],
            self.connections_refused.load(Ordering::Relaxed) as f64,
        );
        reg.gauge(
            "miodb_server_requests_inflight",
            "Requests currently being executed",
            &[],
            self.requests_inflight.load(Ordering::Relaxed) as f64,
        );
        reg.counter(
            "miodb_server_protocol_errors_total",
            "Malformed frames that tore down a connection",
            &[],
            self.protocol_errors.load(Ordering::Relaxed) as f64,
        );
        reg.counter(
            "miodb_server_backpressure_events_total",
            "Backpressure advisories sent to paused connections",
            &[],
            self.backpressure_events.load(Ordering::Relaxed) as f64,
        );
        reg.counter(
            "miodb_server_dropped_spans_total",
            "Trace spans discarded because the span ring was full",
            &[],
            crate::trace::dropped_spans() as f64,
        );
        for op in Opcode::ALL {
            let h = self.latency(op).snapshot();
            if h.count() == 0 {
                continue;
            }
            reg.summary(
                "miodb_server_request_latency_seconds",
                "Server-side request latency by opcode",
                &[("op", op.label())],
                &h,
                1e-9,
            );
        }
    }

    /// Renders only the service families as Prometheus text.
    pub fn render_prometheus(&self) -> String {
        let mut reg = MetricsRegistry::new();
        self.render_into(&mut reg);
        reg.render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_track_connection_lifecycle() {
        let t = ServiceTelemetry::new();
        assert_eq!(t.conn_opened(), 1);
        assert_eq!(t.conn_opened(), 2);
        t.conn_closed();
        assert_eq!(t.active_connections(), 1);
        t.conn_refused();
        t.request_begin();
        assert_eq!(t.requests_inflight(), 1);
        t.request_end(Opcode::Put, 1_000);
        assert_eq!(t.requests_inflight(), 0);
        assert_eq!(t.requests_total(), 1);
        assert_eq!(t.latency(Opcode::Put).count(), 1);
        assert_eq!(t.latency(Opcode::Get).count(), 0);
        t.backpressure_event();
        assert_eq!(t.backpressure_events(), 1);
        assert!(t
            .render_prometheus()
            .contains("miodb_server_backpressure_events_total 1"));
    }

    #[test]
    fn render_includes_gauges_and_summaries() {
        let t = ServiceTelemetry::new();
        t.conn_opened();
        t.request_begin();
        t.request_end(Opcode::Get, 5_000);
        let text = t.render_prometheus();
        assert!(text.contains("miodb_server_active_connections 1"));
        assert!(text.contains("miodb_server_requests_inflight 0"));
        assert!(text.contains("miodb_server_request_latency_seconds{op=\"get\""));
        // Opcodes with no samples are omitted.
        assert!(!text.contains("op=\"batch\""));
    }

    /// Parses the exposition text line-by-line: every sampled opcode must
    /// carry the full quantile set including p99.9, and the trace-buffer
    /// overflow counter must always be present (zero when intact).
    #[test]
    fn exposition_has_p999_per_opcode_and_dropped_spans_counter() {
        let t = ServiceTelemetry::new();
        for op in [Opcode::Get, Opcode::Put, Opcode::Scan] {
            for i in 0..1000u64 {
                t.request_begin();
                t.request_end(op, 1_000 + i * 37);
            }
        }
        let text = t.render_prometheus();
        for op in ["get", "put", "scan"] {
            for q in ["0.5", "0.9", "0.99", "0.999"] {
                let needle =
                    format!("miodb_server_request_latency_seconds{{op=\"{op}\",quantile=\"{q}\"}}");
                let line = text
                    .lines()
                    .find(|l| l.starts_with(&needle))
                    .unwrap_or_else(|| panic!("missing series `{needle}` in:\n{text}"));
                let value: f64 = line[needle.len()..].trim().parse().unwrap();
                assert!(value > 0.0, "non-positive quantile on `{line}`");
            }
        }
        let dropped = text
            .lines()
            .find(|l| l.starts_with("miodb_server_dropped_spans_total"))
            .expect("dropped_spans_total series missing");
        let value: f64 = dropped
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .expect("numeric dropped_spans value");
        assert!(value >= 0.0);
    }
}
