//! Engine statistics: stalls, flushing, serialization and write amplification.
//!
//! These counters back Table 1, Figure 2 and Figure 11 of the paper. Every
//! engine (MioDB and the baselines) shares an [`Stats`] instance with its
//! device layer so write amplification is measured identically everywhere:
//!
//! ```text
//! WA = (bytes written to NVM + bytes written to SSD) / bytes of user data
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters describing one engine run.
///
/// All counters are monotonically increasing; durations are stored in
/// nanoseconds. The struct is cheap to share (`Arc<Stats>`) and safe to
/// update from flush/compaction threads.
#[derive(Debug, Default)]
pub struct Stats {
    /// Bytes of user data accepted by `put`/`delete` (keys + values).
    pub user_bytes_written: AtomicU64,
    /// Bytes physically written to the (simulated) NVM device.
    pub nvm_bytes_written: AtomicU64,
    /// Bytes physically written to the (simulated) SSD device.
    pub ssd_bytes_written: AtomicU64,
    /// Bytes physically read from the NVM device.
    pub nvm_bytes_read: AtomicU64,
    /// Bytes physically read from the SSD device.
    pub ssd_bytes_read: AtomicU64,

    /// Total time writers were blocked because the immutable MemTable was
    /// still being flushed when the active one filled (paper: *interval
    /// stalls*, observed as full request blocking).
    pub interval_stall_ns: AtomicU64,
    /// Total time spent in deliberate short write delays used to pace
    /// writers (paper: *cumulative stalls*).
    pub cumulative_stall_ns: AtomicU64,
    /// Number of interval-stall events.
    pub interval_stall_count: AtomicU64,
    /// Number of cumulative-stall (slowdown) events.
    pub cumulative_stall_count: AtomicU64,

    /// Total time spent flushing MemTables to the persistent layer.
    pub flush_ns: AtomicU64,
    /// Number of MemTable flushes.
    pub flush_count: AtomicU64,
    /// Bytes moved by MemTable flushes.
    pub flush_bytes: AtomicU64,
    /// Total time spent serializing entries into block format (baselines).
    pub serialization_ns: AtomicU64,
    /// Total time spent deserializing blocks during reads (baselines).
    pub deserialization_ns: AtomicU64,

    /// Total time spent in zero-copy compactions.
    pub zero_copy_compaction_ns: AtomicU64,
    /// Number of zero-copy compactions performed.
    pub zero_copy_compactions: AtomicU64,
    /// Total time spent in lazy-copy compactions (MioDB) or SSTable
    /// compactions (baselines).
    pub copy_compaction_ns: AtomicU64,
    /// Number of copy compactions performed.
    pub copy_compactions: AtomicU64,
    /// Total time spent swizzling pointers after one-piece flushes.
    pub swizzle_ns: AtomicU64,

    /// Number of `get` operations served.
    pub gets: AtomicU64,
    /// Number of `get` operations that found a value.
    pub get_hits: AtomicU64,
    /// Number of bloom-filter negative hits (tables skipped).
    pub bloom_skips: AtomicU64,
    /// Number of bloom-filter false positives (table probed, key absent).
    pub bloom_false_positives: AtomicU64,
}

impl Stats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Adds a duration to a nanosecond counter.
    pub fn add_time(counter: &AtomicU64, d: Duration) {
        counter.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Current write-amplification ratio: persistent bytes written divided
    /// by user bytes written. Returns 0.0 before any user write.
    pub fn write_amplification(&self) -> f64 {
        let user = self.user_bytes_written.load(Ordering::Relaxed);
        if user == 0 {
            return 0.0;
        }
        let dev = self.nvm_bytes_written.load(Ordering::Relaxed)
            + self.ssd_bytes_written.load(Ordering::Relaxed);
        dev as f64 / user as f64
    }

    /// Snapshot of all counters as plain integers (for reports).
    pub fn snapshot(&self) -> StatsSnapshot {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            user_bytes_written: ld(&self.user_bytes_written),
            nvm_bytes_written: ld(&self.nvm_bytes_written),
            ssd_bytes_written: ld(&self.ssd_bytes_written),
            nvm_bytes_read: ld(&self.nvm_bytes_read),
            ssd_bytes_read: ld(&self.ssd_bytes_read),
            interval_stall_ns: ld(&self.interval_stall_ns),
            cumulative_stall_ns: ld(&self.cumulative_stall_ns),
            interval_stall_count: ld(&self.interval_stall_count),
            cumulative_stall_count: ld(&self.cumulative_stall_count),
            flush_ns: ld(&self.flush_ns),
            flush_count: ld(&self.flush_count),
            flush_bytes: ld(&self.flush_bytes),
            serialization_ns: ld(&self.serialization_ns),
            deserialization_ns: ld(&self.deserialization_ns),
            zero_copy_compaction_ns: ld(&self.zero_copy_compaction_ns),
            zero_copy_compactions: ld(&self.zero_copy_compactions),
            copy_compaction_ns: ld(&self.copy_compaction_ns),
            copy_compactions: ld(&self.copy_compactions),
            swizzle_ns: ld(&self.swizzle_ns),
            gets: ld(&self.gets),
            get_hits: ld(&self.get_hits),
            bloom_skips: ld(&self.bloom_skips),
            bloom_false_positives: ld(&self.bloom_false_positives),
            write_amplification: self.write_amplification(),
        }
    }
}

/// A point-in-time copy of [`Stats`], suitable for diffing and printing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSnapshot {
    pub user_bytes_written: u64,
    pub nvm_bytes_written: u64,
    pub ssd_bytes_written: u64,
    pub nvm_bytes_read: u64,
    pub ssd_bytes_read: u64,
    pub interval_stall_ns: u64,
    pub cumulative_stall_ns: u64,
    pub interval_stall_count: u64,
    pub cumulative_stall_count: u64,
    pub flush_ns: u64,
    pub flush_count: u64,
    pub flush_bytes: u64,
    pub serialization_ns: u64,
    pub deserialization_ns: u64,
    pub zero_copy_compaction_ns: u64,
    pub zero_copy_compactions: u64,
    pub copy_compaction_ns: u64,
    pub copy_compactions: u64,
    pub swizzle_ns: u64,
    pub gets: u64,
    pub get_hits: u64,
    pub bloom_skips: u64,
    pub bloom_false_positives: u64,
    pub write_amplification: f64,
}

impl StatsSnapshot {
    /// Flush throughput in bytes per second, or 0.0 if no flush happened.
    pub fn flush_throughput_bps(&self) -> f64 {
        if self.flush_ns == 0 {
            0.0
        } else {
            self.flush_bytes as f64 / (self.flush_ns as f64 / 1e9)
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "user writes:      {} B", self.user_bytes_written)?;
        writeln!(
            f,
            "device writes:    {} B nvm, {} B ssd (WA {:.2}x)",
            self.nvm_bytes_written, self.ssd_bytes_written, self.write_amplification
        )?;
        writeln!(
            f,
            "stalls:           {:.3} s interval ({}), {:.3} s cumulative ({})",
            self.interval_stall_ns as f64 / 1e9,
            self.interval_stall_count,
            self.cumulative_stall_ns as f64 / 1e9,
            self.cumulative_stall_count
        )?;
        writeln!(
            f,
            "flushing:         {:.3} s over {} flushes ({} B)",
            self.flush_ns as f64 / 1e9,
            self.flush_count,
            self.flush_bytes
        )?;
        writeln!(
            f,
            "codec:            {:.3} s serialize, {:.3} s deserialize",
            self.serialization_ns as f64 / 1e9,
            self.deserialization_ns as f64 / 1e9
        )?;
        writeln!(
            f,
            "compactions:      {} zero-copy ({:.3} s), {} copy ({:.3} s), swizzle {:.3} s",
            self.zero_copy_compactions,
            self.zero_copy_compaction_ns as f64 / 1e9,
            self.copy_compactions,
            self.copy_compaction_ns as f64 / 1e9,
            self.swizzle_ns as f64 / 1e9
        )?;
        write!(
            f,
            "reads:            {} gets ({} hits), {} bloom skips, {} false positives",
            self.gets, self.get_hits, self.bloom_skips, self.bloom_false_positives
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let s = Stats::new();
        s.user_bytes_written.store(10, Ordering::Relaxed);
        s.nvm_bytes_written.store(30, Ordering::Relaxed);
        let text = s.snapshot().to_string();
        assert!(text.contains("WA 3.00x"), "{text}");
        assert!(text.contains("zero-copy"));
    }

    #[test]
    fn wa_is_zero_without_user_writes() {
        let s = Stats::new();
        s.nvm_bytes_written.store(100, Ordering::Relaxed);
        assert_eq!(s.write_amplification(), 0.0);
    }

    #[test]
    fn wa_counts_both_devices() {
        let s = Stats::new();
        s.user_bytes_written.store(100, Ordering::Relaxed);
        s.nvm_bytes_written.store(150, Ordering::Relaxed);
        s.ssd_bytes_written.store(150, Ordering::Relaxed);
        assert!((s.write_amplification() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn add_time_accumulates() {
        let s = Stats::new();
        Stats::add_time(&s.flush_ns, Duration::from_micros(5));
        Stats::add_time(&s.flush_ns, Duration::from_micros(5));
        assert_eq!(s.flush_ns.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let s = Stats::new();
        s.gets.store(7, Ordering::Relaxed);
        s.flush_bytes.store(1_000_000, Ordering::Relaxed);
        s.flush_ns.store(1_000_000_000, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.gets, 7);
        assert!((snap.flush_throughput_bps() - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn flush_throughput_zero_when_no_flush() {
        assert_eq!(StatsSnapshot::default().flush_throughput_bps(), 0.0);
    }
}
