//! Engine statistics: stalls, flushing, serialization and write amplification.
//!
//! These counters back Table 1, Figure 2 and Figure 11 of the paper. Every
//! engine (MioDB and the baselines) shares an [`Stats`] instance with its
//! device layer so write amplification is measured identically everywhere:
//!
//! ```text
//! WA = (bytes written to NVM + bytes written to SSD) / bytes of user data
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters describing one engine run.
///
/// All counters are monotonically increasing; durations are stored in
/// nanoseconds. The struct is cheap to share (`Arc<Stats>`) and safe to
/// update from flush/compaction threads.
#[derive(Debug, Default)]
pub struct Stats {
    /// Bytes of user data accepted by `put`/`delete` (keys + values).
    pub user_bytes_written: AtomicU64,
    /// Bytes physically written to the (simulated) NVM device.
    pub nvm_bytes_written: AtomicU64,
    /// Bytes physically written to the (simulated) SSD device.
    pub ssd_bytes_written: AtomicU64,
    /// Bytes physically read from the NVM device.
    pub nvm_bytes_read: AtomicU64,
    /// Bytes physically read from the SSD device.
    pub ssd_bytes_read: AtomicU64,

    /// Total time writers were blocked because the immutable MemTable was
    /// still being flushed when the active one filled (paper: *interval
    /// stalls*, observed as full request blocking).
    pub interval_stall_ns: AtomicU64,
    /// Total time spent in deliberate short write delays used to pace
    /// writers (paper: *cumulative stalls*).
    pub cumulative_stall_ns: AtomicU64,
    /// Number of interval-stall events.
    pub interval_stall_count: AtomicU64,
    /// Number of cumulative-stall (slowdown) events.
    pub cumulative_stall_count: AtomicU64,

    /// Total time spent flushing MemTables to the persistent layer.
    pub flush_ns: AtomicU64,
    /// Number of MemTable flushes.
    pub flush_count: AtomicU64,
    /// Bytes moved by MemTable flushes.
    pub flush_bytes: AtomicU64,
    /// Total time spent serializing entries into block format (baselines).
    pub serialization_ns: AtomicU64,
    /// Total time spent deserializing blocks during reads (baselines).
    pub deserialization_ns: AtomicU64,

    /// Total time spent in zero-copy compactions.
    pub zero_copy_compaction_ns: AtomicU64,
    /// Number of zero-copy compactions performed.
    pub zero_copy_compactions: AtomicU64,
    /// Total time spent in lazy-copy compactions (MioDB) or SSTable
    /// compactions (baselines).
    pub copy_compaction_ns: AtomicU64,
    /// Number of copy compactions performed.
    pub copy_compactions: AtomicU64,
    /// Total time spent swizzling pointers after one-piece flushes.
    pub swizzle_ns: AtomicU64,

    /// Number of `get` operations served.
    pub gets: AtomicU64,
    /// Number of `get` operations that found a value.
    pub get_hits: AtomicU64,
    /// Number of bloom-filter negative hits (tables skipped).
    pub bloom_skips: AtomicU64,
    /// Number of bloom-filter false positives (table probed, key absent).
    pub bloom_false_positives: AtomicU64,
    /// Number of times a `get` re-probed a level because its structure
    /// (settled/merging/lazy-draining sets) changed while the probe ran.
    pub level_probe_retries: AtomicU64,
}

impl Stats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Adds `n` to a counter, saturating at `u64::MAX` instead of wrapping.
    ///
    /// Long-running engines accumulate nanosecond totals for days; a wrap
    /// would silently reset write-amplification and stall accounting, so all
    /// counter bumps go through this helper.
    pub fn add(counter: &AtomicU64, n: u64) {
        if n == 0 {
            return;
        }
        let mut cur = counter.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match counter.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Adds a duration to a nanosecond counter (saturating).
    pub fn add_time(counter: &AtomicU64, d: Duration) {
        Self::add(counter, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Adds every counter of a snapshot into this instance (saturating).
    ///
    /// Used to fold per-phase or per-engine snapshots into an aggregate, the
    /// inverse of [`StatsSnapshot::diff`].
    pub fn merge(&self, snap: &StatsSnapshot) {
        Self::add(&self.user_bytes_written, snap.user_bytes_written);
        Self::add(&self.nvm_bytes_written, snap.nvm_bytes_written);
        Self::add(&self.ssd_bytes_written, snap.ssd_bytes_written);
        Self::add(&self.nvm_bytes_read, snap.nvm_bytes_read);
        Self::add(&self.ssd_bytes_read, snap.ssd_bytes_read);
        Self::add(&self.interval_stall_ns, snap.interval_stall_ns);
        Self::add(&self.cumulative_stall_ns, snap.cumulative_stall_ns);
        Self::add(&self.interval_stall_count, snap.interval_stall_count);
        Self::add(&self.cumulative_stall_count, snap.cumulative_stall_count);
        Self::add(&self.flush_ns, snap.flush_ns);
        Self::add(&self.flush_count, snap.flush_count);
        Self::add(&self.flush_bytes, snap.flush_bytes);
        Self::add(&self.serialization_ns, snap.serialization_ns);
        Self::add(&self.deserialization_ns, snap.deserialization_ns);
        Self::add(&self.zero_copy_compaction_ns, snap.zero_copy_compaction_ns);
        Self::add(&self.zero_copy_compactions, snap.zero_copy_compactions);
        Self::add(&self.copy_compaction_ns, snap.copy_compaction_ns);
        Self::add(&self.copy_compactions, snap.copy_compactions);
        Self::add(&self.swizzle_ns, snap.swizzle_ns);
        Self::add(&self.gets, snap.gets);
        Self::add(&self.get_hits, snap.get_hits);
        Self::add(&self.bloom_skips, snap.bloom_skips);
        Self::add(&self.bloom_false_positives, snap.bloom_false_positives);
        Self::add(&self.level_probe_retries, snap.level_probe_retries);
    }

    /// Current write-amplification ratio: persistent bytes written divided
    /// by user bytes written. Returns 0.0 before any user write.
    pub fn write_amplification(&self) -> f64 {
        let user = self.user_bytes_written.load(Ordering::Relaxed);
        if user == 0 {
            return 0.0;
        }
        let dev = self.nvm_bytes_written.load(Ordering::Relaxed)
            + self.ssd_bytes_written.load(Ordering::Relaxed);
        dev as f64 / user as f64
    }

    /// Snapshot of all counters as plain integers (for reports).
    pub fn snapshot(&self) -> StatsSnapshot {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            user_bytes_written: ld(&self.user_bytes_written),
            nvm_bytes_written: ld(&self.nvm_bytes_written),
            ssd_bytes_written: ld(&self.ssd_bytes_written),
            nvm_bytes_read: ld(&self.nvm_bytes_read),
            ssd_bytes_read: ld(&self.ssd_bytes_read),
            interval_stall_ns: ld(&self.interval_stall_ns),
            cumulative_stall_ns: ld(&self.cumulative_stall_ns),
            interval_stall_count: ld(&self.interval_stall_count),
            cumulative_stall_count: ld(&self.cumulative_stall_count),
            flush_ns: ld(&self.flush_ns),
            flush_count: ld(&self.flush_count),
            flush_bytes: ld(&self.flush_bytes),
            serialization_ns: ld(&self.serialization_ns),
            deserialization_ns: ld(&self.deserialization_ns),
            zero_copy_compaction_ns: ld(&self.zero_copy_compaction_ns),
            zero_copy_compactions: ld(&self.zero_copy_compactions),
            copy_compaction_ns: ld(&self.copy_compaction_ns),
            copy_compactions: ld(&self.copy_compactions),
            swizzle_ns: ld(&self.swizzle_ns),
            gets: ld(&self.gets),
            get_hits: ld(&self.get_hits),
            bloom_skips: ld(&self.bloom_skips),
            bloom_false_positives: ld(&self.bloom_false_positives),
            level_probe_retries: ld(&self.level_probe_retries),
            write_amplification: self.write_amplification(),
        }
    }
}

/// A point-in-time copy of [`Stats`], suitable for diffing and printing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSnapshot {
    pub user_bytes_written: u64,
    pub nvm_bytes_written: u64,
    pub ssd_bytes_written: u64,
    pub nvm_bytes_read: u64,
    pub ssd_bytes_read: u64,
    pub interval_stall_ns: u64,
    pub cumulative_stall_ns: u64,
    pub interval_stall_count: u64,
    pub cumulative_stall_count: u64,
    pub flush_ns: u64,
    pub flush_count: u64,
    pub flush_bytes: u64,
    pub serialization_ns: u64,
    pub deserialization_ns: u64,
    pub zero_copy_compaction_ns: u64,
    pub zero_copy_compactions: u64,
    pub copy_compaction_ns: u64,
    pub copy_compactions: u64,
    pub swizzle_ns: u64,
    pub gets: u64,
    pub get_hits: u64,
    pub bloom_skips: u64,
    pub bloom_false_positives: u64,
    pub level_probe_retries: u64,
    pub write_amplification: f64,
}

impl StatsSnapshot {
    /// Counters accumulated since `earlier` was captured (per-field
    /// saturating subtraction). `write_amplification` is recomputed for the
    /// interval. Used for phase-by-phase reports; the inverse of
    /// [`Stats::merge`].
    pub fn diff(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let user = self
            .user_bytes_written
            .saturating_sub(earlier.user_bytes_written);
        let nvm = self
            .nvm_bytes_written
            .saturating_sub(earlier.nvm_bytes_written);
        let ssd = self
            .ssd_bytes_written
            .saturating_sub(earlier.ssd_bytes_written);
        StatsSnapshot {
            user_bytes_written: user,
            nvm_bytes_written: nvm,
            ssd_bytes_written: ssd,
            nvm_bytes_read: self.nvm_bytes_read.saturating_sub(earlier.nvm_bytes_read),
            ssd_bytes_read: self.ssd_bytes_read.saturating_sub(earlier.ssd_bytes_read),
            interval_stall_ns: self
                .interval_stall_ns
                .saturating_sub(earlier.interval_stall_ns),
            cumulative_stall_ns: self
                .cumulative_stall_ns
                .saturating_sub(earlier.cumulative_stall_ns),
            interval_stall_count: self
                .interval_stall_count
                .saturating_sub(earlier.interval_stall_count),
            cumulative_stall_count: self
                .cumulative_stall_count
                .saturating_sub(earlier.cumulative_stall_count),
            flush_ns: self.flush_ns.saturating_sub(earlier.flush_ns),
            flush_count: self.flush_count.saturating_sub(earlier.flush_count),
            flush_bytes: self.flush_bytes.saturating_sub(earlier.flush_bytes),
            serialization_ns: self
                .serialization_ns
                .saturating_sub(earlier.serialization_ns),
            deserialization_ns: self
                .deserialization_ns
                .saturating_sub(earlier.deserialization_ns),
            zero_copy_compaction_ns: self
                .zero_copy_compaction_ns
                .saturating_sub(earlier.zero_copy_compaction_ns),
            zero_copy_compactions: self
                .zero_copy_compactions
                .saturating_sub(earlier.zero_copy_compactions),
            copy_compaction_ns: self
                .copy_compaction_ns
                .saturating_sub(earlier.copy_compaction_ns),
            copy_compactions: self
                .copy_compactions
                .saturating_sub(earlier.copy_compactions),
            swizzle_ns: self.swizzle_ns.saturating_sub(earlier.swizzle_ns),
            gets: self.gets.saturating_sub(earlier.gets),
            get_hits: self.get_hits.saturating_sub(earlier.get_hits),
            bloom_skips: self.bloom_skips.saturating_sub(earlier.bloom_skips),
            bloom_false_positives: self
                .bloom_false_positives
                .saturating_sub(earlier.bloom_false_positives),
            level_probe_retries: self
                .level_probe_retries
                .saturating_sub(earlier.level_probe_retries),
            write_amplification: if user == 0 {
                0.0
            } else {
                (nvm + ssd) as f64 / user as f64
            },
        }
    }

    /// Flush throughput in bytes per second, or 0.0 if no flush happened.
    pub fn flush_throughput_bps(&self) -> f64 {
        if self.flush_ns == 0 {
            0.0
        } else {
            self.flush_bytes as f64 / (self.flush_ns as f64 / 1e9)
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "user writes:      {} B", self.user_bytes_written)?;
        writeln!(
            f,
            "device writes:    {} B nvm, {} B ssd (WA {:.2}x)",
            self.nvm_bytes_written, self.ssd_bytes_written, self.write_amplification
        )?;
        writeln!(
            f,
            "stalls:           {:.3} s interval ({}), {:.3} s cumulative ({})",
            self.interval_stall_ns as f64 / 1e9,
            self.interval_stall_count,
            self.cumulative_stall_ns as f64 / 1e9,
            self.cumulative_stall_count
        )?;
        writeln!(
            f,
            "flushing:         {:.3} s over {} flushes ({} B)",
            self.flush_ns as f64 / 1e9,
            self.flush_count,
            self.flush_bytes
        )?;
        writeln!(
            f,
            "codec:            {:.3} s serialize, {:.3} s deserialize",
            self.serialization_ns as f64 / 1e9,
            self.deserialization_ns as f64 / 1e9
        )?;
        writeln!(
            f,
            "compactions:      {} zero-copy ({:.3} s), {} copy ({:.3} s), swizzle {:.3} s",
            self.zero_copy_compactions,
            self.zero_copy_compaction_ns as f64 / 1e9,
            self.copy_compactions,
            self.copy_compaction_ns as f64 / 1e9,
            self.swizzle_ns as f64 / 1e9
        )?;
        write!(
            f,
            "reads:            {} gets ({} hits), {} bloom skips, {} false positives",
            self.gets, self.get_hits, self.bloom_skips, self.bloom_false_positives
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let s = Stats::new();
        s.user_bytes_written.store(10, Ordering::Relaxed);
        s.nvm_bytes_written.store(30, Ordering::Relaxed);
        let text = s.snapshot().to_string();
        assert!(text.contains("WA 3.00x"), "{text}");
        assert!(text.contains("zero-copy"));
    }

    #[test]
    fn wa_is_zero_without_user_writes() {
        let s = Stats::new();
        s.nvm_bytes_written.store(100, Ordering::Relaxed);
        assert_eq!(s.write_amplification(), 0.0);
    }

    #[test]
    fn wa_counts_both_devices() {
        let s = Stats::new();
        s.user_bytes_written.store(100, Ordering::Relaxed);
        s.nvm_bytes_written.store(150, Ordering::Relaxed);
        s.ssd_bytes_written.store(150, Ordering::Relaxed);
        assert!((s.write_amplification() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn add_time_accumulates() {
        let s = Stats::new();
        Stats::add_time(&s.flush_ns, Duration::from_micros(5));
        Stats::add_time(&s.flush_ns, Duration::from_micros(5));
        assert_eq!(s.flush_ns.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let s = Stats::new();
        s.gets.store(7, Ordering::Relaxed);
        s.flush_bytes.store(1_000_000, Ordering::Relaxed);
        s.flush_ns.store(1_000_000_000, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.gets, 7);
        assert!((snap.flush_throughput_bps() - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn flush_throughput_zero_when_no_flush() {
        assert_eq!(StatsSnapshot::default().flush_throughput_bps(), 0.0);
    }

    #[test]
    fn add_saturates_at_max() {
        let s = Stats::new();
        s.flush_ns.store(u64::MAX - 5, Ordering::Relaxed);
        Stats::add(&s.flush_ns, 100);
        assert_eq!(s.flush_ns.load(Ordering::Relaxed), u64::MAX);
        Stats::add_time(&s.flush_ns, Duration::from_secs(1));
        assert_eq!(s.flush_ns.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn snapshot_diff_isolates_interval() {
        let s = Stats::new();
        s.user_bytes_written.store(100, Ordering::Relaxed);
        s.nvm_bytes_written.store(200, Ordering::Relaxed);
        s.gets.store(10, Ordering::Relaxed);
        let before = s.snapshot();
        Stats::add(&s.user_bytes_written, 50);
        Stats::add(&s.nvm_bytes_written, 150);
        Stats::add(&s.gets, 7);
        let d = s.snapshot().diff(&before);
        assert_eq!(d.user_bytes_written, 50);
        assert_eq!(d.nvm_bytes_written, 150);
        assert_eq!(d.gets, 7);
        // Interval WA uses interval bytes, not cumulative bytes.
        assert!((d.write_amplification - 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_inverse_of_diff() {
        let s = Stats::new();
        s.flush_count.store(3, Ordering::Relaxed);
        s.bloom_skips.store(9, Ordering::Relaxed);
        let snap = s.snapshot();
        let agg = Stats::new();
        agg.merge(&snap);
        agg.merge(&snap);
        assert_eq!(agg.flush_count.load(Ordering::Relaxed), 6);
        assert_eq!(agg.bloom_skips.load(Ordering::Relaxed), 18);
        assert_eq!(agg.snapshot().diff(&snap).flush_count, 3);
    }
}
