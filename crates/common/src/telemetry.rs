//! Engine-side telemetry: operation histograms, per-level metrics and the
//! structured event trace, bundled as [`EngineTelemetry`].
//!
//! Every engine owns one [`EngineTelemetry`] and exposes it through
//! [`KvEngine::telemetry`](crate::KvEngine::telemetry); the provided
//! [`KvEngine::metrics_text`](crate::KvEngine::metrics_text) /
//! [`KvEngine::metrics_json`](crate::KvEngine::metrics_json) methods render
//! it together with the engine's [`EngineReport`](crate::EngineReport), so
//! benchmarks and tests get identical observability from MioDB and every
//! baseline.

use crate::conc_histogram::ConcurrentHistogram;
use crate::events::{CompactionKind, Event, EventKind, EventRing, StallKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Telemetry configuration, carried inside each engine's options struct.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// Record per-operation latency histograms (two relaxed atomic adds per
    /// operation when on).
    pub histograms: bool,
    /// Capacity of the structured event ring (rounded up to a power of
    /// two). `0` disables event tracing entirely.
    pub event_capacity: usize,
    /// Emit a [`EventKind::BloomSkip`] event per skipped table. High
    /// volume; useful when debugging read paths, off by default.
    pub trace_reads: bool,
    /// When set, the engine spawns a reporter thread that prints the
    /// Prometheus rendering to stderr every interval.
    pub report_interval: Option<Duration>,
}

impl Default for TelemetryOptions {
    fn default() -> TelemetryOptions {
        TelemetryOptions {
            histograms: true,
            event_capacity: 4096,
            trace_reads: false,
            report_interval: None,
        }
    }
}

impl TelemetryOptions {
    /// Configuration with every collector disabled (zero overhead beyond
    /// one predictable branch per operation).
    pub fn disabled() -> TelemetryOptions {
        TelemetryOptions {
            histograms: false,
            event_capacity: 0,
            trace_reads: false,
            report_interval: None,
        }
    }
}

/// Live gauges and counters for one LSM level.
///
/// Gauges (`bytes`, `tables`, `pending_compactions`) are set by the engine
/// at structural transitions (flush publish, merge publish, drain);
/// compaction counters accumulate forever.
#[derive(Debug, Default)]
pub struct LevelMetrics {
    /// Bytes resident in this level.
    pub bytes: AtomicU64,
    /// Number of tables/runs in this level.
    pub tables: AtomicU64,
    /// Compactions out of this level currently queued or running.
    pub pending_compactions: AtomicU64,
    /// Zero-copy compactions that took this level as their source.
    pub zero_copy_compactions: AtomicU64,
    /// Total nanoseconds spent in those zero-copy compactions.
    pub zero_copy_ns: AtomicU64,
    /// Lazy-copy (data movement) compactions sourced from this level.
    pub lazy_copy_compactions: AtomicU64,
    /// Total nanoseconds spent in those lazy-copy compactions.
    pub lazy_copy_ns: AtomicU64,
}

impl LevelMetrics {
    /// Updates the residency gauges after a structural change.
    pub fn set_occupancy(&self, bytes: u64, tables: u64) {
        self.bytes.store(bytes, Ordering::Relaxed);
        self.tables.store(tables, Ordering::Relaxed);
    }

    /// Marks one compaction out of this level as queued/running.
    pub fn compaction_started(&self) {
        self.pending_compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one compaction as finished and accumulates its cost.
    pub fn compaction_finished(&self, kind: CompactionKind, dur: Duration) {
        let prev = self.pending_compactions.load(Ordering::Relaxed);
        if prev > 0 {
            self.pending_compactions.fetch_sub(1, Ordering::Relaxed);
        }
        let ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        match kind {
            CompactionKind::ZeroCopy => {
                self.zero_copy_compactions.fetch_add(1, Ordering::Relaxed);
                self.zero_copy_ns.fetch_add(ns, Ordering::Relaxed);
            }
            CompactionKind::LazyCopy => {
                self.lazy_copy_compactions.fetch_add(1, Ordering::Relaxed);
                self.lazy_copy_ns.fetch_add(ns, Ordering::Relaxed);
            }
        }
    }
}

/// All telemetry collectors for one engine instance.
pub struct EngineTelemetry {
    start: Instant,
    /// `put` latency in nanoseconds.
    pub put_latency: ConcurrentHistogram,
    /// `get` latency in nanoseconds.
    pub get_latency: ConcurrentHistogram,
    /// `delete` latency in nanoseconds.
    pub delete_latency: ConcurrentHistogram,
    /// `scan` latency in nanoseconds.
    pub scan_latency: ConcurrentHistogram,
    /// Operations coalesced per committed write group (group-commit
    /// pipeline; single-writer engines never record here).
    pub write_group_size: ConcurrentHistogram,
    /// Writers currently enqueued on the commit queue (gauge).
    commit_queue_depth: AtomicU64,
    /// Span id of the flush currently running on this engine (0 when
    /// idle). Request-side rotation-stall spans read it to link the
    /// background flush they are waiting on.
    flush_span: AtomicU64,
    levels: Vec<LevelMetrics>,
    events: Option<EventRing>,
    trace_reads: AtomicBool,
}

impl std::fmt::Debug for EngineTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineTelemetry")
            .field("uptime", &self.uptime())
            .field("puts", &self.put_latency.count())
            .field("gets", &self.get_latency.count())
            .field("levels", &self.levels.len())
            .field("events", &self.events)
            .finish()
    }
}

impl EngineTelemetry {
    /// Creates telemetry for an engine with `num_levels` LSM levels.
    pub fn new(num_levels: usize, opts: &TelemetryOptions) -> EngineTelemetry {
        let t = EngineTelemetry {
            start: Instant::now(),
            put_latency: ConcurrentHistogram::new(),
            get_latency: ConcurrentHistogram::new(),
            delete_latency: ConcurrentHistogram::new(),
            scan_latency: ConcurrentHistogram::new(),
            write_group_size: ConcurrentHistogram::new(),
            commit_queue_depth: AtomicU64::new(0),
            flush_span: AtomicU64::new(0),
            levels: (0..num_levels).map(|_| LevelMetrics::default()).collect(),
            events: (opts.event_capacity > 0)
                .then(|| EventRing::with_capacity(opts.event_capacity)),
            trace_reads: AtomicBool::new(opts.trace_reads),
        };
        for h in [
            &t.put_latency,
            &t.get_latency,
            &t.delete_latency,
            &t.scan_latency,
            &t.write_group_size,
        ] {
            h.set_enabled(opts.histograms);
        }
        t
    }

    /// Sets the commit-queue depth gauge (writers currently enqueued).
    pub fn set_commit_queue_depth(&self, depth: u64) {
        self.commit_queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Current commit-queue depth gauge value.
    pub fn commit_queue_depth(&self) -> u64 {
        self.commit_queue_depth.load(Ordering::Relaxed)
    }

    /// Publishes (or clears, with 0) the span id of the flush currently
    /// running on this engine.
    pub fn set_flush_span(&self, span_id: u64) {
        self.flush_span.store(span_id, Ordering::Relaxed);
    }

    /// Span id of the in-progress flush, or 0 when none is running.
    pub fn flush_span(&self) -> u64 {
        self.flush_span.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this engine's telemetry epoch (engine start).
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Time since the engine started.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// Per-level metrics, top to bottom. The last entry covers the
    /// repository / bottommost storage when the engine has one.
    pub fn levels(&self) -> &[LevelMetrics] {
        &self.levels
    }

    /// Metrics for one level, if it exists.
    pub fn level(&self, i: usize) -> Option<&LevelMetrics> {
        self.levels.get(i)
    }

    /// Emits a structured event (no-op when tracing is disabled; drops the
    /// event when the ring is full — never blocks).
    pub fn emit(&self, kind: EventKind) {
        if let Some(ring) = &self.events {
            ring.push(Event {
                ts_ns: self.now_ns(),
                kind,
            });
        }
    }

    /// Emits [`EventKind::FlushBegin`].
    pub fn flush_begin(&self, bytes: u64) {
        self.emit(EventKind::FlushBegin { bytes });
    }

    /// Emits [`EventKind::FlushEnd`].
    pub fn flush_end(&self, bytes: u64, dur: Duration) {
        self.emit(EventKind::FlushEnd {
            bytes,
            dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
        });
    }

    /// Emits [`EventKind::CompactionBegin`] and bumps the level's pending
    /// gauge.
    pub fn compaction_begin(&self, level: usize, kind: CompactionKind) {
        if let Some(m) = self.levels.get(level) {
            m.compaction_started();
        }
        self.emit(EventKind::CompactionBegin {
            level: level as u32,
            kind,
        });
    }

    /// Emits [`EventKind::CompactionEnd`] and accumulates per-level cost.
    pub fn compaction_end(&self, level: usize, kind: CompactionKind, bytes: u64, dur: Duration) {
        if let Some(m) = self.levels.get(level) {
            m.compaction_finished(kind, dur);
        }
        self.emit(EventKind::CompactionEnd {
            level: level as u32,
            kind,
            bytes,
            dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
        });
    }

    /// Emits [`EventKind::StallBegin`].
    pub fn stall_begin(&self, kind: StallKind) {
        self.emit(EventKind::StallBegin { kind });
    }

    /// Emits [`EventKind::StallEnd`].
    pub fn stall_end(&self, kind: StallKind, dur: Duration) {
        self.emit(EventKind::StallEnd {
            kind,
            dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
        });
    }

    /// Emits [`EventKind::Swizzle`].
    pub fn swizzle(&self, dur: Duration) {
        self.emit(EventKind::Swizzle {
            dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
        });
    }

    /// Emits [`EventKind::BloomSkip`] when read tracing is on. Separate
    /// from [`emit`](Self::emit) because skips fire per table per read.
    pub fn bloom_skip(&self, level: usize) {
        if self.trace_reads.load(Ordering::Relaxed) {
            self.emit(EventKind::BloomSkip {
                level: level as u32,
            });
        }
    }

    /// Toggles per-read event tracing at runtime.
    pub fn set_trace_reads(&self, on: bool) {
        self.trace_reads.store(on, Ordering::Relaxed);
    }

    /// Drains all queued events in FIFO order.
    pub fn drain_events(&self) -> Vec<Event> {
        self.events
            .as_ref()
            .map(EventRing::drain)
            .unwrap_or_default()
    }

    /// Events discarded because the ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.events.as_ref().map_or(0, EventRing::dropped)
    }

    /// Clears the four operation histograms (phase boundary helper: lets a
    /// benchmark separate load-phase from run-phase latencies).
    pub fn reset_op_histograms(&self) {
        for h in [
            &self.put_latency,
            &self.get_latency,
            &self.delete_latency,
            &self.scan_latency,
        ] {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_options_record_nothing() {
        let t = EngineTelemetry::new(3, &TelemetryOptions::disabled());
        t.put_latency.record(100);
        t.flush_begin(10);
        t.bloom_skip(0);
        assert_eq!(t.put_latency.snapshot().count(), 0);
        assert!(t.drain_events().is_empty());
        assert_eq!(t.events_dropped(), 0);
    }

    #[test]
    fn events_carry_monotonic_timestamps() {
        let t = EngineTelemetry::new(2, &TelemetryOptions::default());
        t.flush_begin(100);
        std::thread::sleep(Duration::from_millis(2));
        t.flush_end(100, Duration::from_millis(2));
        let events = t.drain_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].ts_ns <= events[1].ts_ns);
        assert!(matches!(
            events[0].kind,
            EventKind::FlushBegin { bytes: 100 }
        ));
        assert!(
            matches!(events[1].kind, EventKind::FlushEnd { bytes: 100, dur_ns } if dur_ns >= 1_000_000)
        );
    }

    #[test]
    fn compaction_updates_level_metrics() {
        let t = EngineTelemetry::new(4, &TelemetryOptions::default());
        t.compaction_begin(1, CompactionKind::ZeroCopy);
        let m = t.level(1).unwrap();
        assert_eq!(m.pending_compactions.load(Ordering::Relaxed), 1);
        t.compaction_end(1, CompactionKind::ZeroCopy, 4096, Duration::from_micros(50));
        assert_eq!(m.pending_compactions.load(Ordering::Relaxed), 0);
        assert_eq!(m.zero_copy_compactions.load(Ordering::Relaxed), 1);
        assert!(m.zero_copy_ns.load(Ordering::Relaxed) >= 50_000);
        assert_eq!(m.lazy_copy_compactions.load(Ordering::Relaxed), 0);
        let events = t.drain_events();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn bloom_skip_gated_by_trace_reads() {
        let t = EngineTelemetry::new(1, &TelemetryOptions::default());
        t.bloom_skip(0);
        assert!(t.drain_events().is_empty());
        t.set_trace_reads(true);
        t.bloom_skip(0);
        assert_eq!(t.drain_events().len(), 1);
    }

    #[test]
    fn occupancy_gauges_update() {
        let t = EngineTelemetry::new(2, &TelemetryOptions::default());
        t.level(0).unwrap().set_occupancy(1 << 20, 3);
        assert_eq!(t.level(0).unwrap().bytes.load(Ordering::Relaxed), 1 << 20);
        assert_eq!(t.level(0).unwrap().tables.load(Ordering::Relaxed), 3);
        assert!(t.level(5).is_none());
    }
}
