//! Deterministic, seed-driven fault injection.
//!
//! A process-global registry of named *fault points*. Production code marks
//! crash-prone sites with [`hit`] (or the [`FaultPoint`] convenience wrapper);
//! tests arm points with a [`FaultPolicy`] and assert that the system either
//! returns a typed [`Error`](crate::Error) or fully recovers.
//!
//! # Cost when disabled
//!
//! The whole subsystem hides behind one relaxed [`AtomicBool`] load: while no
//! point is armed, [`hit`] is a single branch on an always-false flag and
//! never touches the registry, so hot paths (pmem allocation, WAL append)
//! stay effectively free. There is no compile-time feature gate — keeping the
//! points compiled in means the *tested* binary is the *shipped* binary.
//!
//! # Determinism
//!
//! Probabilistic policies draw from a per-point splitmix64 stream seeded by
//! `(seed, point name)`, and per-point hit counters advance the stream one
//! step per call — the same seed and the same sequence of hits reproduce the
//! same injected failures, independent of wall-clock time or other points.
//!
//! # Concurrency
//!
//! The registry is global, so concurrently running tests that arm points
//! would interfere. Fault tests serialize through [`exclusive`], which also
//! disarms everything when the guard drops (even on panic).

use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// What an armed fault point does when hit.
#[derive(Debug, Clone)]
pub enum FaultPolicy {
    /// Fail the N-th hit (1-based) and every later hit. `FailNth(1)` fails
    /// immediately; `FailNth(3)` lets two hits through first.
    FailNth(u64),
    /// Fail exactly the N-th hit (1-based), then let everything through.
    FailOnce(u64),
    /// Fail each hit independently with probability `num`/`den`, drawn from
    /// a deterministic per-point stream derived from `seed`.
    FailProbability {
        /// Numerator of the failure probability.
        num: u32,
        /// Denominator of the failure probability.
        den: u32,
        /// Seed for the per-point splitmix64 stream.
        seed: u64,
    },
    /// One-shot torn write: the first hit reports [`FaultAction::Torn`]
    /// (the site persists a detectably-partial record), later hits pass.
    TornWrite,
    /// Sleep `Duration` on every hit, then proceed normally — a latency
    /// spike, not a failure.
    Latency(Duration),
}

/// The action a site must take for an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail cleanly *before* any side effect, returning a typed error.
    Fail,
    /// Persist a detectably-partial write (short write / crash mid-append),
    /// then return a typed error. Sites that have no notion of a partial
    /// write treat this as [`FaultAction::Fail`].
    Torn,
}

/// Canonical names of every fault point wired into the workspace, so the
/// fault-matrix harness can iterate them and assert coverage.
pub mod points {
    /// Arena/pool allocation failure (simulated NVM exhaustion).
    pub const PMEM_ALLOC: &str = "pmem.alloc";
    /// Torn/partial snapshot persist (crash mid-`snapshot_to_file`).
    pub const PMEM_SNAPSHOT_PERSIST: &str = "pmem.snapshot.persist";
    /// Restore-time corruption detected while loading a snapshot.
    pub const PMEM_RESTORE: &str = "pmem.restore";
    /// WAL append fails before the CRC is computed (fsync error; nothing
    /// reaches the log).
    pub const WAL_APPEND_PRE_CRC: &str = "wal.append.pre_crc";
    /// WAL append crashes mid-record: a short write leaves a torn tail
    /// (header present, payload truncated / CRC mismatch).
    pub const WAL_APPEND_TORN: &str = "wal.append.torn";
    /// Flush worker failure (one-piece flush DRAM→NVM).
    pub const ENGINE_FLUSH: &str = "engine.flush";
    /// Zero-copy compaction worker failure.
    pub const ENGINE_COMPACTION: &str = "engine.compaction";
    /// Lazy-copy drain (PMTable → data repository) failure.
    pub const ENGINE_LAZY: &str = "engine.lazy";
    /// Server-side stall while serving a request (connection hangs).
    pub const SERVER_REQUEST_STALL: &str = "server.request.stall";
    /// Server-side connection drop mid-request (no response sent).
    pub const SERVER_CONN_DROP: &str = "server.conn.drop";
    /// Replication stream drop: the leader's record-push connection to a
    /// follower dies mid-stream (follower must resubscribe from its
    /// applied offset).
    pub const REPL_STREAM_DROP: &str = "repl.stream.drop";
    /// Follower apply-loop stall or failure while replaying a shipped
    /// record batch (acks stop advancing; semi-sync writers block).
    pub const REPL_APPLY_STALL: &str = "repl.apply.stall";
    /// Snapshot-based follower catch-up failure (leader-side snapshot
    /// serve or follower-side restore).
    pub const REPL_SNAPSHOT: &str = "repl.snapshot";
    /// Election traffic loss: a vote request or epoch probe between
    /// group members is dropped before reaching the peer (simulates a
    /// network partition during an election).
    pub const REPL_VOTE_DROP: &str = "repl.vote.drop";

    /// Every registered point, for matrix sweeps.
    pub const ALL: &[&str] = &[
        PMEM_ALLOC,
        PMEM_SNAPSHOT_PERSIST,
        PMEM_RESTORE,
        WAL_APPEND_PRE_CRC,
        WAL_APPEND_TORN,
        ENGINE_FLUSH,
        ENGINE_COMPACTION,
        ENGINE_LAZY,
        SERVER_REQUEST_STALL,
        SERVER_CONN_DROP,
        REPL_STREAM_DROP,
        REPL_APPLY_STALL,
        REPL_SNAPSHOT,
        REPL_VOTE_DROP,
    ];
}

struct PointState {
    policy: FaultPolicy,
    hits: u64,
    triggered: u64,
    rng: u64,
}

struct Registry {
    points: HashMap<String, PointState>,
}

/// Fast path: true iff at least one point is armed. Relaxed is enough — a
/// site that races with arming simply misses the very first injection
/// opportunity, which deterministic tests avoid by arming before the
/// workload starts.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            points: HashMap::new(),
        })
    })
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn name_hash(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms (unlike `DefaultHasher`).
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Arms `name` with `policy`, resetting its hit/trigger counters.
pub fn arm(name: &str, policy: FaultPolicy) {
    let seed = match policy {
        FaultPolicy::FailProbability { seed, .. } => seed,
        _ => 0,
    };
    let mut reg = registry().lock();
    reg.points.insert(
        name.to_string(),
        PointState {
            policy,
            hits: 0,
            triggered: 0,
            rng: seed ^ name_hash(name),
        },
    );
    ARMED.store(true, Ordering::Release);
}

/// Disarms `name`; its counters remain readable until the next [`arm`].
pub fn disarm(name: &str) {
    let mut reg = registry().lock();
    reg.points.remove(name);
    if reg.points.is_empty() {
        ARMED.store(false, Ordering::Release);
    }
}

/// Disarms every point.
pub fn disarm_all() {
    let mut reg = registry().lock();
    reg.points.clear();
    ARMED.store(false, Ordering::Release);
}

/// How many times `name` has been hit since it was armed (0 if never armed).
pub fn hits(name: &str) -> u64 {
    registry().lock().points.get(name).map_or(0, |p| p.hits)
}

/// How many times `name` actually injected a failure since it was armed.
pub fn triggered(name: &str) -> u64 {
    registry()
        .lock()
        .points
        .get(name)
        .map_or(0, |p| p.triggered)
}

/// Marks a fault point. Returns `None` (proceed normally) unless the point
/// is armed and its policy fires, in which case the site must take the
/// returned [`FaultAction`].
///
/// This is the only call production code makes; when nothing is armed it is
/// a single relaxed atomic load.
#[inline]
pub fn hit(name: &str) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    hit_slow(name)
}

#[cold]
fn hit_slow(name: &str) -> Option<FaultAction> {
    let sleep_for;
    let action;
    {
        let mut reg = registry().lock();
        let point = reg.points.get_mut(name)?;
        point.hits += 1;
        let n = point.hits;
        let (act, dur) = match point.policy {
            FaultPolicy::FailNth(k) => (
                if n >= k {
                    Some(FaultAction::Fail)
                } else {
                    None
                },
                None,
            ),
            FaultPolicy::FailOnce(k) => (
                if n == k {
                    Some(FaultAction::Fail)
                } else {
                    None
                },
                None,
            ),
            FaultPolicy::FailProbability { num, den, .. } => {
                let draw = splitmix64(&mut point.rng);
                let fires = den > 0 && (draw % u64::from(den)) < u64::from(num);
                (if fires { Some(FaultAction::Fail) } else { None }, None)
            }
            FaultPolicy::TornWrite => (
                if n == 1 {
                    Some(FaultAction::Torn)
                } else {
                    None
                },
                None,
            ),
            FaultPolicy::Latency(d) => (None, Some(d)),
        };
        if act.is_some() {
            point.triggered += 1;
        }
        action = act;
        sleep_for = dur;
        // Lock dropped before sleeping so a latency point never stalls
        // unrelated arm/disarm calls.
    }
    if let Some(d) = sleep_for {
        std::thread::sleep(d);
    }
    action
}

/// Convenience wrapper mirroring the `FaultPoint::hit("name")` spelling.
pub struct FaultPoint;

impl FaultPoint {
    /// See [`hit`].
    #[inline]
    pub fn hit(name: &str) -> Option<FaultAction> {
        hit(name)
    }
}

/// Serializes fault-injection tests and guarantees cleanup: while the
/// returned guard is alive no other thread can hold it, and dropping it
/// (normally or during a panic) disarms every point.
///
/// Not reentrant — a test must call this once, at its top, and pass the
/// guard (or nothing) down to helpers.
pub fn exclusive() -> ExclusiveGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK.get_or_init(|| Mutex::new(())).lock();
    disarm_all();
    ExclusiveGuard { _guard: guard }
}

/// RAII guard from [`exclusive`]; disarms all points when dropped.
pub struct ExclusiveGuard {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for ExclusiveGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

/// Snapshot of `(name, hits, triggered)` for every armed point — used by the
/// `repro faults` report.
pub fn snapshot() -> Vec<(String, u64, u64)> {
    let reg: MutexGuard<'_, Registry> = registry().lock();
    let mut rows: Vec<(String, u64, u64)> = reg
        .points
        .iter()
        .map(|(k, v)| (k.clone(), v.hits, v.triggered))
        .collect();
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_is_noop() {
        let _g = exclusive();
        assert_eq!(hit("nonexistent.point"), None);
        assert_eq!(hits("nonexistent.point"), 0);
    }

    #[test]
    fn fail_nth_fires_from_n_onwards() {
        let _g = exclusive();
        arm("t.nth", FaultPolicy::FailNth(3));
        assert_eq!(hit("t.nth"), None);
        assert_eq!(hit("t.nth"), None);
        assert_eq!(hit("t.nth"), Some(FaultAction::Fail));
        assert_eq!(hit("t.nth"), Some(FaultAction::Fail));
        assert_eq!(hits("t.nth"), 4);
        assert_eq!(triggered("t.nth"), 2);
    }

    #[test]
    fn fail_once_fires_exactly_once() {
        let _g = exclusive();
        arm("t.once", FaultPolicy::FailOnce(2));
        assert_eq!(hit("t.once"), None);
        assert_eq!(hit("t.once"), Some(FaultAction::Fail));
        assert_eq!(hit("t.once"), None);
        assert_eq!(triggered("t.once"), 1);
    }

    #[test]
    fn torn_write_is_one_shot() {
        let _g = exclusive();
        arm("t.torn", FaultPolicy::TornWrite);
        assert_eq!(hit("t.torn"), Some(FaultAction::Torn));
        assert_eq!(hit("t.torn"), None);
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let _g = exclusive();
        let run = |seed: u64| -> Vec<bool> {
            arm(
                "t.prob",
                FaultPolicy::FailProbability {
                    num: 1,
                    den: 4,
                    seed,
                },
            );
            (0..64).map(|_| hit("t.prob").is_some()).collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must reproduce the same failures");
        assert_ne!(a, c, "different seeds should diverge");
        let fired = a.iter().filter(|x| **x).count();
        assert!(fired > 0 && fired < 64, "p=1/4 over 64 draws: got {fired}");
    }

    #[test]
    fn disarm_restores_fast_path() {
        let _g = exclusive();
        arm("t.a", FaultPolicy::FailNth(1));
        assert!(hit("t.a").is_some());
        disarm("t.a");
        assert_eq!(hit("t.a"), None);
        assert!(!ARMED.load(Ordering::Relaxed));
    }

    #[test]
    fn exclusive_guard_disarms_on_drop() {
        {
            let _g = exclusive();
            arm("t.cleanup", FaultPolicy::FailNth(1));
        }
        assert_eq!(hit("t.cleanup"), None);
    }

    #[test]
    fn points_list_is_nonempty_and_unique() {
        let mut names: Vec<&str> = points::ALL.to_vec();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(before >= 10);
    }
}
