//! Workspace-wide error type.

use std::fmt;

/// A specialized [`Result`](std::result::Result) used throughout MioDB.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors returned by MioDB and its substrates.
///
/// Every public fallible function in the workspace returns this type so that
/// errors compose across crates without boxing.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An I/O error from the operating system (file-backed snapshots, SSTable
    /// storage in tiered mode, write-ahead-log files).
    Io(std::io::Error),
    /// Persistent data failed an integrity check (bad checksum, truncated
    /// record, malformed node) and cannot be trusted.
    Corruption(String),
    /// The NVM pool (or an arena within it) has no room for the allocation.
    PoolExhausted {
        /// Bytes that were requested.
        requested: usize,
        /// Bytes that were available in the pool at the time.
        available: usize,
    },
    /// An arena-backed structure ran out of its reserved space; the caller
    /// should seal the structure and start a new one.
    ArenaFull,
    /// The caller supplied an argument outside the supported range.
    InvalidArgument(String),
    /// The database has been shut down and can no longer serve requests.
    Closed,
    /// A background task (flush/compaction thread) failed; the database is in
    /// read-only degraded mode.
    Background(String),
    /// A mutation's outcome is unknown: the request may have reached the
    /// server before the connection failed. The caller must read back (or
    /// re-issue an idempotent form of) the operation to learn the truth —
    /// blindly retrying a non-idempotent mutation could apply it twice.
    MaybeApplied(String),
    /// The contacted node is a replication follower and refused a
    /// mutation. The payload is a hint (`host:port`, possibly empty) for
    /// where the leader is believed to live; the request was *not*
    /// applied, so redirecting and retrying is always safe.
    NotLeader(String),
    /// The leader refused a mutation because it cannot currently reach a
    /// majority of the replication group, so a quorum acknowledgement is
    /// impossible. When raised *before* the write entered the engine
    /// (the server path) the mutation was not applied and retrying is
    /// safe; when raised from a quorum commit-wait the write is locally
    /// durable but not quorum-replicated, so treat it like
    /// [`Error::MaybeApplied`].
    QuorumLost {
        /// Reachable group members, counting the leader itself.
        have: usize,
        /// Members required for a majority.
        need: usize,
    },
    /// The contacted node was deposed: a newer leader exists at a higher
    /// replication epoch, and this node is fenced from accepting writes.
    /// The request was *not* applied. `hint` (possibly empty) is where
    /// the current leader is believed to live.
    StaleEpoch {
        /// The refusing node's current (newer) epoch.
        epoch: u64,
        /// Believed address of the current leader, possibly empty.
        hint: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::PoolExhausted {
                requested,
                available,
            } => write!(
                f,
                "pool exhausted: requested {requested} bytes, {available} available"
            ),
            Error::ArenaFull => write!(f, "arena full"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Closed => write!(f, "database is closed"),
            Error::Background(msg) => write!(f, "background error: {msg}"),
            Error::MaybeApplied(msg) => write!(f, "outcome unknown (may be applied): {msg}"),
            Error::NotLeader(hint) if hint.is_empty() => write!(f, "not the leader"),
            Error::NotLeader(hint) => write!(f, "not the leader (try {hint})"),
            Error::QuorumLost { have, need } => {
                write!(f, "quorum lost: {have} of {need} group members reachable")
            }
            Error::StaleEpoch { epoch, hint } if hint.is_empty() => {
                write!(f, "stale epoch: deposed by epoch {epoch}")
            }
            Error::StaleEpoch { epoch, hint } => {
                write!(f, "stale epoch: deposed by epoch {epoch} (try {hint})")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Returns `true` if the error indicates persistent-data corruption.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption(_))
    }

    /// Returns `true` if the error is a capacity problem (pool or arena).
    pub fn is_capacity(&self) -> bool {
        matches!(self, Error::PoolExhausted { .. } | Error::ArenaFull)
    }

    /// Returns `true` if a mutation's outcome is ambiguous (it may or may
    /// not have been applied) and the caller must read back to find out.
    pub fn is_maybe_applied(&self) -> bool {
        matches!(self, Error::MaybeApplied(_))
    }

    /// Returns `true` if the contacted node refused a mutation because it
    /// is a replication follower; the operation was not applied and can be
    /// safely retried against the hinted leader.
    pub fn is_not_leader(&self) -> bool {
        matches!(self, Error::NotLeader(_))
    }

    /// Returns `true` if the leader refused (or could not quorum-commit)
    /// a mutation because a majority of the replication group is
    /// unreachable.
    pub fn is_quorum_lost(&self) -> bool {
        matches!(self, Error::QuorumLost { .. })
    }

    /// Returns `true` if the contacted node was fenced by a newer epoch
    /// (it is a deposed leader); the mutation was not applied and should
    /// be retried against the current leader.
    pub fn is_stale_epoch(&self) -> bool {
        matches!(self, Error::StaleEpoch { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::Corruption("bad checksum".to_string());
        assert_eq!(e.to_string(), "corruption: bad checksum");
        let e = Error::ArenaFull;
        assert_eq!(e.to_string(), "arena full");
    }

    #[test]
    fn io_error_round_trip() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn capacity_classification() {
        assert!(Error::ArenaFull.is_capacity());
        assert!(Error::PoolExhausted {
            requested: 10,
            available: 5
        }
        .is_capacity());
        assert!(!Error::Closed.is_capacity());
        assert!(Error::Corruption(String::new()).is_corruption());
    }

    #[test]
    fn maybe_applied_classification() {
        let e = Error::MaybeApplied("connection reset mid-put".to_string());
        assert!(e.is_maybe_applied());
        assert_eq!(
            e.to_string(),
            "outcome unknown (may be applied): connection reset mid-put"
        );
        assert!(!Error::Closed.is_maybe_applied());
    }

    #[test]
    fn not_leader_classification() {
        let e = Error::NotLeader("127.0.0.1:7001".to_string());
        assert!(e.is_not_leader());
        assert_eq!(e.to_string(), "not the leader (try 127.0.0.1:7001)");
        assert_eq!(
            Error::NotLeader(String::new()).to_string(),
            "not the leader"
        );
        assert!(!Error::Closed.is_not_leader());
    }

    #[test]
    fn quorum_lost_classification() {
        let e = Error::QuorumLost { have: 1, need: 2 };
        assert!(e.is_quorum_lost());
        assert_eq!(e.to_string(), "quorum lost: 1 of 2 group members reachable");
        assert!(!Error::Closed.is_quorum_lost());
    }

    #[test]
    fn stale_epoch_classification() {
        let e = Error::StaleEpoch {
            epoch: 3,
            hint: "127.0.0.1:7002".to_string(),
        };
        assert!(e.is_stale_epoch());
        assert_eq!(
            e.to_string(),
            "stale epoch: deposed by epoch 3 (try 127.0.0.1:7002)"
        );
        assert_eq!(
            Error::StaleEpoch {
                epoch: 2,
                hint: String::new()
            }
            .to_string(),
            "stale epoch: deposed by epoch 2"
        );
        assert!(!Error::Closed.is_stale_epoch());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
