//! The uniform engine interface driven by workloads and benchmarks.

use crate::error::Result;
use crate::events::Event;
use crate::stats::StatsSnapshot;
use crate::telemetry::EngineTelemetry;

/// One entry returned by a range scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanEntry {
    /// User key.
    pub key: Vec<u8>,
    /// Value bytes.
    pub value: Vec<u8>,
}

/// Summary of an engine's internal state for reports (Figure 14 NVM usage,
/// Table 1 cost analysis).
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Human-readable engine name (e.g. `"MioDB"`, `"MatrixKV"`).
    pub name: String,
    /// Current bytes allocated in the NVM pool.
    pub nvm_used_bytes: u64,
    /// High-water mark of NVM pool usage.
    pub nvm_peak_bytes: u64,
    /// Number of tables/runs per level, top to bottom.
    pub tables_per_level: Vec<usize>,
    /// Statistics snapshot.
    pub stats: StatsSnapshot,
}

/// A key-value storage engine.
///
/// MioDB and all baselines (NoveLSM flat/hierarchical/NoSST, MatrixKV, and
/// the plain LevelDB-model LSM) implement this trait so the workload drivers
/// in `miodb-workloads` and the benchmark harness can treat them uniformly.
///
/// Implementations must be safe to share across threads (`&self` methods,
/// `Send + Sync`): the YCSB driver issues concurrent operations.
pub trait KvEngine: Send + Sync {
    /// Inserts or overwrites `key` with `value`.
    ///
    /// # Errors
    ///
    /// Returns an error if the write-ahead log or persistent layer fails, or
    /// if the engine is closed.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Returns the current value of `key`, or `None` if absent or deleted.
    ///
    /// # Errors
    ///
    /// Returns an error on persistent-layer corruption.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Removes `key` (writes a tombstone).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvEngine::put`].
    fn delete(&self, key: &[u8]) -> Result<()>;

    /// Returns up to `limit` entries with keys `>= start`, in ascending key
    /// order, skipping tombstones.
    ///
    /// # Errors
    ///
    /// Returns an error on persistent-layer corruption.
    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>>;

    /// Returns up to `limit` live entries with keys in `[start, end)`, in
    /// ascending key order.
    ///
    /// The default implementation pages through [`KvEngine::scan`] and
    /// stops at `end`; engines with native range support may override it.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`KvEngine::scan`].
    fn scan_range(&self, start: &[u8], end: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        let mut out = Vec::new();
        let mut cursor = start.to_vec();
        while out.len() < limit {
            let page = self.scan(&cursor, (limit - out.len()).max(16))?;
            if page.is_empty() {
                break;
            }
            let mut progressed = false;
            for e in page {
                if e.key.as_slice() >= end {
                    return Ok(out);
                }
                // Continue after this key next page.
                cursor = e.key.clone();
                cursor.push(0);
                progressed = true;
                out.push(e);
                if out.len() == limit {
                    return Ok(out);
                }
            }
            if !progressed {
                break;
            }
        }
        Ok(out)
    }

    /// Blocks until all buffered writes are persistent and background
    /// compactions triggered by them have settled. Used between the load and
    /// run phases of benchmarks.
    ///
    /// # Errors
    ///
    /// Returns an error if a background thread failed.
    fn wait_idle(&self) -> Result<()>;

    /// Engine state and statistics for reports.
    fn report(&self) -> EngineReport;

    /// Short engine name for tables/plots.
    fn name(&self) -> &str;

    /// The engine's telemetry collectors, when it has them.
    ///
    /// Engines returning `Some` get op-latency summaries, per-level byte
    /// gauges, compaction breakdowns and the structured event trace in
    /// their metrics output; the default `None` limits
    /// [`metrics_text`](KvEngine::metrics_text) to report-derived families.
    fn telemetry(&self) -> Option<&EngineTelemetry> {
        None
    }

    /// Renders current metrics in the Prometheus text exposition format.
    fn metrics_text(&self) -> String {
        crate::metrics::engine_registry(&self.report(), self.telemetry()).render_prometheus()
    }

    /// Renders current metrics as a JSON document.
    fn metrics_json(&self) -> String {
        crate::metrics::engine_registry(&self.report(), self.telemetry()).render_json()
    }

    /// Drains the structured event trace in FIFO order. Engines without
    /// telemetry return an empty vector.
    fn drain_events(&self) -> Vec<Event> {
        self.telemetry()
            .map(|t| t.drain_events())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_e: &dyn KvEngine) {}
    }

    #[test]
    fn scan_entry_equality() {
        let a = ScanEntry {
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        };
        assert_eq!(a.clone(), a);
    }
}
