//! Structured engine event tracing.
//!
//! Engines emit typed [`Event`]s (flush begin/end, compaction begin/end,
//! stall begin/end, pointer swizzles, bloom skips) into a bounded
//! lock-free [`EventRing`]. Consumers drain the ring with
//! [`EventRing::drain`] to reconstruct what the engine did and when —
//! e.g. to overlay compaction activity on a latency timeline (Figure 8)
//! or to assert flush/compaction ordering in tests.
//!
//! The ring is a fixed-capacity MPMC queue ([`MpmcRing`], Vyukov
//! bounded-queue scheme: a per-slot sequence number arbitrates producers
//! and consumers without locks). When full, new events are **dropped**
//! and counted (saturating) — tracing must never block or stall the
//! engine it observes.

use crate::ring::MpmcRing;

/// Which compaction algorithm an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionKind {
    /// Pointer-migration merge between PMTable levels (MioDB §4.3).
    ZeroCopy,
    /// Data-movement drain into the repository (lazy-copy, §4.4) or an
    /// SSTable compaction in baseline engines.
    LazyCopy,
}

impl CompactionKind {
    /// Stable lowercase label used in metrics and logs.
    pub fn label(&self) -> &'static str {
        match self {
            CompactionKind::ZeroCopy => "zero_copy",
            CompactionKind::LazyCopy => "lazy_copy",
        }
    }
}

/// Which writer-blocking mechanism a stall event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Writers blocked waiting for the immutable MemTable to flush
    /// (paper: *interval stalls*).
    Interval,
    /// Writers delayed deliberately to pace ingest
    /// (paper: *cumulative stalls* / slowdowns).
    Cumulative,
}

impl StallKind {
    /// Stable lowercase label used in metrics and logs.
    pub fn label(&self) -> &'static str {
        match self {
            StallKind::Interval => "interval",
            StallKind::Cumulative => "cumulative",
        }
    }
}

/// A structured engine event. All payloads are scalar so events are `Copy`
/// and emission never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A MemTable flush started.
    FlushBegin {
        /// Bytes in the MemTable being flushed.
        bytes: u64,
    },
    /// A MemTable flush completed.
    FlushEnd {
        /// Bytes moved to the persistent layer.
        bytes: u64,
        /// Wall-clock duration of the flush in nanoseconds.
        dur_ns: u64,
    },
    /// A compaction from `level` to `level + 1` (or into the repository)
    /// started.
    CompactionBegin {
        /// Source level.
        level: u32,
        /// Algorithm used.
        kind: CompactionKind,
    },
    /// The matching compaction finished.
    CompactionEnd {
        /// Source level.
        level: u32,
        /// Algorithm used.
        kind: CompactionKind,
        /// Bytes logically merged (inputs).
        bytes: u64,
        /// Wall-clock duration in nanoseconds.
        dur_ns: u64,
    },
    /// Writers started blocking or being paced.
    StallBegin {
        /// Stall mechanism.
        kind: StallKind,
    },
    /// The matching stall released.
    StallEnd {
        /// Stall mechanism.
        kind: StallKind,
        /// Nanoseconds writers were held.
        dur_ns: u64,
    },
    /// A one-piece flush re-based skip-list pointers (§4.2).
    Swizzle {
        /// Nanoseconds spent swizzling.
        dur_ns: u64,
    },
    /// A bloom filter skipped a table during a read.
    BloomSkip {
        /// Level of the skipped table.
        level: u32,
    },
}

/// A timestamped engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the engine's telemetry epoch (engine start).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Bounded lock-free MPMC ring buffer of [`Event`]s.
///
/// Producers never block: pushing into a full ring drops the event and
/// increments the saturating [`dropped`](MpmcRing::dropped) counter.
pub type EventRing = MpmcRing<Event>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            kind: EventKind::BloomSkip { level: 0 },
        }
    }

    #[test]
    fn fifo_order_single_thread() {
        let ring = EventRing::with_capacity(8);
        for i in 0..5 {
            assert!(ring.push(ev(i)));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 5);
        for (i, e) in drained.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64);
        }
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let ring = EventRing::with_capacity(4);
        for i in 0..4 {
            assert!(ring.push(ev(i)));
        }
        assert!(!ring.push(ev(99)));
        assert!(!ring.push(ev(100)));
        assert_eq!(ring.dropped(), 2);
        // The ring kept the oldest events, not the dropped ones.
        let drained = ring.drain();
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0].ts_ns, 0);
        assert_eq!(drained[3].ts_ns, 3);
        // Space freed by draining accepts new events again.
        assert!(ring.push(ev(7)));
        assert_eq!(ring.drain()[0].ts_ns, 7);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(5).capacity(), 8);
        assert_eq!(EventRing::with_capacity(0).capacity(), 2);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 1024;
        let ring = Arc::new(EventRing::with_capacity(PRODUCERS * PER_PRODUCER));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        assert!(ring.push(ev((p * PER_PRODUCER + i) as u64)));
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), PRODUCERS * PER_PRODUCER);
        assert_eq!(ring.dropped(), 0);
        // Per-producer subsequences must appear in emission order.
        for p in 0..PRODUCERS {
            let lo = (p * PER_PRODUCER) as u64;
            let hi = lo + PER_PRODUCER as u64;
            let mine: Vec<u64> = drained
                .iter()
                .map(|e| e.ts_ns)
                .filter(|t| (lo..hi).contains(t))
                .collect();
            assert!(
                mine.windows(2).all(|w| w[0] < w[1]),
                "producer {p} reordered"
            );
        }
    }
}
