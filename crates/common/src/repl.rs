//! The seam between the engine's commit pipeline and replication.
//!
//! `miodb-core` cannot depend on `miodb-repl` (which depends on core), so
//! the engine publishes committed WAL records through this trait and the
//! replication crate implements it. Two calls, two places:
//!
//! - [`ReplicationSink::publish`] runs **inside** the commit critical
//!   section (write mutex held, right after the WAL append) so records
//!   are handed over in exactly commit order with dense sequence ranges.
//!   Implementations must only enqueue — never block on I/O there.
//! - [`ReplicationSink::wait_committed`] runs **after** the mutex is
//!   released, once per user-visible write, and is where a `semi-sync`
//!   ack level blocks the caller until a follower has acknowledged the
//!   write's last sequence number.

use crate::error::Result;

/// When a leader acknowledges a mutation to its client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckLevel {
    /// Acknowledge as soon as the write is locally durable (WAL'd);
    /// replication to followers is fire-and-forget. A leader crash can
    /// lose acked-but-unshipped writes on failover.
    #[default]
    Async,
    /// Additionally block the acknowledgement until at least one follower
    /// has acknowledged applying the write. A timeout surfaces as
    /// [`Error::MaybeApplied`](crate::Error::MaybeApplied) — the write is
    /// locally durable but its replication state is unknown — so the
    /// durable-prefix guarantee ("no acked write lost on failover")
    /// holds even under follower stalls.
    SemiSync,
}

impl AckLevel {
    /// Lower-case label for metrics and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            AckLevel::Async => "async",
            AckLevel::SemiSync => "semi-sync",
        }
    }
}

/// Receives committed WAL records from the engine's write pipeline.
pub trait ReplicationSink: Send + Sync {
    /// Hands over one framed WAL record (a single op or a whole commit
    /// group) covering sequence numbers `seq_first..=seq_last`.
    ///
    /// Called in commit order with the engine's write mutex held: must
    /// be cheap and non-blocking (enqueue + wake, no I/O).
    fn publish(&self, bytes: &[u8], seq_first: u64, seq_last: u64);

    /// Blocks until the configured ack level is satisfied for
    /// `seq_last`. Called after the commit critical section, once per
    /// user write.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MaybeApplied`](crate::Error::MaybeApplied) when a
    /// semi-sync ack does not arrive in time: the write is locally
    /// durable but may not have reached any follower.
    fn wait_committed(&self, seq_last: u64) -> Result<()>;
}
