//! The seam between the engine's commit pipeline and replication.
//!
//! `miodb-core` cannot depend on `miodb-repl` (which depends on core), so
//! the engine publishes committed WAL records through this trait and the
//! replication crate implements it. Two calls, two places:
//!
//! - [`ReplicationSink::publish`] runs **inside** the commit critical
//!   section (write mutex held, right after the WAL append) so records
//!   are handed over in exactly commit order with dense sequence ranges.
//!   Implementations must only enqueue — never block on I/O there.
//! - [`ReplicationSink::wait_committed`] runs **after** the mutex is
//!   released, once per user-visible write, and is where a `semi-sync`
//!   ack level blocks the caller until a follower has acknowledged the
//!   write's last sequence number.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;

use crate::error::Result;

/// When a leader acknowledges a mutation to its client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckLevel {
    /// Acknowledge as soon as the write is locally durable (WAL'd);
    /// replication to followers is fire-and-forget. A leader crash can
    /// lose acked-but-unshipped writes on failover.
    #[default]
    Async,
    /// Additionally block the acknowledgement until at least one follower
    /// has acknowledged applying the write. A timeout surfaces as
    /// [`Error::MaybeApplied`](crate::Error::MaybeApplied) — the write is
    /// locally durable but its replication state is unknown — so the
    /// durable-prefix guarantee ("no acked write lost on failover")
    /// holds even under follower stalls.
    SemiSync,
    /// Block the acknowledgement until a majority of the replication
    /// group (leader included) has the write durably applied. A timeout
    /// surfaces as [`Error::MaybeApplied`](crate::Error::MaybeApplied);
    /// losing a majority of the group surfaces as the typed
    /// [`Error::QuorumLost`](crate::Error::QuorumLost) instead of being
    /// silently accepted. Quorum-acked writes survive any failover that
    /// leaves a majority alive.
    Quorum,
}

impl AckLevel {
    /// Lower-case label for metrics and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            AckLevel::Async => "async",
            AckLevel::SemiSync => "semi-sync",
            AckLevel::Quorum => "quorum",
        }
    }
}

/// Receives committed WAL records from the engine's write pipeline.
pub trait ReplicationSink: Send + Sync {
    /// Hands over one framed WAL record (a single op or a whole commit
    /// group) covering sequence numbers `seq_first..=seq_last`.
    ///
    /// Called in commit order with the engine's write mutex held: must
    /// be cheap and non-blocking (enqueue + wake, no I/O).
    fn publish(&self, bytes: &[u8], seq_first: u64, seq_last: u64);

    /// Blocks until the configured ack level is satisfied for
    /// `seq_last`. Called after the commit critical section, once per
    /// user write.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MaybeApplied`](crate::Error::MaybeApplied) when a
    /// semi-sync ack does not arrive in time: the write is locally
    /// durable but may not have reached any follower.
    fn wait_committed(&self, seq_last: u64) -> Result<()>;
}

/// Members required for a majority of a replication group of `n` nodes
/// (leader included). `majority(3) == 2`, `majority(1) == 1`.
pub fn majority(group_size: usize) -> usize {
    group_size / 2 + 1
}

/// A node's replication role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations and streams records to subscribers.
    Leader,
    /// Applies streamed records; redirects mutations to the leader.
    Follower,
}

/// Shared per-node replication role state: the monotonic epoch, the
/// current role, the believed leader address, and the single vote a node
/// may cast per epoch.
///
/// This is the fencing heart of the group. The epoch only ever advances;
/// a leader that observes a higher epoch (from a follower's ack, a vote
/// request, or a probe) is *deposed* — it steps down to follower and
/// every subsequent mutation is refused with
/// [`Error::StaleEpoch`](crate::Error::StaleEpoch) before touching the
/// engine. Votes are granted at most once per epoch and only to a
/// candidate at least as caught up as the voter (`(last_seq, addr)`
/// lexicographic order), which is what makes quorum-acked writes survive
/// elections: any majority of voters intersects any majority that acked
/// a write, and the intersection refuses less-caught-up candidates.
#[derive(Debug)]
pub struct RoleState {
    epoch: AtomicU64,
    role: AtomicU8,
    deposed: AtomicBool,
    leader_live: AtomicBool,
    inner: Mutex<RoleInner>,
}

#[derive(Debug, Default)]
struct RoleInner {
    leader_hint: String,
    voted_epoch: u64,
    voted_for: String,
}

const ROLE_LEADER: u8 = 0;
const ROLE_FOLLOWER: u8 = 1;

impl RoleState {
    /// A node that starts as the group's leader at `epoch`.
    pub fn new_leader(epoch: u64) -> RoleState {
        RoleState {
            epoch: AtomicU64::new(epoch),
            role: AtomicU8::new(ROLE_LEADER),
            deposed: AtomicBool::new(false),
            leader_live: AtomicBool::new(true),
            inner: Mutex::new(RoleInner::default()),
        }
    }

    /// A node that starts as a follower of `leader_hint` at `epoch`.
    pub fn new_follower(epoch: u64, leader_hint: &str) -> RoleState {
        RoleState {
            epoch: AtomicU64::new(epoch),
            role: AtomicU8::new(ROLE_FOLLOWER),
            deposed: AtomicBool::new(false),
            leader_live: AtomicBool::new(true),
            inner: Mutex::new(RoleInner {
                leader_hint: leader_hint.to_string(),
                ..RoleInner::default()
            }),
        }
    }

    /// Current replication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Current role.
    pub fn role(&self) -> Role {
        if self.role.load(Ordering::SeqCst) == ROLE_LEADER {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    /// `true` while this node believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.role() == Role::Leader
    }

    /// `true` once this node was fenced out of a leadership it held:
    /// mutations must be refused with `StaleEpoch`, not `NotLeader`.
    pub fn is_deposed(&self) -> bool {
        self.deposed.load(Ordering::SeqCst)
    }

    /// Believed address of the current leader (this node's own address
    /// when it is the leader; possibly empty mid-election).
    pub fn leader_hint(&self) -> String {
        self.inner.lock().leader_hint.clone()
    }

    /// Updates the believed leader address.
    pub fn set_leader_hint(&self, hint: &str) {
        self.inner.lock().leader_hint = hint.to_string();
    }

    /// Whether the leader this node follows is currently considered
    /// alive by its failure detector (always `true` on a leader).
    pub fn leader_live(&self) -> bool {
        self.is_leader() || self.leader_live.load(Ordering::SeqCst)
    }

    /// Failure-detector input: records the liveness of the followed
    /// leader.
    pub fn set_leader_live(&self, live: bool) {
        self.leader_live.store(live, Ordering::SeqCst);
    }

    /// Adopts a higher epoch learned from a peer (vote request, ack or
    /// probe). A leader observing one steps down *deposed*. Returns
    /// `true` when the epoch advanced.
    pub fn observe_epoch(&self, epoch: u64, hint: &str) -> bool {
        let mut inner = self.inner.lock();
        if epoch <= self.epoch.load(Ordering::SeqCst) {
            if !hint.is_empty() && epoch == self.epoch.load(Ordering::SeqCst) {
                inner.leader_hint = hint.to_string();
            }
            return false;
        }
        self.epoch.store(epoch, Ordering::SeqCst);
        if self.role.swap(ROLE_FOLLOWER, Ordering::SeqCst) == ROLE_LEADER {
            self.deposed.store(true, Ordering::SeqCst);
        }
        self.leader_live.store(false, Ordering::SeqCst);
        inner.leader_hint = hint.to_string();
        true
    }

    /// Clears the deposed fence once the node has re-joined the group as
    /// a clean follower: from here on, refused mutations redirect with
    /// `NotLeader` (the node is just a follower) instead of `StaleEpoch`
    /// (the node *was* the leader and must not be trusted).
    pub fn acknowledge_deposed(&self) {
        self.deposed.store(false, Ordering::SeqCst);
    }

    /// Assumes leadership at `epoch` (election win or explicit
    /// promotion). Clears the deposed flag: the node earned a fresh
    /// mandate.
    pub fn become_leader(&self, epoch: u64) {
        let current = self.epoch.load(Ordering::SeqCst);
        self.epoch.store(epoch.max(current), Ordering::SeqCst);
        self.role.store(ROLE_LEADER, Ordering::SeqCst);
        self.deposed.store(false, Ordering::SeqCst);
        self.leader_live.store(true, Ordering::SeqCst);
    }

    /// The vote gate. Grants iff `req_epoch` is newer than both the
    /// current epoch and any vote already cast, *and* the candidate is at
    /// least as caught up as this node (`(last_seq, addr)` order). A
    /// granted (or even merely observed-higher) epoch deposes a leader.
    /// Re-granting the same `(epoch, candidate)` pair is idempotent so
    /// candidates can retry lost responses.
    pub fn consider_vote(
        &self,
        req_epoch: u64,
        cand_seq: u64,
        candidate: &str,
        my_seq: u64,
        my_addr: &str,
    ) -> bool {
        if req_epoch == 0 {
            return false; // probe, never grantable
        }
        if req_epoch > self.epoch() {
            self.observe_epoch(req_epoch, "");
        }
        if req_epoch < self.epoch() {
            return false;
        }
        let mut inner = self.inner.lock();
        if inner.voted_epoch == req_epoch && inner.voted_for != candidate {
            return false;
        }
        if (cand_seq, candidate) < (my_seq, my_addr) {
            return false;
        }
        inner.voted_epoch = req_epoch;
        inner.voted_for = candidate.to_string();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_math() {
        assert_eq!(majority(1), 1);
        assert_eq!(majority(2), 2);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(5), 3);
    }

    #[test]
    fn observing_higher_epoch_deposes_leader() {
        let r = RoleState::new_leader(1);
        assert!(r.is_leader());
        assert!(!r.observe_epoch(1, ""), "same epoch is not an advance");
        assert!(r.is_leader());
        assert!(r.observe_epoch(2, "127.0.0.1:9"));
        assert!(!r.is_leader());
        assert!(r.is_deposed());
        assert_eq!(r.epoch(), 2);
        assert_eq!(r.leader_hint(), "127.0.0.1:9");
        // A fresh mandate clears the fence.
        r.become_leader(3);
        assert!(r.is_leader());
        assert!(!r.is_deposed());
        assert_eq!(r.epoch(), 3);
    }

    #[test]
    fn one_vote_per_epoch_and_catch_up_gate() {
        let f = RoleState::new_follower(1, "l");
        // Lagging candidate refused even at a new epoch.
        assert!(!f.consider_vote(2, 5, "b", 10, "a"));
        // Epoch still advanced from the attempt (fencing).
        assert_eq!(f.epoch(), 2);
        // Caught-up candidate at the next epoch wins the vote.
        assert!(f.consider_vote(3, 10, "b", 10, "a"));
        // Same epoch, different candidate: refused.
        assert!(!f.consider_vote(3, 99, "c", 10, "a"));
        // Same (epoch, candidate): idempotent re-grant.
        assert!(f.consider_vote(3, 10, "b", 10, "a"));
        // Address breaks the sequence tie deterministically.
        assert!(!f.consider_vote(4, 10, "a", 10, "b"));
        assert!(f.consider_vote(5, 10, "b", 10, "b"));
    }

    #[test]
    fn probe_epoch_zero_never_grants_or_mutates() {
        let f = RoleState::new_follower(4, "l");
        assert!(!f.consider_vote(0, u64::MAX, "c", 0, "a"));
        assert_eq!(f.epoch(), 4);
        assert_eq!(f.leader_hint(), "l");
    }
}
