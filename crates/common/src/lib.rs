//! Common types shared across the MioDB workspace.
//!
//! This crate defines the vocabulary used by every other crate in the
//! reproduction of *"Revisiting Log-Structured Merging for KV Stores in
//! Hybrid Memory Systems"* (ASPLOS'23):
//!
//! - [`error`]: the workspace-wide [`error::Error`] type,
//! - [`types`]: keys, values, sequence numbers and operation kinds,
//! - [`histogram`]: a log-bucketed latency histogram with percentiles,
//! - [`conc_histogram`]: its lock-free multi-writer counterpart,
//! - [`stats`]: atomic counters for stalls, flushing and write amplification,
//! - [`ring`]: the bounded lock-free MPMC ring backing both traces,
//! - [`events`]: the bounded lock-free structured event trace,
//! - [`trace`]: end-to-end request spans with critical-path attribution,
//! - [`fault`]: the deterministic seed-driven fault-injection registry
//!   wired through pmem, WAL, engine and network layers,
//! - [`telemetry`]: per-engine telemetry (op histograms, level metrics,
//!   event emission) behind the [`telemetry::TelemetryOptions`] knob,
//! - [`metrics`]: Prometheus/JSON exposition of all of the above,
//! - [`proto`]: the length-prefixed CRC-protected network wire protocol
//!   spoken by `miodb-server` and `miodb-client`,
//! - [`repl`]: the replication seam ([`repl::ReplicationSink`]) between
//!   the commit pipeline and the WAL-shipping replicator,
//! - [`service`]: connection gauges and per-opcode request histograms for
//!   the network service layer,
//! - [`engine`]: the [`engine::KvEngine`] trait implemented by
//!   MioDB and every baseline so that workloads can drive them uniformly.

pub mod conc_histogram;
pub mod crc32;
pub mod engine;
pub mod error;
pub mod events;
pub mod fault;
pub mod histogram;
pub mod metrics;
pub mod proto;
pub mod repl;
pub mod ring;
pub mod service;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod types;

pub use conc_histogram::ConcurrentHistogram;
pub use engine::{EngineReport, KvEngine, ScanEntry};
pub use error::{Error, Result};
pub use events::{CompactionKind, Event, EventKind, EventRing, StallKind};
pub use fault::{FaultAction, FaultPoint, FaultPolicy};
pub use histogram::Histogram;
pub use metrics::MetricsRegistry;
pub use proto::{Opcode, Request, Response};
pub use repl::{majority, AckLevel, ReplicationSink, Role, RoleState};
pub use ring::MpmcRing;
pub use service::ServiceTelemetry;
pub use stats::Stats;
pub use telemetry::{EngineTelemetry, LevelMetrics, TelemetryOptions};
pub use trace::{SpanKind, SpanLayer, SpanRecord, TraceCtx};
pub use types::{OpKind, SequenceNumber, MAX_SEQUENCE_NUMBER};
