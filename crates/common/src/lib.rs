//! Common types shared across the MioDB workspace.
//!
//! This crate defines the vocabulary used by every other crate in the
//! reproduction of *"Revisiting Log-Structured Merging for KV Stores in
//! Hybrid Memory Systems"* (ASPLOS'23):
//!
//! - [`error`]: the workspace-wide [`error::Error`] type,
//! - [`types`]: keys, values, sequence numbers and operation kinds,
//! - [`histogram`]: a log-bucketed latency histogram with percentiles,
//! - [`stats`]: atomic counters for stalls, flushing and write amplification,
//! - [`engine`]: the [`engine::KvEngine`] trait implemented by
//!   MioDB and every baseline so that workloads can drive them uniformly.

pub mod crc32;
pub mod engine;
pub mod error;
pub mod histogram;
pub mod stats;
pub mod types;

pub use engine::{EngineReport, KvEngine, ScanEntry};
pub use error::{Error, Result};
pub use histogram::Histogram;
pub use stats::Stats;
pub use types::{OpKind, SequenceNumber, MAX_SEQUENCE_NUMBER};
