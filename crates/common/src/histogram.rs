//! Log-bucketed latency histogram with percentile queries.
//!
//! The evaluation in the paper reports average, 90th, 99th and 99.9th
//! percentile latencies (Tables 2 and 3) and per-operation latency timelines
//! (Figure 8). This histogram records nanosecond latencies into
//! logarithmically spaced buckets (HdrHistogram-style: power-of-two major
//! buckets each split into 16 linear sub-buckets, ~6% relative error) so
//! recording is O(1) and memory use is constant.

/// Number of linear sub-buckets per power-of-two bucket.
const SUB_BUCKETS: usize = 16;
/// log2 of `SUB_BUCKETS`.
const SUB_BITS: u32 = 4;
/// Number of power-of-two major buckets (covers up to 2^40 ns ≈ 18 minutes).
const MAJOR_BUCKETS: usize = 41;
/// Total bucket count; shared with [`crate::ConcurrentHistogram`] so its
/// snapshots reuse this exact layout.
pub(crate) const NUM_BUCKETS: usize = MAJOR_BUCKETS * SUB_BUCKETS;

/// A latency histogram with log-spaced buckets.
///
/// # Examples
///
/// ```
/// use miodb_common::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400, 1_000_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(99.9) >= 900_000);
/// assert!(h.mean() > 100.0);
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean_ns", &self.mean())
            .field("p50_ns", &self.percentile(50.0))
            .field("p99_ns", &self.percentile(99.0))
            .field("max_ns", &self.max())
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Builds a histogram from raw bucket counts produced by a
    /// [`crate::ConcurrentHistogram`] snapshot (same bucket layout).
    pub(crate) fn from_parts(buckets: Vec<u64>, sum: u64, min: u64, max: u64) -> Histogram {
        debug_assert_eq!(buckets.len(), NUM_BUCKETS);
        let count = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }

    pub(crate) fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        // Values in [2^m, 2^(m+1)) are split into 16 sub-buckets of width
        // 2^(m-4). Row 0 holds [0, 16) exactly, so row for exponent m is
        // m - SUB_BITS + 1 (m = 4 -> row 1).
        let m = 63 - value.leading_zeros();
        let row = (m - SUB_BITS + 1) as usize;
        let sub = (value >> (m - SUB_BITS)) as usize & (SUB_BUCKETS - 1);
        (row * SUB_BUCKETS + sub).min(NUM_BUCKETS - 1)
    }

    /// Inclusive upper bound of a bucket (the value reported for it).
    pub(crate) fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let row = (index / SUB_BUCKETS) as u32;
        let sub = (index % SUB_BUCKETS) as u64;
        let m = row + SUB_BITS - 1;
        let base = 1u64 << m;
        let width = base >> SUB_BITS;
        base + (sub + 1) * width - 1
    }

    /// Records one observation (e.g. a latency in nanoseconds).
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at the given percentile `p` (0–100), approximated to the bucket
    /// boundary (~6% relative error). Returns 0 when empty; `p = 0` returns
    /// the exact minimum and `p = 100` the exact maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0;
        }
        if p == 0.0 {
            return self.min();
        }
        if p == 100.0 {
            return self.max;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the observations recorded since `earlier` was captured, where
    /// `earlier` must be a previous snapshot of the same histogram.
    ///
    /// Interval `min`/`max` are approximated to bucket boundaries (the exact
    /// extremes of the interval are not recoverable from cumulative state).
    /// Used to reconstruct latency timelines (Figure 8) from engine-side
    /// cumulative histograms.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let first = buckets.iter().position(|&c| c > 0);
        let last = buckets.iter().rposition(|&c| c > 0);
        Histogram {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: first.map_or(u64::MAX, Self::bucket_value),
            max: last.map_or(0, Self::bucket_value),
            buckets,
        }
    }

    /// Clears all recorded observations.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Formats the standard latency report used by Tables 2 and 3:
    /// `avg / p90 / p99 / p99.9` in microseconds.
    pub fn summary_us(&self) -> String {
        format!(
            "avg={:.1}us p90={:.1}us p99={:.1}us p99.9={:.1}us",
            self.mean() / 1000.0,
            self.percentile(90.0) as f64 / 1000.0,
            self.percentile(99.0) as f64 / 1000.0,
            self.percentile(99.9) as f64 / 1000.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(100.0), 15);
    }

    #[test]
    fn percentile_monotonic() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100);
        }
        let mut last = 0;
        for p in [10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "p{p} = {v} < previous {last}");
            last = v;
        }
    }

    #[test]
    fn percentile_accuracy_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0) as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.08, "p50 = {p50}");
        let p99 = h.percentile(99.0) as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.08, "p99 = {p99}");
    }

    #[test]
    fn mean_and_sum() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.sum(), 60);
        assert!((h.mean() - 20.0).abs() < f64::EPSILON);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.min(), 1);
        let p50 = a.percentile(50.0) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.1);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn large_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(100.0) > 0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_out_of_range_panics() {
        Histogram::new().percentile(101.0);
    }

    #[test]
    fn percentile_zero_returns_min() {
        let mut h = Histogram::new();
        for v in [37u64, 1_000, 2_000_000] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 37);
    }

    #[test]
    fn percentile_hundred_returns_exact_max() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 3);
        }
        assert_eq!(h.percentile(100.0), 30_000);
    }

    #[test]
    fn percentile_edges_on_empty() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 0);
    }

    #[test]
    fn diff_isolates_an_interval() {
        let mut h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let checkpoint = h.clone();
        for v in 100_000..=101_000u64 {
            h.record(v);
        }
        let interval = h.diff(&checkpoint);
        assert_eq!(interval.count(), 1_001);
        assert!(interval.min() >= 90_000, "min = {}", interval.min());
        let p50 = interval.percentile(50.0) as f64;
        assert!((p50 - 100_500.0).abs() / 100_500.0 < 0.08, "p50 = {p50}");
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty() {
        let mut h = Histogram::new();
        h.record(123);
        let d = h.diff(&h.clone());
        assert_eq!(d.count(), 0);
        assert_eq!(d.percentile(50.0), 0);
        assert_eq!(d.min(), 0);
    }

    #[test]
    fn from_parts_round_trips_buckets() {
        let mut h = Histogram::new();
        for v in [5u64, 77, 3_000, 1 << 20] {
            h.record(v);
        }
        let rebuilt = Histogram::from_parts(h.buckets.clone(), h.sum(), h.min(), h.max());
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.percentile(50.0), h.percentile(50.0));
        assert_eq!(rebuilt.min(), h.min());
        assert_eq!(rebuilt.max(), h.max());
    }

    #[test]
    fn bucket_value_is_upper_bound_of_its_bucket() {
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 123_456, 10_000_000] {
            let idx = Histogram::bucket_index(v);
            let upper = Histogram::bucket_value(idx);
            assert!(upper >= v, "value {v} maps to bucket with upper {upper}");
            // The representative must be within ~1/16 of the value above it.
            assert!(upper as f64 <= v as f64 * 1.07 + 16.0);
        }
    }
}
