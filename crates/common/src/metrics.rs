//! Metrics exposition: Prometheus text format and JSON.
//!
//! [`MetricsRegistry`] collects metric families (counters, gauges,
//! summaries) and renders them in the Prometheus text exposition format or
//! as a JSON document. [`engine_registry`] assembles the standard family
//! set for any [`KvEngine`](crate::KvEngine) from its
//! [`EngineReport`](crate::EngineReport) and optional
//! [`EngineTelemetry`](crate::EngineTelemetry), which backs the provided
//! `metrics_text()` / `metrics_json()` trait methods.

use crate::engine::EngineReport;
use crate::histogram::Histogram;
use crate::telemetry::EngineTelemetry;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Prometheus metric family type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricType {
    /// Monotonically increasing value.
    Counter,
    /// Value that can go up and down.
    Gauge,
    /// Pre-computed quantiles plus `_sum`/`_count`.
    Summary,
}

impl MetricType {
    fn label(&self) -> &'static str {
        match self {
            MetricType::Counter => "counter",
            MetricType::Gauge => "gauge",
            MetricType::Summary => "summary",
        }
    }
}

#[derive(Debug, Clone)]
struct Sample {
    /// Suffix appended to the family name (`"_sum"`, `"_count"` or empty).
    suffix: &'static str,
    labels: Vec<(String, String)>,
    value: f64,
}

#[derive(Debug, Clone)]
struct Family {
    name: String,
    help: String,
    kind: MetricType,
    samples: Vec<Sample>,
}

/// An ordered collection of metric families.
///
/// # Examples
///
/// ```
/// use miodb_common::metrics::MetricsRegistry;
///
/// let mut r = MetricsRegistry::new();
/// r.gauge("kv_level_bytes", "Bytes per level", &[("level", "0")], 4096.0);
/// let text = r.render_prometheus();
/// assert!(text.contains("# TYPE kv_level_bytes gauge"));
/// assert!(text.contains("kv_level_bytes{level=\"0\"} 4096"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: MetricType) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    fn push_sample(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricType,
        suffix: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.family(name, help, kind).samples.push(Sample {
            suffix,
            labels,
            value,
        });
    }

    /// Adds one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push_sample(name, help, MetricType::Counter, "", labels, value);
    }

    /// Adds one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push_sample(name, help, MetricType::Gauge, "", labels, value);
    }

    /// Adds a summary rendered from a latency histogram: quantiles 0.5,
    /// 0.9, 0.99 and 0.999 plus `_sum`/`_count`, with recorded values
    /// multiplied by `scale` (e.g. `1e-9` to expose nanoseconds as
    /// seconds).
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &Histogram,
        scale: f64,
    ) {
        for (q, p) in [
            ("0.5", 50.0),
            ("0.9", 90.0),
            ("0.99", 99.0),
            ("0.999", 99.9),
        ] {
            let mut quantile_labels: Vec<(&str, &str)> = labels.to_vec();
            quantile_labels.push(("quantile", q));
            self.push_sample(
                name,
                help,
                MetricType::Summary,
                "",
                &quantile_labels,
                hist.percentile(p) as f64 * scale,
            );
        }
        self.push_sample(
            name,
            help,
            MetricType::Summary,
            "_sum",
            labels,
            hist.sum() as f64 * scale,
        );
        self.push_sample(
            name,
            help,
            MetricType::Summary,
            "_count",
            labels,
            hist.count() as f64,
        );
    }

    /// Renders the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.label());
            for s in &f.samples {
                out.push_str(&f.name);
                out.push_str(s.suffix);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
                    }
                    out.push('}');
                }
                let _ = writeln!(out, " {}", format_value(s.value));
            }
        }
        out
    }

    /// Renders the same families as a JSON document:
    /// `{"families": [{"name", "type", "help", "samples": [...]}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"families\":[");
        for (fi, f) in self.families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"type\":\"{}\",\"help\":{},\"samples\":[",
                json_string(&f.name),
                f.kind.label(),
                json_string(&f.help)
            );
            for (si, s) in f.samples.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":{},\"labels\":{{",
                    json_string(&format!("{}{}", f.name, s.suffix))
                );
                for (li, (k, v)) in s.labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", json_string(k), json_string(v));
                }
                let _ = write!(out, "}},\"value\":{}}}", json_number(s.value));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Prometheus sample value formatting: integers without a decimal point,
/// everything else in shortest float form.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// JSON numbers cannot be NaN/inf; map them to null.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format_value(v)
    } else {
        "null".to_string()
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds the standard metric family set for an engine.
///
/// Families sourced from the [`EngineReport`] (stall totals, device bytes,
/// flush totals, write amplification, per-level table counts) are present
/// for every engine; op-latency summaries, per-level byte gauges and
/// compaction breakdowns additionally require the engine to expose
/// [`EngineTelemetry`].
pub fn engine_registry(
    report: &EngineReport,
    telemetry: Option<&EngineTelemetry>,
) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    r.gauge(
        "miodb_engine_info",
        "Constant 1; the engine label identifies the implementation.",
        &[("engine", &report.name)],
        1.0,
    );

    if let Some(t) = telemetry {
        r.gauge(
            "miodb_uptime_seconds",
            "Seconds since the engine was opened.",
            &[],
            t.uptime().as_secs_f64(),
        );
        for (op, hist) in [
            ("put", &t.put_latency),
            ("get", &t.get_latency),
            ("delete", &t.delete_latency),
            ("scan", &t.scan_latency),
        ] {
            r.summary(
                "miodb_op_latency_seconds",
                "Engine-side operation latency quantiles.",
                &[("op", op)],
                &hist.snapshot(),
                1e-9,
            );
        }
        for (i, level) in t.levels().iter().enumerate() {
            let label = i.to_string();
            let labels: &[(&str, &str)] = &[("level", &label)];
            r.gauge(
                "miodb_level_bytes",
                "Bytes resident per LSM level.",
                labels,
                level.bytes.load(Ordering::Relaxed) as f64,
            );
            r.gauge(
                "miodb_level_pending_compactions",
                "Compactions queued or running per source level.",
                labels,
                level.pending_compactions.load(Ordering::Relaxed) as f64,
            );
            for (kind, count, ns) in [
                (
                    "zero_copy",
                    &level.zero_copy_compactions,
                    &level.zero_copy_ns,
                ),
                (
                    "lazy_copy",
                    &level.lazy_copy_compactions,
                    &level.lazy_copy_ns,
                ),
            ] {
                let kind_labels: &[(&str, &str)] = &[("level", &label), ("kind", kind)];
                r.counter(
                    "miodb_compactions_total",
                    "Completed compactions per source level and kind.",
                    kind_labels,
                    count.load(Ordering::Relaxed) as f64,
                );
                r.counter(
                    "miodb_compaction_seconds_total",
                    "Time spent compacting per source level and kind.",
                    kind_labels,
                    ns.load(Ordering::Relaxed) as f64 / 1e9,
                );
            }
        }
        let groups = t.write_group_size.snapshot();
        if groups.count() > 0 {
            r.summary(
                "miodb_write_group_size",
                "Operations coalesced per committed write group.",
                &[],
                &groups,
                1.0,
            );
        }
        r.gauge(
            "miodb_commit_queue_depth",
            "Writers currently enqueued on the commit queue.",
            &[],
            t.commit_queue_depth() as f64,
        );
        r.counter(
            "miodb_trace_events_dropped_total",
            "Structured trace events discarded because the ring was full.",
            &[],
            t.events_dropped() as f64,
        );
    }

    for (i, &tables) in report.tables_per_level.iter().enumerate() {
        let label = i.to_string();
        r.gauge(
            "miodb_level_tables",
            "Tables/runs per LSM level.",
            &[("level", &label)],
            tables as f64,
        );
    }

    let s = &report.stats;
    for (kind, ns, count) in [
        ("interval", s.interval_stall_ns, s.interval_stall_count),
        (
            "cumulative",
            s.cumulative_stall_ns,
            s.cumulative_stall_count,
        ),
    ] {
        r.counter(
            "miodb_stall_seconds_total",
            "Time writers were stalled, by stall kind.",
            &[("kind", kind)],
            ns as f64 / 1e9,
        );
        r.counter(
            "miodb_stall_events_total",
            "Number of writer stalls, by stall kind.",
            &[("kind", kind)],
            count as f64,
        );
    }
    r.counter(
        "miodb_user_write_bytes_total",
        "Bytes of user data accepted by put/delete.",
        &[],
        s.user_bytes_written as f64,
    );
    for (device, written, read) in [
        ("nvm", s.nvm_bytes_written, s.nvm_bytes_read),
        ("ssd", s.ssd_bytes_written, s.ssd_bytes_read),
    ] {
        r.counter(
            "miodb_device_write_bytes_total",
            "Bytes physically written per device.",
            &[("device", device)],
            written as f64,
        );
        r.counter(
            "miodb_device_read_bytes_total",
            "Bytes physically read per device.",
            &[("device", device)],
            read as f64,
        );
    }
    r.gauge(
        "miodb_write_amplification",
        "Device bytes written divided by user bytes written.",
        &[],
        s.write_amplification,
    );
    r.counter(
        "miodb_flushes_total",
        "MemTable flushes completed.",
        &[],
        s.flush_count as f64,
    );
    r.counter(
        "miodb_flush_seconds_total",
        "Time spent flushing MemTables.",
        &[],
        s.flush_ns as f64 / 1e9,
    );
    r.counter(
        "miodb_flush_bytes_total",
        "Bytes moved by MemTable flushes.",
        &[],
        s.flush_bytes as f64,
    );
    r.counter(
        "miodb_swizzle_seconds_total",
        "Time spent swizzling pointers after one-piece flushes.",
        &[],
        s.swizzle_ns as f64 / 1e9,
    );
    r.counter(
        "miodb_gets_total",
        "Get operations served.",
        &[],
        s.gets as f64,
    );
    r.counter(
        "miodb_get_hits_total",
        "Get operations that found a value.",
        &[],
        s.get_hits as f64,
    );
    r.counter(
        "miodb_bloom_skips_total",
        "Tables skipped by bloom filters.",
        &[],
        s.bloom_skips as f64,
    );
    r.counter(
        "miodb_bloom_false_positives_total",
        "Bloom filter false positives.",
        &[],
        s.bloom_false_positives as f64,
    );
    r.gauge(
        "miodb_nvm_used_bytes",
        "Bytes currently allocated in the NVM pool.",
        &[],
        report.nvm_used_bytes as f64,
    );
    r.gauge(
        "miodb_nvm_peak_bytes",
        "High-water mark of NVM pool usage.",
        &[],
        report.nvm_peak_bytes as f64,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryOptions;

    #[test]
    fn prometheus_renders_help_type_and_labels() {
        let mut r = MetricsRegistry::new();
        r.counter("kv_ops_total", "Total ops.", &[("op", "put")], 3.0);
        r.counter("kv_ops_total", "Total ops.", &[("op", "get")], 4.0);
        r.gauge("kv_depth", "Depth.", &[], 1.5);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP kv_ops_total Total ops."));
        assert!(text.contains("# TYPE kv_ops_total counter"));
        assert!(text.contains("kv_ops_total{op=\"put\"} 3"));
        assert!(text.contains("kv_ops_total{op=\"get\"} 4"));
        assert!(text.contains("kv_depth 1.5"));
        // One HELP/TYPE block per family even with multiple samples.
        assert_eq!(text.matches("# TYPE kv_ops_total").count(), 1);
    }

    #[test]
    fn summary_emits_quantiles_sum_and_count() {
        let mut hist = Histogram::new();
        for v in 1..=1000u64 {
            hist.record(v * 1000);
        }
        let mut r = MetricsRegistry::new();
        r.summary("kv_lat_seconds", "Latency.", &[("op", "put")], &hist, 1e-9);
        let text = r.render_prometheus();
        for q in ["0.5", "0.9", "0.99", "0.999"] {
            assert!(
                text.contains(&format!("quantile=\"{q}\"")),
                "missing quantile {q} in:\n{text}"
            );
        }
        assert!(text.contains("kv_lat_seconds_count{op=\"put\"} 1000"));
        assert!(text.contains("kv_lat_seconds_sum{op=\"put\"}"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = MetricsRegistry::new();
        r.gauge("kv_g", "h", &[("name", "a\"b\\c\nd")], 1.0);
        let text = r.render_prometheus();
        assert!(text.contains("name=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn json_rendering_is_structured() {
        let mut r = MetricsRegistry::new();
        r.gauge("kv_depth", "De\"pth.", &[("level", "0")], 2.0);
        let json = r.render_json();
        assert!(json.starts_with("{\"families\":["));
        assert!(json.contains("\"name\":\"kv_depth\""));
        assert!(json.contains("\"help\":\"De\\\"pth.\""));
        assert!(json.contains("\"labels\":{\"level\":\"0\"}"));
        assert!(json.contains("\"value\":2"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn engine_registry_covers_acceptance_metrics() {
        let t = EngineTelemetry::new(3, &TelemetryOptions::default());
        t.put_latency.record(1000);
        t.get_latency.record(2000);
        t.write_group_size.record(4);
        t.set_commit_queue_depth(2);
        t.level(0).unwrap().set_occupancy(1 << 20, 2);
        let report = EngineReport {
            name: "MioDB".to_string(),
            tables_per_level: vec![2, 1, 0],
            ..Default::default()
        };
        let text = engine_registry(&report, Some(&t)).render_prometheus();
        for needle in [
            "miodb_op_latency_seconds{op=\"put\",quantile=\"0.5\"}",
            "miodb_op_latency_seconds{op=\"get\",quantile=\"0.999\"}",
            "miodb_level_bytes{level=\"0\"} 1048576",
            "miodb_level_tables{level=\"1\"} 1",
            "miodb_compactions_total{level=\"0\",kind=\"zero_copy\"}",
            "miodb_compaction_seconds_total{level=\"2\",kind=\"lazy_copy\"}",
            "miodb_stall_seconds_total{kind=\"interval\"}",
            "miodb_stall_events_total{kind=\"cumulative\"}",
            "miodb_write_amplification",
            "miodb_engine_info{engine=\"MioDB\"} 1",
            "miodb_write_group_size{quantile=\"0.5\"}",
            "miodb_commit_queue_depth 2",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn engine_registry_without_telemetry_still_reports() {
        let report = EngineReport {
            name: "LsmDB".to_string(),
            tables_per_level: vec![4],
            ..Default::default()
        };
        let text = engine_registry(&report, None).render_prometheus();
        assert!(text.contains("miodb_level_tables{level=\"0\"} 4"));
        assert!(text.contains("miodb_stall_seconds_total"));
        assert!(!text.contains("miodb_op_latency_seconds"));
    }
}
