//! Bounded lock-free MPMC ring buffer, generic over any `Copy` payload.
//!
//! Implements the Vyukov bounded-queue scheme: a per-slot sequence number
//! arbitrates producers and consumers without locks. Producers never block
//! — pushing into a full ring drops the value and bumps a saturating drop
//! counter, so instrumentation can never stall the code it observes. The
//! engine event trace ([`EventRing`](crate::events::EventRing)) and the
//! request-span buffer ([`trace`](crate::trace)) are both instances of
//! this ring.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC ring buffer of `Copy` values.
///
/// Producers never block: pushing into a full ring drops the value and
/// increments [`dropped`](MpmcRing::dropped) (saturating — a wrapped
/// counter would under-report loss).
pub struct MpmcRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots are only accessed under the per-slot sequence protocol —
// a producer writes `value` only after winning the CAS on `enqueue_pos`
// for a slot whose `seq` says it is empty, and publishes with a release
// store to `seq`; a consumer reads `value` only after acquiring a `seq`
// that says it is full. `T: Copy`, so no drops are needed.
unsafe impl<T: Copy + Send> Send for MpmcRing<T> {}
unsafe impl<T: Copy + Send> Sync for MpmcRing<T> {}

impl<T: Copy> MpmcRing<T> {
    /// Creates a ring holding up to `capacity` values (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> MpmcRing<T> {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcRing {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends a value; on a full ring the value is dropped (counted in
    /// [`dropped`](MpmcRing::dropped)) and `false` is returned.
    pub fn push(&self, value: T) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive write
                        // access to this slot until the release store below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(seen) => pos = seen,
                }
            } else if diff < 0 {
                // Slot still holds an unconsumed value one lap behind: full.
                self.count_drop();
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns the oldest value, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive read
                        // access; the acquire load of `seq` ordered the
                        // producer's write before this read.
                        let value = unsafe { (*slot.value.get()).assume_init() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(seen) => pos = seen,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains every currently queued value in FIFO order.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }

    /// Number of values discarded because the ring was full (saturates at
    /// `u64::MAX` instead of wrapping).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Saturating increment of the drop counter.
    fn count_drop(&self) {
        let mut d = self.dropped.load(Ordering::Relaxed);
        while d != u64::MAX {
            match self
                .dropped
                .compare_exchange_weak(d, d + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => d = seen,
            }
        }
    }
}

impl<T: Copy> std::fmt::Debug for MpmcRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpmcRing")
            .field("capacity", &self.capacity())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_fifo_round_trip() {
        let ring = MpmcRing::<u32>::with_capacity(8);
        for i in 0..5 {
            assert!(ring.push(i));
        }
        assert_eq!(ring.drain(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dropped_counter_saturates_at_max() {
        let ring = MpmcRing::<u8>::with_capacity(2);
        ring.dropped.store(u64::MAX - 1, Ordering::Relaxed);
        assert!(ring.push(0));
        assert!(ring.push(0));
        assert!(!ring.push(1)); // MAX - 1 -> MAX
        assert!(!ring.push(1)); // saturates, no wrap to 0
        assert!(!ring.push(1));
        assert_eq!(ring.dropped(), u64::MAX);
    }
}
