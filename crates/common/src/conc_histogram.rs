//! Lock-free concurrent latency histogram.
//!
//! [`ConcurrentHistogram`] lets every engine thread record operation
//! latencies on the hot path with two relaxed atomic adds and no shared
//! cache line between unrelated threads: buckets are striped into
//! [`STRIPES`] independent copies of the [`Histogram`](crate::Histogram)
//! log-bucket layout, and each thread hashes to a stripe by a
//! process-global thread index. A [`snapshot`](ConcurrentHistogram::snapshot)
//! sums the stripes into an ordinary [`Histogram`](crate::Histogram), so
//! percentile/mean/merge logic is shared with the single-threaded type.
//!
//! Counts are never lost: the snapshot derives `count` from the bucket
//! array itself, so a snapshot taken concurrently with recorders sees a
//! consistent prefix of the recorded operations (each operation appears in
//! at most one snapshot delta and in every later snapshot).

use crate::histogram::{Histogram, NUM_BUCKETS};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Number of independent bucket stripes. A power of two so the stripe pick
/// is a mask; 8 stripes keep the footprint at ~42 KiB per histogram while
/// eliminating contention for typical worker counts.
const STRIPES: usize = 8;

/// Pads a stripe to its own cache-line region to prevent false sharing of
/// the hot `count`/`sum` words between stripes.
#[repr(align(128))]
struct Stripe {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

/// Process-global monotone thread index used to spread threads over stripes.
static NEXT_THREAD_INDEX: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_INDEX: usize = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
}

/// A multi-writer latency histogram with lock-free recording.
///
/// # Examples
///
/// ```
/// use miodb_common::ConcurrentHistogram;
/// use std::sync::Arc;
///
/// let h = Arc::new(ConcurrentHistogram::new());
/// let threads: Vec<_> = (0..4)
///     .map(|_| {
///         let h = h.clone();
///         std::thread::spawn(move || {
///             for v in 1..=1000u64 {
///                 h.record(v);
///             }
///         })
///     })
///     .collect();
/// for t in threads {
///     t.join().unwrap();
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 4000);
/// assert!(snap.percentile(99.0) >= 900);
/// ```
pub struct ConcurrentHistogram {
    stripes: Vec<Stripe>,
    min: AtomicU64,
    max: AtomicU64,
    /// When false, `record` is a single predictable-branch no-op, so
    /// telemetry can be disabled without changing call sites.
    enabled: AtomicBool,
}

impl Default for ConcurrentHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ConcurrentHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentHistogram")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl ConcurrentHistogram {
    /// Creates an empty, enabled histogram.
    pub fn new() -> ConcurrentHistogram {
        ConcurrentHistogram {
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Enables or disables recording (snapshotting stays available).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether `record` currently stores observations.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one observation (e.g. a latency in nanoseconds).
    ///
    /// Lock-free and wait-free apart from the first call on a new thread;
    /// two relaxed RMWs on a stripe private to ~1/8 of the threads.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let stripe = &self.stripes[THREAD_INDEX.with(|i| *i) & (STRIPES - 1)];
        stripe.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(value, Ordering::Relaxed);
        // Load-then-RMW keeps the common case (extreme already covers the
        // value) read-only, avoiding cross-stripe write contention.
        if value < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(value, Ordering::Relaxed);
        }
        if value > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Sums all stripes into a plain [`Histogram`] snapshot.
    ///
    /// Safe to call while other threads record; the result reflects every
    /// operation that completed before the call began and possibly some
    /// concurrent ones.
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        for stripe in &self.stripes {
            for (total, bucket) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                *total += bucket.load(Ordering::Relaxed);
            }
            sum = sum.saturating_add(stripe.sum.load(Ordering::Relaxed));
        }
        Histogram::from_parts(
            buckets,
            sum,
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// Number of recorded observations (sum over stripes).
    pub fn count(&self) -> u64 {
        self.stripes
            .iter()
            .flat_map(|s| s.buckets.iter())
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Clears all observations.
    ///
    /// Not linearizable with concurrent `record` calls: observations racing
    /// with the reset may survive it. Intended for phase boundaries where
    /// the workload driver has quiesced the engine (e.g. between YCSB load
    /// and run phases).
    pub fn reset(&self) {
        for stripe in &self.stripes {
            for bucket in &stripe.buckets {
                bucket.store(0, Ordering::Relaxed);
            }
            stripe.sum.store(0, Ordering::Relaxed);
        }
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_matches_plain_histogram() {
        let c = ConcurrentHistogram::new();
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            c.record(v);
            h.record(v);
        }
        let snap = c.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.sum(), h.sum());
        assert_eq!(snap.min(), h.min());
        assert_eq!(snap.max(), h.max());
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(snap.percentile(p), h.percentile(p), "p{p}");
        }
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let c = ConcurrentHistogram::new();
        c.record(1);
        c.set_enabled(false);
        c.record(2);
        c.set_enabled(true);
        c.record(3);
        assert_eq!(c.snapshot().count(), 2);
    }

    #[test]
    fn reset_clears_all_stripes() {
        let c = Arc::new(ConcurrentHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for v in 0..100 {
                        c.record(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(c.count(), 400);
        c.reset();
        assert_eq!(c.count(), 0);
        assert_eq!(c.snapshot().max(), 0);
    }

    #[test]
    fn concurrent_counts_conserved() {
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 20_000;
        let c = Arc::new(ConcurrentHistogram::new());
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        c.record((w as u64) * 1_000 + (i % 997));
                    }
                })
            })
            .collect();
        // Snapshots taken mid-flight must be internally consistent.
        for _ in 0..10 {
            let snap = c.snapshot();
            assert!(snap.count() <= WRITERS as u64 * PER_WRITER);
            if snap.count() > 0 {
                assert!(snap.percentile(50.0) <= snap.percentile(99.9).max(snap.max()));
            }
        }
        for t in handles {
            t.join().unwrap();
        }
        let final_snap = c.snapshot();
        assert_eq!(final_snap.count(), WRITERS as u64 * PER_WRITER);
    }
}
