//! Mutation tests: the checker must *reject* engines with injected
//! consistency bugs, not just accept correct ones. Each bug here mimics a
//! real LSM failure mode (ISSUE 5 acceptance criteria): a lost
//! acknowledged write (dropped WAL record) and a stale read (retired
//! PMTable still serving lookups).

use miodb_check::{
    check_history, run_stress, BrokenEngine, Bug, HistoryRecorder, MapEngine, StressSpec, Verdict,
};

/// Deterministic repro: an acked put whose effect vanished must fail the
/// check, regardless of thread scheduling.
#[test]
fn checker_flags_lost_acknowledged_write() {
    let engine = BrokenEngine::new(Bug::LoseAckedPut { every: 1 });
    let recorder = HistoryRecorder::new();
    let mut log = recorder.log();
    log.put(&engine, b"k", b"v1").unwrap(); // acked, silently dropped
    assert_eq!(log.get(&engine, b"k").unwrap(), None);
    drop(log);
    let verdict = check_history(&recorder.take_history());
    assert!(
        matches!(verdict, Verdict::Violation(_)),
        "lost acked write slipped past the checker: {verdict}"
    );
}

/// Deterministic repro: a read that reverts to an overwritten value must
/// fail the check.
#[test]
fn checker_flags_stale_read() {
    let engine = BrokenEngine::new(Bug::StaleRead { every: 2 });
    let recorder = HistoryRecorder::new();
    let mut log = recorder.log();
    log.put(&engine, b"k", b"old").unwrap();
    log.put(&engine, b"k", b"new").unwrap();
    assert_eq!(
        log.get(&engine, b"k").unwrap().as_deref(),
        Some(&b"new"[..])
    );
    assert_eq!(
        log.get(&engine, b"k").unwrap().as_deref(),
        Some(&b"old"[..])
    );
    drop(log);
    let verdict = check_history(&recorder.take_history());
    assert!(
        matches!(verdict, Verdict::Violation(_)),
        "stale read slipped past the checker: {verdict}"
    );
}

/// The stress driver also trips both bugs: concurrent histories from the
/// broken engines are rejected across every seed.
#[test]
fn stress_histories_from_broken_engines_are_rejected() {
    for seed in 0..4u64 {
        for bug in [Bug::LoseAckedPut { every: 7 }, Bug::StaleRead { every: 9 }] {
            let engine = BrokenEngine::new(bug);
            // Single-threaded stress: every bug firing is a provable
            // violation (no overlap window to hide in).
            let spec = StressSpec {
                threads: 1,
                ops_per_thread: 400,
                ..StressSpec::quick(seed)
            };
            let verdict = check_history(&run_stress(&engine, &spec));
            assert!(
                matches!(verdict, Verdict::Violation(_)),
                "seed {seed} {bug:?}: broken engine accepted: {verdict}"
            );
        }
    }
}

/// The flip side of the mutation tests: the same checker accepts every
/// history the correct reference engine serves, across seeds and thread
/// counts.
#[test]
fn stress_histories_from_correct_engine_are_accepted() {
    for seed in 0..8u64 {
        let engine = MapEngine::new();
        let spec = StressSpec {
            threads: 4,
            ops_per_thread: 150,
            ..StressSpec::quick(seed)
        };
        let verdict = check_history(&run_stress(&engine, &spec));
        assert!(verdict.is_linearizable(), "seed {seed}: {verdict}");
    }
}
