//! Seeded interleaving stress driver.
//!
//! Runs a deterministic-per-seed mix of put/get/delete from several
//! threads over a small keyspace (small on purpose: contended keys give
//! the checker real concurrency to disambiguate) and returns the recorded
//! history. Compose with the `miodb_common::fault` registry by arming
//! fault points before the run — ambiguous failures are recorded as
//! [`Observed::Maybe`](crate::history::Observed::Maybe) and the checker
//! treats them as may-or-may-not-have-happened.
//!
//! Only the *choice sequence* is deterministic per seed; the thread
//! interleaving is real nondeterminism, which is the point: every run
//! explores a fresh schedule, and the checker validates whichever one
//! happened.

use crate::history::{History, HistoryRecorder};
use miodb_common::KvEngine;

/// Parameters for one stress run.
#[derive(Debug, Clone)]
pub struct StressSpec {
    /// Seed for the per-thread operation streams.
    pub seed: u64,
    /// Concurrent worker threads.
    pub threads: u32,
    /// Operations issued by each thread.
    pub ops_per_thread: u32,
    /// Number of distinct keys (`key00`…); small values maximise
    /// contention and checker power.
    pub key_space: u32,
    /// Value payload length (values embed a unique tag regardless).
    pub value_len: usize,
}

impl StressSpec {
    /// A quick configuration suitable for tier-1 tests: 4 threads × 200
    /// ops over 16 hot keys.
    #[must_use]
    pub fn quick(seed: u64) -> StressSpec {
        StressSpec {
            seed,
            threads: 4,
            ops_per_thread: 200,
            key_space: 16,
            value_len: 24,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the stress mix against `engine` and returns the recorded history.
///
/// Engine errors do not abort the run: failed mutations are recorded as
/// ambiguous, failed reads as information-free, exactly as the checker
/// expects under fault injection.
#[must_use]
pub fn run_stress(engine: &dyn KvEngine, spec: &StressSpec) -> History {
    let recorder = HistoryRecorder::new();
    std::thread::scope(|s| {
        for t in 0..spec.threads {
            let mut log = recorder.log();
            let spec = spec.clone();
            s.spawn(move || {
                let mut rng = spec.seed ^ (u64::from(t).wrapping_mul(0xA076_1D64_78BD_642F));
                for i in 0..spec.ops_per_thread {
                    let r = splitmix64(&mut rng);
                    let key = format!("key{:04}", r % u64::from(spec.key_space.max(1)));
                    match (r >> 32) % 100 {
                        0..=39 => {
                            // Unique per (seed, thread, op) so the checker can
                            // tell every write apart.
                            let mut value = format!("s{:x}-t{t}-o{i}", spec.seed);
                            while value.len() < spec.value_len {
                                value.push('.');
                            }
                            let _ = log.put(engine, key.as_bytes(), value.as_bytes());
                        }
                        40..=74 => {
                            let _ = log.get(engine, key.as_bytes());
                        }
                        _ => {
                            let _ = log.delete(engine, key.as_bytes());
                        }
                    }
                }
            });
        }
    });
    recorder.take_history()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearize::check_history;
    use crate::shim::MapEngine;

    #[test]
    fn stress_on_reference_engine_is_linearizable() {
        let e = MapEngine::new();
        let h = run_stress(&e, &StressSpec::quick(42));
        assert_eq!(h.len(), 4 * 200);
        let verdict = check_history(&h);
        assert!(verdict.is_linearizable(), "{verdict}");
    }

    #[test]
    fn same_seed_same_choice_sequence() {
        let spec = StressSpec {
            threads: 1,
            ..StressSpec::quick(7)
        };
        let e1 = MapEngine::new();
        let e2 = MapEngine::new();
        let h1 = run_stress(&e1, &spec);
        let h2 = run_stress(&e2, &spec);
        let shape = |h: &History| -> Vec<(Vec<u8>, String)> {
            h.ops
                .iter()
                .map(|o| (o.key.clone(), format!("{:?}", o.action)))
                .collect()
        };
        assert_eq!(shape(&h1), shape(&h2));
    }
}
