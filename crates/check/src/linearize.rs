//! Per-key Wing–Gong linearizability checker for register semantics.
//!
//! MioDB's single-key operations (`put`, `get`, `delete`) form a
//! read/write register per key, and keys are independent: a history is
//! linearizable iff each per-key sub-history is. Partitioning by key keeps
//! the NP-hard search tractable — the exponential is in ops *per key*,
//! not total ops.
//!
//! The search is the classic Wing–Gong recursion with the
//! Lowe-style memoization on (set of linearized ops, register state):
//! repeatedly pick a *minimal* pending operation (one invoked before every
//! pending operation returns), apply it to the candidate register state,
//! and recurse. Ambiguous operations ([`Observed::Maybe`], including calls
//! that never returned before a crash) are *optional*: the search may
//! linearize them at any point after their invocation — their effect
//! window is `[invoke, ∞)` because a lost acknowledgement can still take
//! effect later — or never linearize them at all.
//!
//! Histories are assumed to start from an empty keyspace (fresh engine):
//! the initial register state of every key is "absent".

use crate::history::{History, Observed, OpAction, RecordedOp};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A linearizability violation: no valid linearization exists for one key.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The key whose sub-history cannot be linearized.
    pub key: Vec<u8>,
    /// Human-readable explanation.
    pub detail: String,
    /// The offending key's operations, rendered in invocation order.
    pub ops: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "linearizability violation on key {:?}: {}",
            String::from_utf8_lossy(&self.key),
            self.detail
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

/// Search statistics from a successful check.
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// Distinct keys checked.
    pub keys: usize,
    /// Operations considered (after dropping no-information failures).
    pub ops: usize,
    /// Search nodes explored across all keys.
    pub states_explored: u64,
}

/// Outcome of checking one history.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A linearization exists for every key.
    Linearizable(CheckStats),
    /// Some key's sub-history admits no linearization.
    Violation(Violation),
    /// The search budget was exhausted before a decision (raise
    /// [`CheckOptions::max_states_per_key`] or shrink the history).
    Indeterminate {
        /// The key whose search exceeded the budget.
        key: Vec<u8>,
        /// Nodes explored before giving up.
        states_explored: u64,
    },
}

impl Verdict {
    /// True when the history was proven linearizable.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        matches!(self, Verdict::Linearizable(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Linearizable(s) => write!(
                f,
                "linearizable ({} ops over {} keys, {} states)",
                s.ops, s.keys, s.states_explored
            ),
            Verdict::Violation(v) => write!(f, "{v}"),
            Verdict::Indeterminate {
                key,
                states_explored,
            } => write!(
                f,
                "indeterminate: search budget exhausted on key {:?} after {} states",
                String::from_utf8_lossy(key),
                states_explored
            ),
        }
    }
}

/// Checker knobs.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Per-key cap on explored search nodes before the checker returns
    /// [`Verdict::Indeterminate`] instead of running unboundedly.
    pub max_states_per_key: u64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_states_per_key: 5_000_000,
        }
    }
}

/// Register value ids: 0 is "absent", >0 intern concrete byte strings.
const ABSENT: u32 = 0;

#[derive(Clone, Copy)]
enum Act {
    /// Sets the register to this value id (a delete writes [`ABSENT`]).
    Write(u32),
    /// Observed this value id; legal only when it matches the state.
    Read(u32),
}

#[derive(Clone, Copy)]
struct POp {
    invoke: u64,
    ret: u64,
    act: Act,
    /// Optional ops (ambiguous outcomes) may be skipped by the search.
    optional: bool,
    /// Index into the rendered-op list, for violation reports.
    src: usize,
}

/// Checks `history` for per-key linearizability with default options.
#[must_use]
pub fn check_history(history: &History) -> Verdict {
    check_history_with(history, &CheckOptions::default())
}

/// Checks `history` for per-key linearizability.
#[must_use]
pub fn check_history_with(history: &History, opts: &CheckOptions) -> Verdict {
    let mut by_key: HashMap<&[u8], Vec<&RecordedOp>> = HashMap::new();
    for op in &history.ops {
        by_key.entry(op.key.as_slice()).or_default().push(op);
    }
    // Deterministic key order so failures reproduce identically.
    let mut keys: Vec<&[u8]> = by_key.keys().copied().collect();
    keys.sort_unstable();

    let mut stats = CheckStats {
        keys: keys.len(),
        ..CheckStats::default()
    };
    for key in keys {
        let ops = &by_key[key];
        match check_key(key, ops, opts) {
            KeyOutcome::Ok { ops, states } => {
                stats.ops += ops;
                stats.states_explored += states;
            }
            KeyOutcome::Violation(v) => return Verdict::Violation(v),
            KeyOutcome::Budget { states } => {
                return Verdict::Indeterminate {
                    key: key.to_vec(),
                    states_explored: stats.states_explored + states,
                }
            }
        }
    }
    Verdict::Linearizable(stats)
}

enum KeyOutcome {
    Ok { ops: usize, states: u64 },
    Violation(Violation),
    Budget { states: u64 },
}

fn check_key(key: &[u8], recorded: &[&RecordedOp], opts: &CheckOptions) -> KeyOutcome {
    // Intern values so the register state is a small integer.
    let mut interned: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut intern = |v: Option<&[u8]>| -> u32 {
        match v {
            None => ABSENT,
            Some(bytes) => {
                let next = u32::try_from(interned.len()).expect("too many distinct values") + 1;
                *interned.entry(bytes.to_vec()).or_insert(next)
            }
        }
    };

    let mut sorted: Vec<&RecordedOp> = recorded.to_vec();
    sorted.sort_by_key(|o| (o.invoke_ns, o.return_ns));

    let mut ops: Vec<POp> = Vec::with_capacity(sorted.len());
    for (src, op) in sorted.iter().enumerate() {
        let pop = match (&op.action, &op.observed) {
            // Failed reads and definite-failure mutations carry no
            // constraint; drop them.
            (_, Observed::Never) | (OpAction::Get, Observed::Maybe) => continue,
            (OpAction::Get, Observed::Read(v)) => POp {
                invoke: op.invoke_ns,
                ret: op.return_ns,
                act: Act::Read(intern(v.as_deref())),
                optional: false,
                src,
            },
            (OpAction::Put(v), Observed::Acked) => POp {
                invoke: op.invoke_ns,
                ret: op.return_ns,
                act: Act::Write(intern(Some(v))),
                optional: false,
                src,
            },
            (OpAction::Delete, Observed::Acked) => POp {
                invoke: op.invoke_ns,
                ret: op.return_ns,
                act: Act::Write(ABSENT),
                optional: false,
                src,
            },
            // Ambiguous mutations: effect window [invoke, ∞), skippable.
            (OpAction::Put(v), Observed::Maybe) => POp {
                invoke: op.invoke_ns,
                ret: u64::MAX,
                act: Act::Write(intern(Some(v))),
                optional: true,
                src,
            },
            (OpAction::Delete, Observed::Maybe) => POp {
                invoke: op.invoke_ns,
                ret: u64::MAX,
                act: Act::Write(ABSENT),
                optional: true,
                src,
            },
            // Remaining combinations (e.g. a Get recorded as Acked) are
            // malformed records; ignoring them is the conservative choice.
            _ => continue,
        };
        ops.push(pop);
    }

    if ops.is_empty() {
        return KeyOutcome::Ok { ops: 0, states: 0 };
    }

    let mut search = Search {
        ops: &ops,
        words: ops.len().div_ceil(64),
        memo: HashSet::new(),
        states: 0,
        budget: opts.max_states_per_key,
    };
    let mut mask = vec![0u64; search.words];
    match search.dfs(&mut mask, ABSENT) {
        Err(()) => KeyOutcome::Budget {
            states: search.states,
        },
        Ok(true) => KeyOutcome::Ok {
            ops: ops.len(),
            states: search.states,
        },
        Ok(false) => KeyOutcome::Violation(Violation {
            key: key.to_vec(),
            detail: format!(
                "no linearization exists over {} operations ({} search states)",
                ops.len(),
                search.states
            ),
            ops: ops.iter().map(|p| render_op(sorted[p.src], p)).collect(),
        }),
    }
}

struct Search<'a> {
    ops: &'a [POp],
    words: usize,
    /// Lowe memoization: a (linearized-set, state) pair that already
    /// failed will fail again.
    memo: HashSet<(Box<[u64]>, u32)>,
    states: u64,
    budget: u64,
}

impl Search<'_> {
    fn dfs(&mut self, mask: &mut [u64], state: u32) -> Result<bool, ()> {
        self.states += 1;
        if self.states > self.budget {
            return Err(());
        }
        // Done once every required op is linearized; pending optional ops
        // are simply "never took effect".
        let mut min_ret = u64::MAX;
        let mut all_required_done = true;
        for (i, op) in self.ops.iter().enumerate() {
            if mask[i / 64] & (1u64 << (i % 64)) != 0 {
                continue;
            }
            if !op.optional {
                all_required_done = false;
            }
            min_ret = min_ret.min(op.ret);
        }
        if all_required_done {
            return Ok(true);
        }
        if !self.memo.insert((mask.to_vec().into_boxed_slice(), state)) {
            return Ok(false);
        }
        for (i, op) in self.ops.iter().enumerate() {
            if mask[i / 64] & (1u64 << (i % 64)) != 0 {
                continue;
            }
            // Wing–Gong minimality: an op may be linearized next only if
            // it was invoked before every pending op returned.
            if op.invoke > min_ret {
                continue;
            }
            let next_state = match op.act {
                Act::Write(v) => v,
                Act::Read(v) => {
                    if v != state {
                        continue;
                    }
                    state
                }
            };
            mask[i / 64] |= 1u64 << (i % 64);
            if self.dfs(mask, next_state)? {
                return Ok(true);
            }
            mask[i / 64] &= !(1u64 << (i % 64));
        }
        Ok(false)
    }
}

fn render_op(op: &RecordedOp, pop: &POp) -> String {
    let action = match &op.action {
        OpAction::Put(v) => format!("put({})", preview(v)),
        OpAction::Delete => "delete".to_string(),
        OpAction::Get => "get".to_string(),
    };
    let observed = match &op.observed {
        Observed::Acked => "acked".to_string(),
        Observed::Read(Some(v)) => format!("read {}", preview(v)),
        Observed::Read(None) => "read absent".to_string(),
        Observed::Maybe => "maybe-applied".to_string(),
        Observed::Never => "never-applied".to_string(),
    };
    let ret = if op.return_ns == u64::MAX {
        "crash".to_string()
    } else {
        format!("{}", op.return_ns)
    };
    format!(
        "p{:<3} [{:>12} .. {:>12}] {action} -> {observed}{}",
        op.process,
        op.invoke_ns,
        ret,
        if pop.optional { " (optional)" } else { "" }
    )
}

fn preview(v: &[u8]) -> String {
    const MAX: usize = 24;
    let s = String::from_utf8_lossy(v);
    if s.len() <= MAX {
        format!("{s:?}")
    } else {
        format!("{:?}…", &s[..MAX])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RecordedOp;

    fn op(
        process: u32,
        key: &str,
        action: OpAction,
        invoke: u64,
        ret: u64,
        observed: Observed,
    ) -> RecordedOp {
        RecordedOp {
            process,
            key: key.as_bytes().to_vec(),
            action,
            invoke_ns: invoke,
            return_ns: ret,
            observed,
        }
    }

    fn put(p: u32, k: &str, v: &str, i: u64, r: u64) -> RecordedOp {
        op(
            p,
            k,
            OpAction::Put(v.as_bytes().to_vec()),
            i,
            r,
            Observed::Acked,
        )
    }

    fn get(p: u32, k: &str, v: Option<&str>, i: u64, r: u64) -> RecordedOp {
        op(
            p,
            k,
            OpAction::Get,
            i,
            r,
            Observed::Read(v.map(|s| s.as_bytes().to_vec())),
        )
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = History {
            ops: vec![
                put(0, "k", "a", 0, 10),
                get(0, "k", Some("a"), 20, 30),
                op(0, "k", OpAction::Delete, 40, 50, Observed::Acked),
                get(0, "k", None, 60, 70),
            ],
        };
        assert!(check_history(&h).is_linearizable());
    }

    #[test]
    fn read_before_any_write_must_be_absent() {
        let h = History {
            ops: vec![get(0, "k", Some("ghost"), 0, 10), put(1, "k", "a", 20, 30)],
        };
        assert!(matches!(check_history(&h), Verdict::Violation(_)));
    }

    #[test]
    fn concurrent_reads_may_disagree_within_overlap() {
        // put(b) overlaps both reads: one may see the old value, the other
        // the new — order the linearization points accordingly.
        let h = History {
            ops: vec![
                put(0, "k", "a", 0, 10),
                put(0, "k", "b", 20, 60),
                get(1, "k", Some("a"), 25, 35),
                get(2, "k", Some("b"), 30, 40),
            ],
        };
        assert!(check_history(&h).is_linearizable());
    }

    #[test]
    fn stale_read_after_ack_is_rejected() {
        // put(b) acked at 30; a read starting at 40 must not see "a".
        let h = History {
            ops: vec![
                put(0, "k", "a", 0, 10),
                put(0, "k", "b", 20, 30),
                get(1, "k", Some("a"), 40, 50),
            ],
        };
        match check_history(&h) {
            Verdict::Violation(v) => assert_eq!(v.key, b"k"),
            other => panic!("expected violation, got {other}"),
        }
    }

    #[test]
    fn lost_acked_write_is_rejected() {
        let h = History {
            ops: vec![put(0, "k", "a", 0, 10), get(0, "k", None, 20, 30)],
        };
        assert!(matches!(check_history(&h), Verdict::Violation(_)));
    }

    #[test]
    fn maybe_applied_put_allows_both_outcomes() {
        // The ambiguous put may or may not have landed.
        let seen = History {
            ops: vec![
                op(0, "k", OpAction::Put(b"x".to_vec()), 0, 10, Observed::Maybe),
                get(1, "k", Some("x"), 20, 30),
            ],
        };
        let unseen = History {
            ops: vec![
                op(0, "k", OpAction::Put(b"x".to_vec()), 0, 10, Observed::Maybe),
                get(1, "k", None, 20, 30),
            ],
        };
        assert!(check_history(&seen).is_linearizable());
        assert!(check_history(&unseen).is_linearizable());
    }

    #[test]
    fn maybe_applied_effect_may_land_after_error_return() {
        // The error returned at t=10, but the write surfaced later — the
        // [invoke, ∞) effect window accepts it.
        let h = History {
            ops: vec![
                op(0, "k", OpAction::Put(b"x".to_vec()), 0, 10, Observed::Maybe),
                get(1, "k", None, 15, 20),
                get(1, "k", Some("x"), 30, 40),
            ],
        };
        assert!(check_history(&h).is_linearizable());
    }

    #[test]
    fn maybe_applied_value_cannot_flicker_back() {
        // Once the ambiguous write is observed, a later read cannot revert
        // to the pre-write value without another writer.
        let h = History {
            ops: vec![
                put(0, "k", "a", 0, 10),
                op(
                    0,
                    "k",
                    OpAction::Put(b"x".to_vec()),
                    20,
                    30,
                    Observed::Maybe,
                ),
                get(1, "k", Some("x"), 40, 50),
                get(1, "k", Some("a"), 60, 70),
            ],
        };
        assert!(matches!(check_history(&h), Verdict::Violation(_)));
    }

    #[test]
    fn crashed_call_is_ambiguous() {
        let h = History {
            ops: vec![
                op(
                    0,
                    "k",
                    OpAction::Put(b"x".to_vec()),
                    0,
                    u64::MAX,
                    Observed::Maybe,
                ),
                get(1, "k", Some("x"), 5, 9),
            ],
        };
        assert!(check_history(&h).is_linearizable());
    }

    #[test]
    fn delete_semantics() {
        // Concurrent delete and read: read may see either side, but after
        // the delete acks, reads must see absent until the next put.
        let h = History {
            ops: vec![
                put(0, "k", "a", 0, 10),
                op(0, "k", OpAction::Delete, 20, 30, Observed::Acked),
                get(1, "k", Some("a"), 22, 28),
                get(1, "k", None, 40, 50),
            ],
        };
        assert!(check_history(&h).is_linearizable());
        let bad = History {
            ops: vec![
                put(0, "k", "a", 0, 10),
                op(0, "k", OpAction::Delete, 20, 30, Observed::Acked),
                get(1, "k", Some("a"), 40, 50),
            ],
        };
        assert!(matches!(check_history(&bad), Verdict::Violation(_)));
    }

    #[test]
    fn keys_are_independent() {
        // A violation on one key names that key.
        let h = History {
            ops: vec![
                put(0, "good", "a", 0, 10),
                get(0, "good", Some("a"), 20, 30),
                put(0, "bad", "a", 0, 10),
                get(0, "bad", Some("phantom"), 20, 30),
            ],
        };
        match check_history(&h) {
            Verdict::Violation(v) => assert_eq!(v.key, b"bad"),
            other => panic!("expected violation, got {other}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_indeterminate_not_wrong() {
        // Many fully-overlapping ambiguous writes force a big search.
        let mut ops = Vec::new();
        for i in 0..24u32 {
            ops.push(op(
                i,
                "k",
                OpAction::Put(format!("v{i}").into_bytes()),
                0,
                100,
                Observed::Maybe,
            ));
        }
        ops.push(get(99, "k", Some("v7"), 200, 210));
        let h = History { ops };
        let verdict = check_history_with(
            &h,
            &CheckOptions {
                max_states_per_key: 10,
            },
        );
        assert!(matches!(verdict, Verdict::Indeterminate { .. }));
    }

    #[test]
    fn violation_renders_ops() {
        let h = History {
            ops: vec![put(0, "k", "a", 0, 10), get(0, "k", None, 20, 30)],
        };
        match check_history(&h) {
            Verdict::Violation(v) => {
                let text = v.to_string();
                assert!(text.contains("put"), "{text}");
                assert!(text.contains("read absent"), "{text}");
            }
            other => panic!("expected violation, got {other}"),
        }
    }
}
