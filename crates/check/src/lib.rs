//! Linearizability and crash-durability verification for MioDB.
//!
//! PRs 2–4 gave the workspace a concurrent commit queue, a sharded
//! network layer and deterministic fault injection; this crate adds the
//! machinery that *proves* the histories those components serve are
//! correct, instead of stress that merely fails to crash:
//!
//! - [`history`]: lock-free-hot-path recording of invoke/return windows
//!   and outcomes ([`history::RecordingEngine`] for in-process engines,
//!   [`history::ProcessLog`] client hooks for the wire protocol), with
//!   `Error::MaybeApplied` captured as an explicitly ambiguous outcome;
//! - [`linearize`]: a per-key Wing–Gong linearizability checker for
//!   register semantics (put/get/delete), treating ambiguous outcomes as
//!   "may or may not have occurred" with effect window `[invoke, ∞)`;
//! - [`durable`]: the durable-prefix oracle for crash tests — every
//!   acknowledged write survives recovery, every unacknowledged write is
//!   fully present or fully absent;
//! - [`stress`]: a seeded interleaving driver that composes with the
//!   `miodb_common::fault` registry and feeds histories to the checker;
//! - [`shim`]: a reference engine plus deliberately broken engines
//!   (lost acknowledged write, stale read) that the mutation tests use to
//!   prove the checker rejects real consistency bugs.
//!
//! See DESIGN.md §11 for the verification methodology.

#![deny(missing_docs)]

pub mod durable;
pub mod history;
pub mod linearize;
pub mod shim;
pub mod stress;

pub use durable::{DurabilityViolation, DurableOracle, WriteToken};
pub use history::{
    History, HistoryRecorder, Observed, OpAction, ProcessLog, RecordedOp, RecordingEngine,
};
pub use linearize::{
    check_history, check_history_with, CheckOptions, CheckStats, Verdict, Violation,
};
pub use shim::{BrokenEngine, Bug, MapEngine};
pub use stress::{run_stress, StressSpec};
