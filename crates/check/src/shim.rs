//! Reference and deliberately-broken engines for checker validation.
//!
//! [`MapEngine`] is a trivially correct `BTreeMap`-under-a-mutex engine:
//! every operation is atomic, so every history it serves is linearizable
//! by construction. It doubles as the single-instance oracle in property
//! tests (e.g. the `ShardRouter` cross-shard SCAN suite).
//!
//! [`BrokenEngine`] wraps it with injectable consistency bugs that mimic
//! real LSM failure modes — a dropped WAL record (acknowledged write
//! lost) and a stale read served from a retired PMTable — used by the
//! mutation tests to prove the checker *rejects* bad engines rather than
//! merely accepting good ones.

use miodb_common::{EngineReport, KvEngine, Result, ScanEntry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// A correct, fully-synchronised in-memory engine.
#[derive(Default)]
pub struct MapEngine {
    map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl MapEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> MapEngine {
        MapEngine::default()
    }
}

impl KvEngine for MapEngine {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.map.lock().insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.map.lock().get(key).cloned())
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.map.lock().remove(key);
        Ok(())
    }

    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        Ok(self
            .map
            .lock()
            .range(start.to_vec()..)
            .take(limit)
            .map(|(k, v)| ScanEntry {
                key: k.clone(),
                value: v.clone(),
            })
            .collect())
    }

    fn wait_idle(&self) -> Result<()> {
        Ok(())
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            name: self.name().to_string(),
            ..EngineReport::default()
        }
    }

    fn name(&self) -> &str {
        "map"
    }
}

/// Which consistency bug to inject.
#[derive(Debug, Clone, Copy)]
pub enum Bug {
    /// Every `every`-th `put` is acknowledged but never applied — the
    /// moral equivalent of dropping an acked WAL record before the flush.
    LoseAckedPut {
        /// Period: the bug fires on puts number `every`, `2*every`, ….
        every: u64,
    },
    /// Every `every`-th `get` returns the key's *previous* value when one
    /// exists — a stale read served from a retired PMTable that should
    /// have been unlinked after zero-copy compaction.
    StaleRead {
        /// Period: the bug fires on gets number `every`, `2*every`, ….
        every: u64,
    },
}

/// A [`MapEngine`] with one injected consistency bug.
pub struct BrokenEngine {
    inner: MapEngine,
    bug: Bug,
    puts: AtomicU64,
    gets: AtomicU64,
    /// Last overwritten value per key (the "retired table" contents).
    retired: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
}

impl BrokenEngine {
    /// Wraps a fresh [`MapEngine`] with the given bug.
    #[must_use]
    pub fn new(bug: Bug) -> BrokenEngine {
        BrokenEngine {
            inner: MapEngine::new(),
            bug,
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            retired: Mutex::new(HashMap::new()),
        }
    }
}

impl KvEngine for BrokenEngine {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let n = self.puts.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(prev) = self.inner.get(key)? {
            self.retired.lock().insert(key.to_vec(), prev);
        }
        if let Bug::LoseAckedPut { every } = self.bug {
            if n.is_multiple_of(every) {
                // Acknowledge without applying.
                return Ok(());
            }
        }
        self.inner.put(key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let n = self.gets.fetch_add(1, Ordering::Relaxed) + 1;
        if let Bug::StaleRead { every } = self.bug {
            if n.is_multiple_of(every) {
                if let Some(stale) = self.retired.lock().get(key).cloned() {
                    return Ok(Some(stale));
                }
            }
        }
        self.inner.get(key)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        if let Some(prev) = self.inner.get(key)? {
            self.retired.lock().insert(key.to_vec(), prev);
        }
        self.inner.delete(key)
    }

    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        self.inner.scan(start, limit)
    }

    fn wait_idle(&self) -> Result<()> {
        Ok(())
    }

    fn report(&self) -> EngineReport {
        self.inner.report()
    }

    fn name(&self) -> &str {
        "broken-map"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_engine_scan_is_sorted_from_start() {
        let e = MapEngine::new();
        for k in ["b", "a", "d", "c"] {
            e.put(k.as_bytes(), b"v").unwrap();
        }
        let entries = e.scan(b"b", 10).unwrap();
        let keys: Vec<&[u8]> = entries.iter().map(|e| e.key.as_slice()).collect();
        assert_eq!(keys, vec![b"b" as &[u8], b"c", b"d"]);
    }

    #[test]
    fn lose_acked_put_drops_exactly_the_nth() {
        let e = BrokenEngine::new(Bug::LoseAckedPut { every: 3 });
        e.put(b"a", b"1").unwrap();
        e.put(b"b", b"2").unwrap();
        e.put(b"c", b"3").unwrap(); // dropped
        assert_eq!(e.get(b"a").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(e.get(b"c").unwrap(), None);
    }

    #[test]
    fn stale_read_serves_retired_value() {
        let e = BrokenEngine::new(Bug::StaleRead { every: 2 });
        e.put(b"k", b"old").unwrap();
        e.put(b"k", b"new").unwrap();
        assert_eq!(e.get(b"k").unwrap().as_deref(), Some(&b"new"[..]));
        assert_eq!(e.get(b"k").unwrap().as_deref(), Some(&b"old"[..])); // stale
    }
}
