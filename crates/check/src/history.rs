//! History recording: capture the concurrent operation timeline an engine
//! or client actually served, for offline verification.
//!
//! A [`HistoryRecorder`] hands out one [`ProcessLog`] per logical process
//! (thread or client connection). Each log appends [`RecordedOp`] entries
//! to its own private buffer — single-owner, so the per-op lock is never
//! contended — and the recorder drains every registered buffer when the
//! history is collected. Timestamps come from a single monotonic epoch so
//! real-time windows are comparable across processes.
//!
//! [`RecordingEngine`] wraps any [`KvEngine`] and records every `put`,
//! `get` and `delete` transparently through a thread-local log, so the
//! existing workload drivers produce checkable histories without changes.

use miodb_common::{Error, KvEngine, Result, ScanEntry};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The operation a process invoked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpAction {
    /// `put(key, value)` with this value.
    Put(Vec<u8>),
    /// `delete(key)`.
    Delete,
    /// `get(key)`.
    Get,
}

/// What the caller observed when the operation returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observed {
    /// The mutation was acknowledged: it definitely took effect.
    Acked,
    /// The read returned this value (`None` = key absent).
    Read(Option<Vec<u8>>),
    /// Ambiguous failure: the mutation may or may not have taken effect,
    /// now or later (`Error::MaybeApplied`, or any engine-side write error
    /// whose partial effects are unknown).
    Maybe,
    /// Definite failure: the operation did not take effect; a failed read
    /// learned nothing.
    Never,
}

/// One recorded operation together with its real-time window.
#[derive(Debug, Clone)]
pub struct RecordedOp {
    /// Logical process (thread / client) that issued the operation.
    pub process: u32,
    /// Key operated on.
    pub key: Vec<u8>,
    /// The operation performed.
    pub action: OpAction,
    /// Monotonic nanoseconds (since the recorder's epoch) at invocation.
    pub invoke_ns: u64,
    /// Monotonic nanoseconds at return. `u64::MAX` means the call never
    /// returned (the process was killed mid-call).
    pub return_ns: u64,
    /// Outcome observed by the caller.
    pub observed: Observed,
}

/// A complete recorded history (unordered; the checker sorts per key).
#[derive(Debug, Clone, Default)]
pub struct History {
    /// All recorded operations.
    pub ops: Vec<RecordedOp>,
}

impl History {
    /// Number of recorded operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Merges histories from *temporally disjoint phases* — e.g. the ops a
    /// replication leader served before it was killed, then the ops the
    /// promoted follower served — into one checkable history.
    ///
    /// Each phase's recorder has its own epoch and its own process-id
    /// space, so a naive concatenation would alias both. This merge shifts
    /// every phase's process ids past the previous phases' maximum and its
    /// timestamps past the previous phases' latest return, making phase
    /// order the real-time order. That is sound exactly because the phases
    /// do not overlap in wall-clock time (phase N's last call returns
    /// before phase N+1's first call is invoked); never-returned calls
    /// (`return_ns == u64::MAX`, killed mid-call) keep their sentinel, so
    /// the checker still lets their effect surface in any later phase.
    #[must_use]
    pub fn merge_sequential(phases: Vec<History>) -> History {
        let mut out = History::default();
        let mut proc_base = 0u32;
        let mut time_base = 0u64;
        for phase in phases {
            let mut procs_here = 0u32;
            let mut end_here = time_base;
            for mut op in phase.ops {
                procs_here = procs_here.max(op.process.saturating_add(1));
                op.process += proc_base;
                op.invoke_ns = op.invoke_ns.saturating_add(time_base).min(u64::MAX - 1);
                end_here = end_here.max(op.invoke_ns);
                if op.return_ns != u64::MAX {
                    op.return_ns = op.return_ns.saturating_add(time_base).min(u64::MAX - 1);
                    end_here = end_here.max(op.return_ns);
                }
                out.ops.push(op);
            }
            proc_base += procs_here;
            time_base = end_here + 1;
        }
        out
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

struct RecorderInner {
    id: u64,
    epoch: Instant,
    /// Every process buffer ever handed out; drained by `take_history`.
    logs: Mutex<Vec<Arc<Mutex<Vec<RecordedOp>>>>>,
    next_process: AtomicU32,
}

/// Shared collector for one history. Cheap to clone; all clones feed the
/// same sink and share the same monotonic epoch.
#[derive(Clone)]
pub struct HistoryRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for HistoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl HistoryRecorder {
    /// Creates a recorder whose epoch is "now".
    #[must_use]
    pub fn new() -> HistoryRecorder {
        HistoryRecorder {
            inner: Arc::new(RecorderInner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                logs: Mutex::new(Vec::new()),
                next_process: AtomicU32::new(0),
            }),
        }
    }

    /// Monotonic nanoseconds since this recorder's epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX - 1)
    }

    /// Opens a per-process log. One per thread/client; its buffer is
    /// registered with the recorder, so nothing is lost if the log is
    /// still alive (or its thread-local cache undestroyed) at collection
    /// time.
    #[must_use]
    pub fn log(&self) -> ProcessLog {
        let buf = Arc::new(Mutex::new(Vec::new()));
        self.inner.logs.lock().push(Arc::clone(&buf));
        ProcessLog {
            process: self.inner.next_process.fetch_add(1, Ordering::Relaxed),
            recorder: self.clone(),
            buf,
        }
    }

    /// Drains every operation recorded so far into a [`History`].
    ///
    /// Safe to call once the worker closures driving the engine have
    /// returned (e.g. after `std::thread::scope`); each process buffer is
    /// drained under its own lock.
    #[must_use]
    pub fn take_history(&self) -> History {
        let mut ops = Vec::new();
        for buf in self.inner.logs.lock().iter() {
            ops.append(&mut buf.lock());
        }
        History { ops }
    }
}

/// A per-process operation log. The buffer has a single owner, so the
/// per-op lock is never contended; the recorder drains it at collection
/// time.
pub struct ProcessLog {
    process: u32,
    recorder: HistoryRecorder,
    buf: Arc<Mutex<Vec<RecordedOp>>>,
}

impl ProcessLog {
    /// The process id assigned to this log.
    #[must_use]
    pub fn process(&self) -> u32 {
        self.process
    }

    /// Appends a pre-built operation (escape hatch for custom drivers).
    pub fn record(&mut self, op: RecordedOp) {
        self.buf.lock().push(op);
    }

    fn push(&mut self, key: &[u8], action: OpAction, invoke: u64, ret: u64, observed: Observed) {
        self.buf.lock().push(RecordedOp {
            process: self.process,
            key: key.to_vec(),
            action,
            invoke_ns: invoke,
            return_ns: ret,
            observed,
        });
    }

    /// `put` on an in-process engine, recorded. An engine-side error is
    /// recorded as [`Observed::Maybe`]: a failed write may have partially
    /// persisted (e.g. WAL appended before the flush failed).
    ///
    /// # Errors
    ///
    /// Propagates the engine error.
    pub fn put(&mut self, e: &dyn KvEngine, key: &[u8], value: &[u8]) -> Result<()> {
        let invoke = self.recorder.now_ns();
        let res = e.put(key, value);
        let ret = self.recorder.now_ns();
        let observed = match &res {
            Ok(()) => Observed::Acked,
            Err(_) => Observed::Maybe,
        };
        self.push(key, OpAction::Put(value.to_vec()), invoke, ret, observed);
        res
    }

    /// `get` on an in-process engine, recorded.
    ///
    /// # Errors
    ///
    /// Propagates the engine error (recorded as [`Observed::Never`]: a
    /// failed read observed nothing).
    pub fn get(&mut self, e: &dyn KvEngine, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let invoke = self.recorder.now_ns();
        let res = e.get(key);
        let ret = self.recorder.now_ns();
        let observed = match &res {
            Ok(v) => Observed::Read(v.clone()),
            Err(_) => Observed::Never,
        };
        self.push(key, OpAction::Get, invoke, ret, observed);
        res
    }

    /// `delete` on an in-process engine, recorded (errors are ambiguous,
    /// as for [`ProcessLog::put`]).
    ///
    /// # Errors
    ///
    /// Propagates the engine error.
    pub fn delete(&mut self, e: &dyn KvEngine, key: &[u8]) -> Result<()> {
        let invoke = self.recorder.now_ns();
        let res = e.delete(key);
        let ret = self.recorder.now_ns();
        let observed = match &res {
            Ok(()) => Observed::Acked,
            Err(_) => Observed::Maybe,
        };
        self.push(key, OpAction::Delete, invoke, ret, observed);
        res
    }

    fn client_mutation_observed(res: &Result<()>) -> Observed {
        match res {
            Ok(()) => Observed::Acked,
            // The client's contract: MaybeApplied when the request may have
            // reached the server; anything else means it definitely did not
            // take effect (refused in-band, or never sent). The replication
            // refusals are called out explicitly because the chaos tests
            // lean on them: all three happen *before* engine work, so they
            // are definite no-ops — a quorum-lost or fenced-out write that
            // later surfaced on a replica would be a real bug, and mapping
            // these to `Never` is what lets the linearizability pass catch
            // it.
            Err(Error::MaybeApplied(_)) => Observed::Maybe,
            Err(Error::NotLeader(_)) => Observed::Never,
            Err(Error::QuorumLost { .. }) => Observed::Never,
            Err(Error::StaleEpoch { .. }) => Observed::Never,
            Err(_) => Observed::Never,
        }
    }

    /// `put` through a network client, recorded with the client's
    /// ambiguity contract (`MaybeApplied` ⇒ [`Observed::Maybe`]).
    ///
    /// # Errors
    ///
    /// Propagates the client error.
    pub fn client_put(
        &mut self,
        c: &mut miodb_client::KvClient,
        key: &[u8],
        value: &[u8],
    ) -> Result<()> {
        let invoke = self.recorder.now_ns();
        let res = c.put(key, value);
        let ret = self.recorder.now_ns();
        let observed = Self::client_mutation_observed(&res);
        self.push(key, OpAction::Put(value.to_vec()), invoke, ret, observed);
        res
    }

    /// `get` through a network client, recorded.
    ///
    /// # Errors
    ///
    /// Propagates the client error.
    pub fn client_get(
        &mut self,
        c: &mut miodb_client::KvClient,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>> {
        let invoke = self.recorder.now_ns();
        let res = c.get(key);
        let ret = self.recorder.now_ns();
        let observed = match &res {
            Ok(v) => Observed::Read(v.clone()),
            Err(_) => Observed::Never,
        };
        self.push(key, OpAction::Get, invoke, ret, observed);
        res
    }

    /// `delete` through a network client, recorded like
    /// [`ProcessLog::client_put`].
    ///
    /// # Errors
    ///
    /// Propagates the client error.
    pub fn client_delete(&mut self, c: &mut miodb_client::KvClient, key: &[u8]) -> Result<()> {
        let invoke = self.recorder.now_ns();
        let res = c.delete(key);
        let ret = self.recorder.now_ns();
        let observed = Self::client_mutation_observed(&res);
        self.push(key, OpAction::Delete, invoke, ret, observed);
        res
    }
}

thread_local! {
    /// Per-thread implicit logs for [`RecordingEngine`], keyed by recorder
    /// id (a thread can drive several recorded engines). The buffers are
    /// registered with their recorders, so collection never depends on
    /// thread-local destructor timing.
    static TLS_LOGS: RefCell<Vec<(u64, ProcessLog)>> = const { RefCell::new(Vec::new()) };
}

/// A [`KvEngine`] wrapper that transparently records every `put`, `get`
/// and `delete` into a history, one implicit [`ProcessLog`] per calling
/// thread. Scans and admin calls pass through unrecorded (the per-key
/// register checker does not model range reads).
pub struct RecordingEngine<E> {
    inner: E,
    recorder: HistoryRecorder,
}

impl<E: KvEngine> RecordingEngine<E> {
    /// Wraps `inner`, recording into a fresh history.
    pub fn new(inner: E) -> RecordingEngine<E> {
        RecordingEngine {
            inner,
            recorder: HistoryRecorder::new(),
        }
    }

    /// A handle on the recorder (e.g. to open explicit [`ProcessLog`]s
    /// that share the engine's timeline).
    #[must_use]
    pub fn recorder(&self) -> HistoryRecorder {
        self.recorder.clone()
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Drains the history recorded so far. Safe to call once the worker
    /// closures driving the engine have returned.
    #[must_use]
    pub fn take_history(&self) -> History {
        self.recorder.take_history()
    }

    fn with_log<R>(&self, f: impl FnOnce(&mut ProcessLog) -> R) -> R {
        let id = self.recorder.inner.id;
        TLS_LOGS.with(|cell| {
            let mut logs = cell.borrow_mut();
            if let Some(pos) = logs.iter().position(|(rid, _)| *rid == id) {
                f(&mut logs[pos].1)
            } else {
                logs.push((id, self.recorder.log()));
                let last = logs.last_mut().expect("just pushed");
                f(&mut last.1)
            }
        })
    }
}

impl<E: KvEngine> KvEngine for RecordingEngine<E> {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let invoke = self.recorder.now_ns();
        let res = self.inner.put(key, value);
        let ret = self.recorder.now_ns();
        let observed = match &res {
            Ok(()) => Observed::Acked,
            Err(_) => Observed::Maybe,
        };
        self.with_log(|log| log.push(key, OpAction::Put(value.to_vec()), invoke, ret, observed));
        res
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let invoke = self.recorder.now_ns();
        let res = self.inner.get(key);
        let ret = self.recorder.now_ns();
        let observed = match &res {
            Ok(v) => Observed::Read(v.clone()),
            Err(_) => Observed::Never,
        };
        self.with_log(|log| log.push(key, OpAction::Get, invoke, ret, observed));
        res
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        let invoke = self.recorder.now_ns();
        let res = self.inner.delete(key);
        let ret = self.recorder.now_ns();
        let observed = match &res {
            Ok(()) => Observed::Acked,
            Err(_) => Observed::Maybe,
        };
        self.with_log(|log| log.push(key, OpAction::Delete, invoke, ret, observed));
        res
    }

    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        self.inner.scan(start, limit)
    }

    fn scan_range(&self, start: &[u8], end: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        self.inner.scan_range(start, end, limit)
    }

    fn wait_idle(&self) -> Result<()> {
        self.inner.wait_idle()
    }

    fn report(&self) -> miodb_common::EngineReport {
        self.inner.report()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn telemetry(&self) -> Option<&miodb_common::EngineTelemetry> {
        self.inner.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shim::MapEngine;

    #[test]
    fn timestamps_are_monotonic_and_windows_ordered() {
        let rec = HistoryRecorder::new();
        let e = MapEngine::new();
        let mut log = rec.log();
        log.put(&e, b"a", b"1").unwrap();
        assert_eq!(log.get(&e, b"a").unwrap().as_deref(), Some(&b"1"[..]));
        drop(log);
        let h = rec.take_history();
        assert_eq!(h.len(), 2);
        for op in &h.ops {
            assert!(op.invoke_ns <= op.return_ns);
        }
        assert!(h.ops[0].return_ns <= h.ops[1].invoke_ns);
        assert_eq!(h.ops[0].observed, Observed::Acked);
        assert_eq!(h.ops[1].observed, Observed::Read(Some(b"1".to_vec())));
    }

    #[test]
    fn merge_sequential_renumbers_and_reorders() {
        let mk = |val: &[u8], killed: bool| {
            let rec = HistoryRecorder::new();
            let e = MapEngine::new();
            let mut log = rec.log();
            log.put(&e, b"k", val).unwrap();
            let _ = log.get(&e, b"k").unwrap();
            drop(log);
            let mut h = rec.take_history();
            if killed {
                h.ops[0].return_ns = u64::MAX; // killed mid-call
                h.ops[0].observed = Observed::Maybe;
            }
            h
        };
        let merged = History::merge_sequential(vec![mk(b"1", true), mk(b"2", false)]);
        assert_eq!(merged.len(), 4);
        // Phase 2's process ids are shifted past phase 1's.
        assert_eq!(merged.ops[0].process, 0);
        assert_eq!(merged.ops[2].process, 1);
        // Phase 2 starts strictly after phase 1's latest timestamp.
        let phase1_end = merged.ops[1].return_ns.max(merged.ops[0].invoke_ns);
        assert!(merged.ops[2].invoke_ns > phase1_end);
        // The killed call keeps its open-window sentinel.
        assert_eq!(merged.ops[0].return_ns, u64::MAX);
        // The merged whole is still a linearizable single-key history.
        assert!(crate::check_history(&merged).is_linearizable());
    }

    #[test]
    fn recording_engine_collects_across_threads() {
        let e = RecordingEngine::new(MapEngine::new());
        std::thread::scope(|s| {
            for t in 0..3u32 {
                let e = &e;
                s.spawn(move || {
                    for i in 0..10u32 {
                        e.put(
                            format!("k{}", i % 4).as_bytes(),
                            format!("{t}-{i}").as_bytes(),
                        )
                        .unwrap();
                        let _ = e.get(format!("k{}", i % 4).as_bytes()).unwrap();
                    }
                });
            }
        });
        // Main thread drives the engine too.
        e.put(b"main", b"v").unwrap();
        let h = e.take_history();
        assert_eq!(h.len(), 3 * 20 + 1);
        // Distinct processes were assigned.
        let procs: std::collections::HashSet<u32> = h.ops.iter().map(|o| o.process).collect();
        assert_eq!(procs.len(), 4);
    }

    #[test]
    fn second_take_history_is_empty() {
        let e = RecordingEngine::new(MapEngine::new());
        e.put(b"k", b"v").unwrap();
        assert_eq!(e.take_history().len(), 1);
        assert!(e.take_history().is_empty());
    }

    #[test]
    fn replication_refusals_are_definite_no_ops() {
        // Pre-engine refusals must record as Never: if such a write later
        // appeared on any replica, the linearizability pass would flag it.
        for err in [
            Error::NotLeader("127.0.0.1:1".to_string()),
            Error::QuorumLost { have: 1, need: 2 },
            Error::StaleEpoch {
                epoch: 3,
                hint: String::new(),
            },
        ] {
            assert_eq!(
                ProcessLog::client_mutation_observed(&Err(err)),
                Observed::Never
            );
        }
        assert_eq!(
            ProcessLog::client_mutation_observed(&Err(Error::MaybeApplied("x".into()))),
            Observed::Maybe
        );
        assert_eq!(
            ProcessLog::client_mutation_observed(&Ok(())),
            Observed::Acked
        );
    }
}
