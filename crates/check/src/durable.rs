//! Durable-prefix oracle for crash tests.
//!
//! The contract under test: every write **acknowledged** before the crash
//! instant must be readable after recovery (superseded only by later
//! writes to the same key), and every **unacknowledged** write must be
//! either fully present or fully absent — never torn, never partially
//! visible.
//!
//! Writers bracket each mutation with [`DurableOracle::begin_put`] /
//! [`DurableOracle::ack`] (or use the [`DurableOracle::put`] convenience
//! wrapper). After recovery, [`DurableOracle::verify`] replays the model:
//! for each key, let `A` be the last write acknowledged before the crash
//! instant; the recovered value must equal `A`'s value or that of some
//! write issued after `A` (acknowledged later, unacknowledged, or in
//! flight at the crash). Absence is legal only when a legal candidate is a
//! tombstone or no acknowledged write exists.
//!
//! The model assumes **one writer per key** (each key's writes are issued
//! sequentially, as the crash-fuzz and stress drivers do); concurrent
//! same-key writers would make "the last acknowledged write" ambiguous.

use miodb_common::{KvEngine, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Read function used by [`DurableOracle::verify`]: key → recovered value.
pub type ReadFn<'a> = dyn FnMut(&[u8]) -> Result<Option<Vec<u8>>> + 'a;

struct WriteRec {
    /// `None` is a tombstone (delete).
    value: Option<Vec<u8>>,
    ack_ns: Option<u64>,
}

struct OracleInner {
    epoch: Instant,
    keys: Mutex<HashMap<Vec<u8>, Vec<WriteRec>>>,
}

/// Shared model of every write attempted against the engine under test.
/// Cheap to clone across writer threads.
#[derive(Clone)]
pub struct DurableOracle {
    inner: Arc<OracleInner>,
}

/// Handle for acknowledging one in-flight write.
pub struct WriteToken {
    key: Vec<u8>,
    idx: usize,
}

/// A durability violation found after recovery.
#[derive(Debug, Clone)]
pub struct DurabilityViolation {
    /// The key whose recovered state breaks the contract.
    pub key: Vec<u8>,
    /// The value read back after recovery (`None` = absent).
    pub got: Option<Vec<u8>>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for DurabilityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "durability violation on key {:?}: {} (recovered: {})",
            String::from_utf8_lossy(&self.key),
            self.detail,
            match &self.got {
                Some(v) => format!("{:?}", String::from_utf8_lossy(v)),
                None => "absent".to_string(),
            }
        )
    }
}

impl Default for DurableOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl DurableOracle {
    /// Creates an oracle whose clock starts now.
    #[must_use]
    pub fn new() -> DurableOracle {
        DurableOracle {
            inner: Arc::new(OracleInner {
                epoch: Instant::now(),
                keys: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Monotonic nanoseconds since the oracle's epoch. Capture this just
    /// before forcing the crash and pass it to [`DurableOracle::verify`].
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX - 1)
    }

    fn begin(&self, key: &[u8], value: Option<&[u8]>) -> WriteToken {
        let mut keys = self.inner.keys.lock();
        let writes = keys.entry(key.to_vec()).or_default();
        writes.push(WriteRec {
            value: value.map(<[u8]>::to_vec),
            ack_ns: None,
        });
        WriteToken {
            key: key.to_vec(),
            idx: writes.len() - 1,
        }
    }

    /// Registers a `put` about to be issued. Call [`DurableOracle::ack`]
    /// once the engine acknowledges it; an unacked token leaves the write
    /// in the "maybe applied" candidate set.
    #[must_use]
    pub fn begin_put(&self, key: &[u8], value: &[u8]) -> WriteToken {
        self.begin(key, Some(value))
    }

    /// Registers a `delete` about to be issued.
    #[must_use]
    pub fn begin_delete(&self, key: &[u8]) -> WriteToken {
        self.begin(key, None)
    }

    /// Marks the write as acknowledged at the current instant.
    pub fn ack(&self, token: WriteToken) {
        let now = self.now_ns();
        let mut keys = self.inner.keys.lock();
        if let Some(writes) = keys.get_mut(&token.key) {
            if let Some(rec) = writes.get_mut(token.idx) {
                rec.ack_ns = Some(now);
            }
        }
    }

    /// `put` with oracle bookkeeping: begins, issues, acks on success. On
    /// error the write stays unacknowledged (maybe-applied).
    ///
    /// # Errors
    ///
    /// Propagates the engine error.
    pub fn put(&self, e: &dyn KvEngine, key: &[u8], value: &[u8]) -> Result<()> {
        let token = self.begin_put(key, value);
        e.put(key, value)?;
        self.ack(token);
        Ok(())
    }

    /// `delete` with oracle bookkeeping, like [`DurableOracle::put`].
    ///
    /// # Errors
    ///
    /// Propagates the engine error.
    pub fn delete(&self, e: &dyn KvEngine, key: &[u8]) -> Result<()> {
        let token = self.begin_delete(key);
        e.delete(key)?;
        self.ack(token);
        Ok(())
    }

    /// Verifies the recovered engine against the durable-prefix contract,
    /// treating `crash_ns` (a [`DurableOracle::now_ns`] reading taken just
    /// before the crash was forced) as the crash instant.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify_engine(
        &self,
        e: &dyn KvEngine,
        crash_ns: u64,
    ) -> std::result::Result<(), DurabilityViolation> {
        self.verify(crash_ns, &mut |key| e.get(key))
    }

    /// [`DurableOracle::verify_engine`] over an arbitrary read function
    /// (e.g. a network client).
    ///
    /// # Errors
    ///
    /// Returns the first violation found; a failed read is itself a
    /// violation.
    pub fn verify(
        &self,
        crash_ns: u64,
        read: &mut ReadFn<'_>,
    ) -> std::result::Result<(), DurabilityViolation> {
        let keys = self.inner.keys.lock();
        // Deterministic iteration for reproducible failure reports.
        let mut sorted: Vec<(&Vec<u8>, &Vec<WriteRec>)> = keys.iter().collect();
        sorted.sort_by_key(|(k, _)| k.as_slice());
        for (key, writes) in sorted {
            let got = match read(key) {
                Ok(v) => v,
                Err(e) => {
                    return Err(DurabilityViolation {
                        key: key.clone(),
                        got: None,
                        detail: format!("read failed after recovery: {e}"),
                    })
                }
            };
            // Writes per key are in issue order (single writer per key):
            // the last one acknowledged before the crash is the floor.
            let floor = writes
                .iter()
                .rposition(|w| w.ack_ns.is_some_and(|t| t <= crash_ns));
            let candidates: &[WriteRec] = match floor {
                Some(i) => &writes[i..],
                None => writes,
            };
            let matches = candidates
                .iter()
                .any(|w| w.value.as_deref() == got.as_deref());
            let absent_ok = floor.is_none() || candidates.iter().any(|w| w.value.is_none());
            let ok = match &got {
                Some(_) => matches,
                None => matches || absent_ok,
            };
            if !ok {
                let acked = floor.map_or(0, |i| i + 1);
                return Err(DurabilityViolation {
                    key: key.clone(),
                    got,
                    detail: format!(
                        "none of the {} legal candidate values match \
                         ({} writes issued, last pre-crash ack at index {acked})",
                        candidates.len(),
                        writes.len(),
                    ),
                });
            }
        }
        Ok(())
    }

    /// Number of keys the oracle is tracking.
    #[must_use]
    pub fn tracked_keys(&self) -> usize {
        self.inner.keys.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shim::MapEngine;

    #[test]
    fn acked_write_must_survive() {
        let o = DurableOracle::new();
        let e = MapEngine::new();
        o.put(&e, b"k", b"v1").unwrap();
        let crash = o.now_ns();
        assert!(o.verify_engine(&e, crash).is_ok());
        // Simulate losing the acked write in "recovery".
        e.delete(b"k").unwrap();
        let err = o.verify_engine(&e, crash).unwrap_err();
        assert_eq!(err.key, b"k");
    }

    #[test]
    fn unacked_write_is_present_or_absent_never_torn() {
        let o = DurableOracle::new();
        let e = MapEngine::new();
        o.put(&e, b"k", b"old").unwrap();
        // In-flight write that never acked before the crash.
        let _token = o.begin_put(b"k", b"new");
        e.put(b"k", b"new").unwrap(); // it landed anyway
        let crash = o.now_ns();
        assert!(o.verify_engine(&e, crash).is_ok());
        // Fully absent it did not land is also fine… but reverting to the
        // acked floor value is what absence would mean here:
        e.put(b"k", b"old").unwrap();
        assert!(o.verify_engine(&e, crash).is_ok());
        // A torn value matching neither candidate is a violation.
        e.put(b"k", b"ne").unwrap();
        assert!(o.verify_engine(&e, crash).is_err());
    }

    #[test]
    fn never_written_key_may_be_absent() {
        let o = DurableOracle::new();
        let e = MapEngine::new();
        let _token = o.begin_put(b"k", b"v");
        let crash = o.now_ns();
        // Never landed: absent is legal.
        assert!(o.verify_engine(&e, crash).is_ok());
    }

    #[test]
    fn writes_acked_after_crash_are_legal_candidates() {
        let o = DurableOracle::new();
        let e = MapEngine::new();
        o.put(&e, b"k", b"v1").unwrap();
        let crash = o.now_ns();
        // The driver kept writing past the crash instant (snapshot races
        // live writers): both v1 and v2 are legal recovered states.
        o.put(&e, b"k", b"v2").unwrap();
        assert!(o.verify_engine(&e, crash).is_ok());
        e.put(b"k", b"v1").unwrap();
        assert!(o.verify_engine(&e, crash).is_ok());
        // But a value predating the acked floor is not.
        e.put(b"k", b"v0").unwrap();
        assert!(o.verify_engine(&e, crash).is_err());
    }

    #[test]
    fn tombstone_candidate_legalises_absence() {
        let o = DurableOracle::new();
        let e = MapEngine::new();
        o.put(&e, b"k", b"v1").unwrap();
        o.delete(&e, b"k").unwrap();
        let crash = o.now_ns();
        assert!(o.verify_engine(&e, crash).is_ok());
    }
}
