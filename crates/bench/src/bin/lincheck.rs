//! Linearizability checking harness: seeded interleaving stress against
//! live MioDB instances, every history fed through the per-key Wing–Gong
//! checker from `miodb-check`. Exits nonzero on the first violation (or
//! an exhausted search budget), printing the offending history.
//!
//! ```text
//! lincheck [--seeds N] [--threads N] [--ops N] [--keys N] [--faults]
//!          [--slow-log-us N]
//! ```
//!
//! `--faults` additionally sweeps every engine-reachable fault point per
//! seed with probabilistic injection: failed writes are recorded as
//! ambiguous and the checker validates the history around them.
//!
//! `--slow-log-us N` traces every engine operation (implicit roots, no
//! sampling) and prints span trees for requests slower than N µs after
//! the run — pinpointing which pipeline stage a slow stress op sat in.

use miodb_bench::{print_header, print_row};
use miodb_check::{check_history_with, run_stress, CheckOptions, StressSpec, Verdict};
use miodb_common::fault::{self, FaultPolicy};
use miodb_common::trace;
use miodb_core::{MioDb, MioOptions};

struct Config {
    seeds: u64,
    threads: u32,
    ops: u32,
    keys: u32,
    faults: bool,
    slow_log_us: Option<u64>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        seeds: 8,
        threads: 4,
        ops: 200,
        keys: 16,
        faults: false,
        slow_log_us: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<u64> {
            *i += 1;
            args.get(*i).and_then(|s| s.parse().ok())
        };
        match args[i].as_str() {
            "--seeds" => cfg.seeds = take(&mut i).unwrap_or(cfg.seeds),
            "--threads" => cfg.threads = take(&mut i).unwrap_or(u64::from(cfg.threads)) as u32,
            "--ops" => cfg.ops = take(&mut i).unwrap_or(u64::from(cfg.ops)) as u32,
            "--keys" => cfg.keys = take(&mut i).unwrap_or(u64::from(cfg.keys)) as u32,
            "--faults" => cfg.faults = true,
            "--slow-log-us" => cfg.slow_log_us = take(&mut i),
            "--help" | "-h" => {
                eprintln!(
                    "usage: lincheck [--seeds N] [--threads N] [--ops N] [--keys N] [--faults] \
                     [--slow-log-us N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cfg
}

/// One stress-and-check run; returns false (after printing the verdict)
/// when the history is not proven linearizable.
fn run_one(cfg: &Config, seed: u64, point: Option<&'static str>, widths: &[usize]) -> bool {
    let opts = MioOptions {
        // Aggressive lazy-copy keeps all pipeline stages hot even in
        // short runs.
        lazy_copy_trigger: 1,
        ..MioOptions::small_for_tests()
    };
    let db = match MioDb::open(opts) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("open failed (seed {seed}): {e}");
            return false;
        }
    };
    if let Some(p) = point {
        fault::arm(
            p,
            FaultPolicy::FailProbability {
                num: 1,
                den: 64,
                seed: seed.wrapping_mul(0x9E37_79B9) + 1,
            },
        );
    }
    let spec = StressSpec {
        seed,
        threads: cfg.threads,
        ops_per_thread: cfg.ops,
        key_space: cfg.keys,
        value_len: 24,
    };
    let history = run_stress(&db, &spec);
    if let Some(p) = point {
        fault::disarm(p);
    }
    let ambiguous = history
        .ops
        .iter()
        .filter(|o| o.observed == miodb_check::Observed::Maybe)
        .count();
    let verdict = check_history_with(&history, &CheckOptions::default());
    let (outcome, states, ok) = match &verdict {
        Verdict::Linearizable(s) => ("linearizable".to_string(), s.states_explored, true),
        Verdict::Violation(_) => ("VIOLATION".to_string(), 0, false),
        Verdict::Indeterminate {
            states_explored, ..
        } => ("INDETERMINATE".to_string(), *states_explored, false),
    };
    print_row(
        &[
            point.unwrap_or("-").to_string(),
            seed.to_string(),
            history.len().to_string(),
            ambiguous.to_string(),
            states.to_string(),
            outcome,
        ],
        widths,
    );
    if !ok {
        eprintln!("\n{verdict}");
    }
    db.close().ok();
    ok
}

fn main() {
    let cfg = parse_args();
    println!(
        "== lincheck: {} seeds x {} threads x {} ops over {} keys{} ==",
        cfg.seeds,
        cfg.threads,
        cfg.ops,
        cfg.keys,
        if cfg.faults { " (fault matrix)" } else { "" }
    );
    let widths = [22usize, 6, 8, 10, 12, 14];
    print_header(
        &["point", "seed", "ops", "ambiguous", "states", "outcome"],
        &widths,
    );
    // Serialize against other fault users and disarm everything on exit.
    let _guard = fault::exclusive();
    // Direct-drive: there is no client to open root spans, so implicit
    // roots let every engine op start its own unsampled trace.
    if cfg.slow_log_us.is_some() {
        trace::enable(1 << 18, 1, true);
    }
    let mut ok = true;
    for seed in 0..cfg.seeds {
        ok &= run_one(&cfg, seed, None, &widths);
        if cfg.faults {
            for point in [
                fault::points::ENGINE_FLUSH,
                fault::points::ENGINE_COMPACTION,
                fault::points::ENGINE_LAZY,
                fault::points::WAL_APPEND_PRE_CRC,
                fault::points::PMEM_ALLOC,
            ] {
                ok &= run_one(&cfg, seed, Some(point), &widths);
            }
        }
    }
    if let Some(us) = cfg.slow_log_us {
        let spans = trace::drain();
        trace::disable();
        let log = trace::slow_log(&spans, us * 1000);
        if log.is_empty() {
            println!("\nslow log: no request exceeded {us}us");
        } else {
            println!("\nslow log (threshold {us}us):\n{log}");
        }
    }
    if ok {
        println!("\nall histories linearizable");
    } else {
        eprintln!("\nlinearizability check FAILED");
        std::process::exit(1);
    }
}
