//! Reproduces every table and figure of the MioDB paper's evaluation.
//!
//! ```text
//! repro [--scale-mb N] [--quick] <experiment>
//!   experiments: fig2 fig6 table1 fig7 table2 fig8 fig9 fig10 fig11
//!                fig12 fig13 table3 fig14 scaling all
//! ```
//!
//! Absolute numbers differ from the paper (simulated devices, scaled
//! datasets); the reproduced quantity is the *shape*: which engine wins,
//! by roughly what factor, and where crossovers happen. `EXPERIMENTS.md`
//! records paper-vs-measured for each run.

use std::time::Instant;

use miodb_bench::{
    build_engine, build_engine_with, fmt_bytes, print_header, print_row, EngineKind, Mode, Scale,
};
use miodb_common::{EventKind, Histogram, KvEngine, Result};
use miodb_workloads::{
    run_db_bench, run_fill_concurrent, run_ycsb, BenchKind, YcsbSpec, YcsbWorkload,
};

/// Every experiment with the paper artifact it reproduces, for `--list`
/// and the no-argument usage message.
const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "fig2",
        "motivation: stall/read breakdown, flush throughput, WA",
    ),
    ("fig6", "db_bench write/read throughput vs value size"),
    (
        "table1",
        "cost analysis: stalls, deserialization, flushing, WA",
    ),
    ("fig7", "YCSB throughput (Load, A-F)"),
    ("table2", "YCSB-A tail latencies, in-memory mode"),
    ("fig8", "YCSB-A latency timeline (stall spikes)"),
    ("fig9", "performance vs elastic-level count"),
    ("fig10", "write/read throughput vs dataset size"),
    ("fig11", "write amplification vs dataset size"),
    ("fig12", "flushing latency/throughput vs MemTable size"),
    ("fig13", "DRAM-NVM-SSD mode throughput + YCSB"),
    ("table3", "YCSB-A tail latencies, DRAM-NVM-SSD mode"),
    ("fig14", "throughput vs NVM buffer size, tiered mode"),
    (
        "scaling",
        "fillrandom vs writer threads (group-commit pipeline)",
    ),
    (
        "faults",
        "fault matrix: seeds x fault points, typed-error-or-full-recovery",
    ),
    (
        "check",
        "verification: linearizability under faults + durable-prefix crash rounds",
    ),
    (
        "trace",
        "critical-path attribution of YCSB-A p50 vs p99.9 over the wire",
    ),
    (
        "repl",
        "WAL-shipping replication: async vs semi-sync vs quorum throughput, follower lag",
    ),
    ("all", "every experiment above, in order"),
];

fn print_experiments(mut out: impl std::io::Write) {
    let _ = writeln!(out, "usage: repro [--scale-mb N] [--quick] <experiment>\n");
    let _ = writeln!(out, "experiments:");
    for (name, what) in EXPERIMENTS {
        let _ = writeln!(out, "  {name:<8} {what}");
    }
    let _ = writeln!(
        out,
        "\n  --scale-mb N  dataset size in MiB (default 48)\n  --quick       shrink datasets and sweeps for a fast pass\n  --list        print this summary and exit"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_mb: u64 = 48;
    let mut quick = false;
    let mut cmd = String::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale-mb" => {
                i += 1;
                scale_mb = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(48);
            }
            "--quick" => quick = true,
            "--list" | "--help" | "-h" => {
                print_experiments(std::io::stdout());
                return;
            }
            other => cmd = other.to_string(),
        }
        i += 1;
    }
    if quick {
        scale_mb = scale_mb.min(12);
    }
    let dataset = scale_mb << 20;
    if cmd.is_empty() {
        print_experiments(std::io::stderr());
        std::process::exit(2);
    }
    let t0 = Instant::now();
    let r = match cmd.as_str() {
        "fig2" => fig2(dataset),
        "fig6" => fig6(dataset, quick),
        "table1" => table1(dataset),
        "fig7" => fig7(dataset, quick),
        "table2" => table2(dataset),
        "fig8" => fig8(dataset),
        "fig9" => fig9(dataset),
        "fig10" => fig10(dataset),
        "fig11" => fig11(dataset),
        "fig12" => fig12(dataset),
        "fig13" => fig13(dataset, quick),
        "table3" => table3(dataset),
        "fig14" => fig14(dataset),
        "scaling" => scaling(dataset, quick),
        "faults" => faults(quick),
        "check" => check(quick),
        "trace" => trace_experiment(quick),
        "repl" => repl_experiment(quick),
        "all" => all(dataset, quick),
        other => {
            eprintln!("unknown experiment: {other}\n");
            print_experiments(std::io::stderr());
            std::process::exit(2);
        }
    };
    if let Err(e) = r {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
    eprintln!("\n[{cmd} done in {:.1}s]", t0.elapsed().as_secs_f64());
}

/// Merged engine-side op-latency snapshot (put+get+delete+scan), or `None`
/// when the engine doesn't expose telemetry (plain LevelDB).
fn engine_latency(engine: &dyn KvEngine) -> Option<Histogram> {
    let t = engine.telemetry()?;
    let mut h = t.put_latency.snapshot();
    h.merge(&t.get_latency.snapshot());
    h.merge(&t.delete_latency.snapshot());
    h.merge(&t.scan_latency.snapshot());
    Some(h)
}

/// Clears the engine-side op histograms so a measurement phase starts from
/// zero (drops the load-phase samples).
fn reset_engine_latency(engine: &dyn KvEngine) {
    if let Some(t) = engine.telemetry() {
        t.put_latency.reset();
        t.get_latency.reset();
        t.delete_latency.reset();
        t.scan_latency.reset();
    }
}

fn all(dataset: u64, quick: bool) -> Result<()> {
    fig2(dataset)?;
    fig6(dataset, quick)?;
    table1(dataset)?;
    fig7(dataset, quick)?;
    table2(dataset)?;
    fig8(dataset)?;
    fig9(dataset)?;
    fig10(dataset)?;
    fig11(dataset)?;
    fig12(dataset)?;
    fig13(dataset, quick)?;
    table3(dataset)?;
    fig14(dataset)?;
    scaling(dataset, quick)?;
    faults(quick)?;
    check(quick)?;
    trace_experiment(quick)?;
    repl_experiment(quick)?;
    Ok(())
}

/// Loads the whole dataset with random-order puts and returns the result.
fn load(engine: &dyn KvEngine, scale: &Scale) -> Result<miodb_workloads::BenchResult> {
    run_db_bench(
        engine,
        BenchKind::FillRandom,
        scale.keys(),
        0,
        scale.value_len,
        7,
    )
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

// ---------------------------------------------------------------------------
// Figure 2 — motivation: write/read breakdown, flush throughput, WA.
// ---------------------------------------------------------------------------
fn fig2(dataset: u64) -> Result<()> {
    println!(
        "\n== Figure 2: execution breakdown of NoveLSM / MatrixKV (MioDB shown for reference) =="
    );
    println!("   paper: NoveLSM suffers interval+cumulative stalls; MatrixKV eliminates interval");
    println!(
        "   stalls but keeps ~62% cumulative; deserialization >50% of read time; WA 6.6x/5.6x."
    );
    let scale = Scale::new(dataset, 4096);
    let widths = [14usize, 10, 12, 12, 10, 12, 12, 8];
    print_header(
        &[
            "engine",
            "write(s)",
            "interval(s)",
            "cumul.(s)",
            "read(ms)",
            "deser.(ms)",
            "flush MB/s",
            "WA",
        ],
        &widths,
    );
    for kind in [EngineKind::NoveLsm, EngineKind::MatrixKv, EngineKind::MioDb] {
        let engine = build_engine(kind, Mode::InMemory, &scale)?;
        let w = load(engine.as_ref(), &scale)?;
        engine.wait_idle()?;
        let mid = engine.report().stats;
        let r = run_db_bench(
            engine.as_ref(),
            BenchKind::ReadRandom,
            scale.read_ops,
            scale.keys(),
            scale.value_len,
            9,
        )?;
        let end = engine.report().stats;
        print_row(
            &[
                kind.name().to_string(),
                format!("{:.2}", secs(w.elapsed_ns)),
                format!("{:.2}", secs(mid.interval_stall_ns)),
                format!("{:.2}", secs(mid.cumulative_stall_ns)),
                format!("{:.1}", r.elapsed_ns as f64 / 1e6),
                format!(
                    "{:.1}",
                    (end.deserialization_ns - mid.deserialization_ns) as f64 / 1e6
                ),
                format!("{:.1}", mid.flush_throughput_bps() / 1e6),
                format!("{:.1}x", end.write_amplification),
            ],
            &widths,
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Figure 6 — db_bench random/sequential write and read, value sweep.
// ---------------------------------------------------------------------------
fn fig6(dataset: u64, quick: bool) -> Result<()> {
    println!("\n== Figure 6: db_bench throughput/latency vs value size (in-memory mode) ==");
    println!(
        "   paper: MioDB beats MatrixKV/NoveLSM by 2.5x/8.3x random write, 1.3x/4.4x random read."
    );
    let sizes: &[usize] = if quick {
        &[1024, 4096]
    } else {
        &[1024, 4096, 16384, 65536]
    };
    let widths = [14usize, 9, 12, 12, 12, 12];
    for &value_len in sizes {
        println!("\n-- value size {} --", fmt_bytes(value_len as u64));
        print_header(
            &[
                "engine",
                "value",
                "fillrand MB/s",
                "fillseq MB/s",
                "readrand Kops",
                "readseq Kops",
            ],
            &widths,
        );
        for kind in EngineKind::main_three() {
            let scale = Scale::new(dataset, value_len);
            // Random-order load, then reads on it.
            let engine = build_engine(kind, Mode::InMemory, &scale)?;
            let wrand = load(engine.as_ref(), &scale)?;
            engine.wait_idle()?;
            let rrand = run_db_bench(
                engine.as_ref(),
                BenchKind::ReadRandom,
                scale.read_ops,
                scale.keys(),
                value_len,
                5,
            )?;
            if std::env::var_os("MIODB_BENCH_DEBUG").is_some() {
                eprintln!(
                    "  [{} rrand: p50={}us p90={}us p99={}us max={}us]",
                    kind.name(),
                    rrand.latency.percentile(50.0) / 1000,
                    rrand.latency.percentile(90.0) / 1000,
                    rrand.latency.percentile(99.0) / 1000,
                    rrand.latency.max() / 1000
                );
            }
            let rseq = run_db_bench(
                engine.as_ref(),
                BenchKind::ReadSeq,
                scale.read_ops,
                scale.keys(),
                value_len,
                5,
            )?;
            drop(engine);
            // Sequential load on a fresh engine.
            let engine = build_engine(kind, Mode::InMemory, &scale)?;
            let wseq = run_db_bench(
                engine.as_ref(),
                BenchKind::FillSeq,
                scale.keys(),
                0,
                value_len,
                7,
            )?;
            print_row(
                &[
                    kind.name().to_string(),
                    fmt_bytes(value_len as u64),
                    format!("{:.1}", wrand.mib_per_sec(value_len)),
                    format!("{:.1}", wseq.mib_per_sec(value_len)),
                    format!("{:.1}", rrand.kops()),
                    format!("{:.1}", rseq.kops()),
                ],
                &widths,
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Table 1 — cost analysis.
// ---------------------------------------------------------------------------
fn table1(dataset: u64) -> Result<()> {
    println!("\n== Table 1: costs (in-memory mode, 4 KiB values) ==");
    println!("   paper: MioDB 0 interval / 28.1s cumulative / 0 deser / 13.6s flush / 2.9x WA;");
    println!("          MatrixKV 0 / 731.3 / 74.3 / 191.0 / 5.6x; NoveLSM 496.9 / 1071.3 / 82.3 / 511.8 / 6.6x.");
    let scale = Scale::new(dataset, 4096);
    let widths = [14usize, 13, 14, 11, 12, 8];
    print_header(
        &[
            "engine",
            "interval(s)",
            "cumulative(s)",
            "deser.(s)",
            "flushing(s)",
            "WA",
        ],
        &widths,
    );
    for kind in [EngineKind::MioDb, EngineKind::MatrixKv, EngineKind::NoveLsm] {
        let engine = build_engine(kind, Mode::InMemory, &scale)?;
        load(engine.as_ref(), &scale)?;
        engine.wait_idle()?;
        run_db_bench(
            engine.as_ref(),
            BenchKind::ReadRandom,
            scale.read_ops,
            scale.keys(),
            4096,
            3,
        )?;
        let s = engine.report().stats;
        print_row(
            &[
                kind.name().to_string(),
                format!("{:.2}", secs(s.interval_stall_ns)),
                format!("{:.2}", secs(s.cumulative_stall_ns)),
                format!("{:.2}", secs(s.deserialization_ns)),
                format!("{:.2}", secs(s.flush_ns)),
                format!("{:.1}x", s.write_amplification),
            ],
            &widths,
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Figure 7 — YCSB throughput.
// ---------------------------------------------------------------------------
fn ycsb_suite(engine: &dyn KvEngine, scale: &Scale, ops: u64) -> Result<Vec<(String, f64)>> {
    let spec = YcsbSpec {
        records: scale.keys(),
        operations: ops,
        value_len: scale.value_len,
        threads: 2,
        seed: 11,
        record_timeline: false,
        max_scan_len: 50,
    };
    let mut out = Vec::new();
    let loaded = run_ycsb(engine, YcsbWorkload::Load, &spec)?;
    out.push(("Load".to_string(), loaded.kops()));
    for w in [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ] {
        let r = run_ycsb(engine, w, &spec)?;
        out.push((w.to_string(), r.kops()));
    }
    Ok(out)
}

fn fig7(dataset: u64, quick: bool) -> Result<()> {
    println!("\n== Figure 7: YCSB throughput (KIOPS, in-memory mode) ==");
    println!(
        "   paper: MioDB load 12.1x/2.8x vs NoveLSM/MatrixKV; reads up to 5.1x; E favors NoSST."
    );
    let sizes: &[usize] = if quick { &[4096] } else { &[1024, 4096] };
    for &value_len in sizes {
        let scale = Scale::new(dataset, value_len);
        let ops = (scale.keys() / 4).max(2000);
        println!(
            "\n-- value size {} ({} records, {} ops) --",
            fmt_bytes(value_len as u64),
            scale.keys(),
            ops
        );
        let widths = [14usize, 8, 8, 8, 8, 8, 8, 8];
        print_header(&["engine", "Load", "A", "B", "C", "D", "E", "F"], &widths);
        for kind in [
            EngineKind::MioDb,
            EngineKind::MatrixKv,
            EngineKind::NoveLsm,
            EngineKind::NoveLsmNoSst,
        ] {
            let engine = build_engine(kind, Mode::InMemory, &scale)?;
            let results = ycsb_suite(engine.as_ref(), &scale, ops)?;
            let mut cells = vec![kind.name().to_string()];
            cells.extend(results.iter().map(|(_, k)| format!("{k:.1}")));
            print_row(&cells, &widths);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Table 2 — YCSB-A tail latency (in-memory).
// ---------------------------------------------------------------------------
fn tail_table(mode: Mode, dataset: u64, header: &str) -> Result<()> {
    println!("{header}");
    let widths = [8usize, 14, 10, 10, 10, 10];
    print_header(
        &[
            "KV size",
            "engine",
            "avg(us)",
            "p90(us)",
            "p99(us)",
            "p99.9(us)",
        ],
        &widths,
    );
    for value_len in [4096usize, 1024] {
        let scale = Scale::new(dataset, value_len);
        for kind in [EngineKind::NoveLsm, EngineKind::MatrixKv, EngineKind::MioDb] {
            let engine = build_engine(kind, mode, &scale)?;
            let spec = YcsbSpec {
                records: scale.keys(),
                operations: (scale.keys() / 4).max(2000),
                value_len,
                threads: 1,
                seed: 13,
                record_timeline: false,
                max_scan_len: 50,
            };
            run_ycsb(engine.as_ref(), YcsbWorkload::Load, &spec)?;
            reset_engine_latency(engine.as_ref());
            let r = run_ycsb(engine.as_ref(), YcsbWorkload::A, &spec)?;
            // Tail latencies come from the engine-side concurrent
            // histograms (what a production deployment would scrape);
            // the bench-side measurement is the fallback for engines
            // without telemetry.
            let lat = engine_latency(engine.as_ref()).unwrap_or(r.latency);
            print_row(
                &[
                    fmt_bytes(value_len as u64),
                    kind.name().to_string(),
                    format!("{:.1}", lat.mean() / 1000.0),
                    format!("{:.1}", lat.percentile(90.0) as f64 / 1000.0),
                    format!("{:.1}", lat.percentile(99.0) as f64 / 1000.0),
                    format!("{:.1}", lat.percentile(99.9) as f64 / 1000.0),
                ],
                &widths,
            );
        }
    }
    Ok(())
}

fn table2(dataset: u64) -> Result<()> {
    tail_table(
        Mode::InMemory,
        dataset,
        "\n== Table 2: YCSB-A tail latencies (in-memory mode) ==\n   paper @4KiB: MioDB p99.9 = 44.7us vs MatrixKV 973.6us (21.7x) and NoveLSM 764.3us (17.1x).",
    )
}

// ---------------------------------------------------------------------------
// Figure 8 — YCSB-A latency timeline.
// ---------------------------------------------------------------------------
fn fig8(dataset: u64) -> Result<()> {
    println!(
        "\n== Figure 8: YCSB-A latency over time (4 KiB values; 40 buckets of mean/max us) =="
    );
    println!(
        "   paper: NoveLSM/MatrixKV show large spikes early (stall bursts); MioDB stays flat."
    );
    let scale = Scale::new(dataset, 4096);
    for kind in [EngineKind::NoveLsm, EngineKind::MatrixKv, EngineKind::MioDb] {
        let engine = build_engine(kind, Mode::InMemory, &scale)?;
        let spec = YcsbSpec {
            records: scale.keys(),
            operations: (scale.keys() / 2).max(4000),
            value_len: 4096,
            threads: 1,
            seed: 17,
            record_timeline: true,
            max_scan_len: 50,
        };
        run_ycsb(engine.as_ref(), YcsbWorkload::Load, &spec)?;
        reset_engine_latency(engine.as_ref());
        engine.drain_events(); // discard load-phase events
        let r = run_ycsb(engine.as_ref(), YcsbWorkload::A, &spec)?;
        let buckets = 40.min(r.timeline.len().max(1));
        let per = (r.timeline.len() / buckets).max(1);
        print!("{:>14}: ", kind.name());
        for b in 0..buckets {
            let chunk = &r.timeline[b * per..((b + 1) * per).min(r.timeline.len())];
            if chunk.is_empty() {
                break;
            }
            let mean = chunk.iter().sum::<u64>() as f64 / chunk.len() as f64 / 1000.0;
            print!("{mean:.0} ");
        }
        // Tail figures from the engine-side histograms; the event trace
        // explains the spikes (stall and compaction activity during A).
        let lat = engine_latency(engine.as_ref()).unwrap_or(r.latency);
        let events = engine.drain_events();
        let stalls = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::StallBegin { .. }))
            .count();
        let compactions = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CompactionBegin { .. }))
            .count();
        println!(
            "  [p99.9 {:.0}us max {:.0}us; {stalls} stalls, {compactions} compactions]",
            lat.percentile(99.9) as f64 / 1000.0,
            lat.max() as f64 / 1000.0
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Figure 9 — performance vs number of elastic levels.
// ---------------------------------------------------------------------------
fn fig9(dataset: u64) -> Result<()> {
    println!("\n== Figure 9: MioDB performance vs elastic-level count (compaction threads) ==");
    println!("   paper: write perf flat across levels; read perf peaks at 8 levels.");
    let scale = Scale::new(dataset, 4096);
    let widths = [8usize, 14, 14, 14];
    print_header(
        &["levels", "write MB/s", "write avg us", "readrand Kops"],
        &widths,
    );
    for levels in [2usize, 4, 6, 8, 10] {
        let engine = build_engine_with(
            EngineKind::MioDb,
            Mode::InMemory,
            &scale,
            Some(levels),
            None,
        )?;
        let w = load(engine.as_ref(), &scale)?;
        engine.wait_idle()?;
        let r = run_db_bench(
            engine.as_ref(),
            BenchKind::ReadRandom,
            scale.read_ops,
            scale.keys(),
            4096,
            23,
        )?;
        print_row(
            &[
                levels.to_string(),
                format!("{:.1}", w.mib_per_sec(4096)),
                format!("{:.1}", w.latency.mean() / 1000.0),
                format!("{:.1}", r.kops()),
            ],
            &widths,
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Figures 10 & 11 — dataset-size sweeps (performance and WA).
// ---------------------------------------------------------------------------
fn fig10(dataset: u64) -> Result<()> {
    println!("\n== Figure 10: random write/read vs dataset size (in-memory mode, 4 KiB) ==");
    println!("   paper (40->200GB): baselines degrade steeply; MioDB write ~flat, read -33.5%.");
    let widths = [10usize, 14, 14, 14];
    for kind in EngineKind::main_three() {
        println!("\n-- {} --", kind.name());
        print_header(&["dataset", "write MB/s", "readrand Kops", "WA"], &widths);
        for mult in [5u64, 10, 15, 20, 25] {
            let scale = Scale::new(dataset * mult / 10, 4096);
            let engine = build_engine(kind, Mode::InMemory, &scale)?;
            let w = load(engine.as_ref(), &scale)?;
            engine.wait_idle()?;
            let r = run_db_bench(
                engine.as_ref(),
                BenchKind::ReadRandom,
                scale.read_ops,
                scale.keys(),
                4096,
                29,
            )?;
            let s = engine.report().stats;
            print_row(
                &[
                    fmt_bytes(scale.dataset_bytes),
                    format!("{:.1}", w.mib_per_sec(4096)),
                    format!("{:.1}", r.kops()),
                    format!("{:.1}x", s.write_amplification),
                ],
                &widths,
            );
        }
    }
    Ok(())
}

fn fig11(dataset: u64) -> Result<()> {
    println!("\n== Figure 11: write amplification vs dataset size ==");
    println!("   paper: MioDB 2.9x flat (bound 3); NoveLSM/MatrixKV grow to ~14x/13x at 200GB.");
    let widths = [10usize, 12, 12, 12];
    print_header(&["dataset", "MioDB", "MatrixKV", "NoveLSM"], &widths);
    for mult in [5u64, 10, 15, 20, 25] {
        let scale = Scale::new(dataset * mult / 10, 4096);
        let mut cells = vec![fmt_bytes(scale.dataset_bytes)];
        for kind in EngineKind::main_three() {
            let engine = build_engine(kind, Mode::InMemory, &scale)?;
            load(engine.as_ref(), &scale)?;
            engine.wait_idle()?;
            cells.push(format!("{:.1}x", engine.report().stats.write_amplification));
        }
        print_row(&cells, &widths);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Figure 12 — MemTable-size sensitivity.
// ---------------------------------------------------------------------------
fn fig12(dataset: u64) -> Result<()> {
    println!("\n== Figure 12: flushing latency/throughput vs MemTable size ==");
    println!("   paper: MioDB per-flush latency 37.6x/11.9x below NoveLSM/MatrixKV; totals flat.");
    let widths = [14usize, 10, 16, 16, 12];
    print_header(
        &[
            "engine",
            "memtable",
            "avg flush(ms)",
            "total flush(s)",
            "write MB/s",
        ],
        &widths,
    );
    for kind in [EngineKind::MioDb, EngineKind::MatrixKv, EngineKind::NoveLsm] {
        for shift in [0i32, 1, 2] {
            let base = Scale::new(dataset, 4096);
            let mut scale = base;
            scale.memtable_bytes = (base.memtable_bytes << shift).max(128 * 1024);
            let engine = build_engine(kind, Mode::InMemory, &scale)?;
            let w = load(engine.as_ref(), &scale)?;
            engine.wait_idle()?;
            let s = engine.report().stats;
            let avg_ms = if s.flush_count == 0 {
                0.0
            } else {
                s.flush_ns as f64 / s.flush_count as f64 / 1e6
            };
            print_row(
                &[
                    kind.name().to_string(),
                    fmt_bytes(scale.memtable_bytes as u64),
                    format!("{avg_ms:.2}"),
                    format!("{:.2}", secs(s.flush_ns)),
                    format!("{:.1}", w.mib_per_sec(4096)),
                ],
                &widths,
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Figure 13 + Table 3 — DRAM-NVM-SSD mode.
// ---------------------------------------------------------------------------
fn fig13(dataset: u64, quick: bool) -> Result<()> {
    println!("\n== Figure 13: DRAM-NVM-SSD mode (4 KiB values) ==");
    println!(
        "   paper: MioDB random write 10.5x/11.2x vs MatrixKV/NoveLSM; YCSB load 11.8x/12.1x."
    );
    let scale = Scale::new(dataset, 4096);
    let widths = [14usize, 14, 14];
    print_header(&["engine", "fillrand MB/s", "readrand Kops"], &widths);
    for kind in EngineKind::main_three() {
        let engine = build_engine(kind, Mode::Tiered, &scale)?;
        let w = load(engine.as_ref(), &scale)?;
        engine.wait_idle()?;
        let r = run_db_bench(
            engine.as_ref(),
            BenchKind::ReadRandom,
            scale.read_ops,
            scale.keys(),
            4096,
            31,
        )?;
        print_row(
            &[
                kind.name().to_string(),
                format!("{:.1}", w.mib_per_sec(4096)),
                format!("{:.1}", r.kops()),
            ],
            &widths,
        );
    }
    if !quick {
        println!("\n-- YCSB (KIOPS, tiered) --");
        let ops = (scale.keys() / 4).max(2000);
        let widths = [14usize, 8, 8, 8, 8, 8, 8, 8];
        print_header(&["engine", "Load", "A", "B", "C", "D", "E", "F"], &widths);
        for kind in EngineKind::main_three() {
            let engine = build_engine(kind, Mode::Tiered, &scale)?;
            let results = ycsb_suite(engine.as_ref(), &scale, ops)?;
            let mut cells = vec![kind.name().to_string()];
            cells.extend(results.iter().map(|(_, k)| format!("{k:.1}")));
            print_row(&cells, &widths);
        }
    }
    Ok(())
}

fn table3(dataset: u64) -> Result<()> {
    tail_table(
        Mode::Tiered,
        dataset,
        "\n== Table 3: YCSB-A tail latencies (DRAM-NVM-SSD mode) ==\n   paper @4KiB: MioDB p99.9 = 39.6us vs MatrixKV 1979.5us (49.9x) and NoveLSM 971.8us (24.5x).",
    )
}

// ---------------------------------------------------------------------------
// Figure 14 — NVM buffer size sweep (tiered mode).
// ---------------------------------------------------------------------------
fn fig14(dataset: u64) -> Result<()> {
    println!("\n== Figure 14: throughput vs NVM buffer size (DRAM-NVM-SSD mode, 4 KiB) ==");
    println!("   paper @64GB buffers: MioDB write 2.3x/4.9x vs MatrixKV/NoveLSM; read 11.4x vs MatrixKV.");
    let scale = Scale::new(dataset, 4096);
    let base_buf = scale.container_bytes();
    let widths = [14usize, 10, 14, 14];
    print_header(
        &["engine", "buffer", "write MB/s", "readrand Kops"],
        &widths,
    );
    for kind in EngineKind::main_three() {
        for mult in [1u64, 2, 4, 8] {
            let buf = base_buf * mult / 2;
            let engine = build_engine_with(kind, Mode::Tiered, &scale, None, Some(buf))?;
            let w = load(engine.as_ref(), &scale)?;
            engine.wait_idle()?;
            let r = run_db_bench(
                engine.as_ref(),
                BenchKind::ReadRandom,
                scale.read_ops,
                scale.keys(),
                4096,
                37,
            )?;
            print_row(
                &[
                    kind.name().to_string(),
                    fmt_bytes(buf),
                    format!("{:.1}", w.mib_per_sec(4096)),
                    format!("{:.1}", r.kops()),
                ],
                &widths,
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Faults — deterministic fault-injection matrix (DESIGN.md §10).
// ---------------------------------------------------------------------------
fn faults(quick: bool) -> Result<()> {
    use miodb_common::fault::{self, FaultPolicy};
    use miodb_core::{MioDb, MioOptions};

    println!("\n== Fault matrix: seeds x fault points (typed-error-or-full-recovery) ==");
    println!("   contract: every injected failure surfaces as a typed error or is absorbed");
    println!("   by retry; acknowledged writes are never lost; the engine ends healthy.");
    let keys: u32 = if quick { 1_500 } else { 4_000 };
    let points = [
        fault::points::ENGINE_FLUSH,
        fault::points::ENGINE_COMPACTION,
        fault::points::ENGINE_LAZY,
        fault::points::WAL_APPEND_PRE_CRC,
        fault::points::PMEM_ALLOC,
    ];
    let widths = [22usize, 8, 8, 10, 8, 8, 12];
    print_header(
        &[
            "point",
            "seed",
            "hits",
            "triggered",
            "acked",
            "failed",
            "outcome",
        ],
        &widths,
    );
    // Serialize against any other fault user in this process and guarantee
    // everything is disarmed afterwards, even on early return.
    let _guard = fault::exclusive();
    for seed in [11u64, 23, 47] {
        for point in points {
            fault::arm(
                point,
                FaultPolicy::FailProbability {
                    num: 1,
                    den: 48,
                    seed,
                },
            );
            let opts = MioOptions {
                lazy_copy_trigger: 1,
                ..MioOptions::small_for_tests()
            };
            let db = MioDb::open(opts)?;
            let mut acked: Vec<u32> = Vec::new();
            let mut failed = 0u64;
            for i in 0..keys {
                match db.put(format!("key{i:06}").as_bytes(), &[7u8; 256]) {
                    Ok(()) => acked.push(i),
                    Err(_) => failed += 1, // typed error while armed: allowed
                }
            }
            let row = fault::snapshot();
            let (hits, triggered) = row
                .iter()
                .find(|(n, _, _)| n == point)
                .map_or((0, 0), |(_, h, t)| (*h, *t));
            fault::disarm(point);
            db.wait_idle()?;
            let outcome = if let Some(msg) = db.background_error() {
                format!("DEGRADED: {msg}")
            } else {
                let mut lost = 0u64;
                for i in &acked {
                    if db.get(format!("key{i:06}").as_bytes())?.is_none() {
                        lost += 1;
                    }
                }
                if lost == 0 {
                    "recovered".to_string()
                } else {
                    format!("LOST {lost}")
                }
            };
            db.close()?;
            let failed_outcome = outcome != "recovered";
            print_row(
                &[
                    point.to_string(),
                    seed.to_string(),
                    hits.to_string(),
                    triggered.to_string(),
                    acked.len().to_string(),
                    failed.to_string(),
                    outcome,
                ],
                &widths,
            );
            if failed_outcome {
                return Err(miodb_common::Error::Corruption(format!(
                    "fault matrix violation at point {point} seed {seed}"
                )));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Check — linearizability + durable-prefix verification (DESIGN.md §11).
// ---------------------------------------------------------------------------
fn check(quick: bool) -> Result<()> {
    use miodb_check::{check_history, run_stress, DurableOracle, StressSpec, Verdict};
    use miodb_common::fault::{self, FaultPolicy};
    use miodb_common::Stats;
    use miodb_core::{MioDb, MioOptions};
    use miodb_pmem::PmemPool;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    println!("\n== Verification: per-key linearizability + durable-prefix crash rounds ==");
    println!("   histories from seeded interleaving stress are replayed through the");
    println!("   Wing-Gong checker; crash rounds snapshot mid-storm and require every");
    println!("   acknowledged write to survive recovery (in-flight: all-or-nothing).");
    let seeds: u64 = if quick { 3 } else { 8 };
    let busy = || MioOptions {
        lazy_copy_trigger: 1,
        ..MioOptions::small_for_tests()
    };

    // Phase 1: linearizability of stress histories, fault-free and with
    // probabilistic injection at two representative engine points.
    let widths = [22usize, 6, 8, 10, 14];
    print_header(&["point", "seed", "ops", "ambiguous", "outcome"], &widths);
    let _guard = fault::exclusive();
    for seed in 0..seeds {
        for point in [
            None,
            Some(fault::points::ENGINE_FLUSH),
            Some(fault::points::WAL_APPEND_PRE_CRC),
        ] {
            // Open before arming: PMEM allocation faults would otherwise
            // fire during open itself, which dedicated tests already cover.
            let db = MioDb::open(busy())?;
            if let Some(p) = point {
                fault::arm(
                    p,
                    FaultPolicy::FailProbability {
                        num: 1,
                        den: 64,
                        seed: seed.wrapping_mul(0x9E37_79B9) + 1,
                    },
                );
            }
            let spec = StressSpec {
                threads: 4,
                ops_per_thread: if quick { 150 } else { 300 },
                ..StressSpec::quick(seed)
            };
            let history = run_stress(&db, &spec);
            if let Some(p) = point {
                fault::disarm(p);
            }
            let ambiguous = history
                .ops
                .iter()
                .filter(|o| o.observed == miodb_check::Observed::Maybe)
                .count();
            let verdict = check_history(&history);
            let ok = matches!(verdict, Verdict::Linearizable(_));
            print_row(
                &[
                    point.unwrap_or("-").to_string(),
                    seed.to_string(),
                    history.len().to_string(),
                    ambiguous.to_string(),
                    if ok {
                        "linearizable".to_string()
                    } else {
                        "VIOLATION".to_string()
                    },
                ],
                &widths,
            );
            db.close()?;
            if !ok {
                return Err(miodb_common::Error::Corruption(format!(
                    "non-linearizable history at seed {seed}: {verdict}"
                )));
            }
        }
    }

    // Phase 2: durable-prefix crash rounds — snapshot races live writers,
    // recovery is verified against the acknowledgement oracle.
    println!("\n   crash rounds (snapshot mid-write-storm, recover, verify oracle):");
    let cwidths = [8usize, 10, 14];
    print_header(&["seed", "acked", "outcome"], &cwidths);
    let path = std::env::temp_dir().join(format!("miodb-repro-check-{}", std::process::id()));
    for seed in 0..seeds {
        let opts = busy();
        let db = Arc::new(MioDb::open(opts.clone())?);
        let oracle = DurableOracle::new();
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2u32)
            .map(|t| {
                let db = Arc::clone(&db);
                let oracle = oracle.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        // One writer per slot: the oracle models each key
                        // as a single-writer register.
                        let k = format!("slot{t:02}-{:04}", n % 64);
                        let v = format!("v{t:02}-{n:08}");
                        oracle.put(&*db, k.as_bytes(), v.as_bytes()).ok();
                        n += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(2 + seed % 13));
        let crash_ns = oracle.now_ns();
        db.snapshot(&path)?;
        stop.store(true, Ordering::Release);
        for w in writers {
            w.join().expect("writer panicked");
        }
        db.close()?;
        drop(db);
        let acked = oracle.tracked_keys();
        let pool = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new()))?;
        let db = MioDb::recover(pool, opts)?;
        let outcome = oracle.verify_engine(&db, crash_ns);
        db.close()?;
        print_row(
            &[
                seed.to_string(),
                acked.to_string(),
                if outcome.is_ok() {
                    "durable".to_string()
                } else {
                    "VIOLATION".to_string()
                },
            ],
            &cwidths,
        );
        if let Err(v) = outcome {
            std::fs::remove_file(&path).ok();
            return Err(miodb_common::Error::Corruption(format!(
                "durable-prefix violation at seed {seed}: {v}"
            )));
        }
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}

// ---------------------------------------------------------------------------
// Scaling — concurrent-writer sweep for the group-commit write pipeline.
// ---------------------------------------------------------------------------
fn scaling(dataset: u64, quick: bool) -> Result<()> {
    println!("\n== Scaling: fillrandom throughput vs writer threads (1 KiB values) ==");
    println!("   group-commit pipeline: one WAL append per group, concurrent MemTable inserts;");
    println!("   expect MioDB >=2x at 4 threads vs 1 and ~parity single-thread vs MioDB-single.");
    let value_len = 1024usize;
    let mut scale = Scale::new(
        if quick {
            dataset.min(12 << 20)
        } else {
            dataset
        },
        value_len,
    );
    // The sweep measures the write path, not rotation: keep MemTables
    // large enough that flush handoffs are rare at every thread count.
    scale.memtable_bytes = scale.memtable_bytes.max(2 << 20);
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < *threads.iter().max().unwrap() {
        println!("   NOTE: host has {cores} core(s) — writer threads cannot overlap, so the sweep");
        println!("   measures pipeline overhead, not parallel speedup; expect flat scaling.");
    }
    let widths = [14usize, 8, 12, 12, 12, 12];
    print_header(
        &["engine", "threads", "Kops", "MB/s", "speedup", "avg group"],
        &widths,
    );
    let mut json_rows: Vec<String> = Vec::new();
    for (label, kind, pipeline) in [
        ("MioDB", Some(EngineKind::MioDb), true),
        ("MioDB-single", None, false),
        ("MatrixKV", Some(EngineKind::MatrixKv), true),
        ("NoveLSM", Some(EngineKind::NoveLsm), true),
    ] {
        let mut base_kops = 0.0f64;
        for &t in threads {
            let engine: Box<dyn KvEngine> = match kind {
                Some(EngineKind::MioDb) | None => {
                    miodb_bench::build_miodb_pipeline(&scale, pipeline)?
                }
                Some(k) => build_engine(k, Mode::InMemory, &scale)?,
            };
            // Same seed at every thread count so the sweep compares the
            // identical keyset and insertion order.
            let r = run_fill_concurrent(engine.as_ref(), scale.keys(), value_len, t, 42)?;
            let kops = r.kops();
            if t == threads[0] {
                base_kops = kops;
            }
            let group_mean = engine
                .telemetry()
                .map(|tel| tel.write_group_size.snapshot().mean())
                .filter(|m| *m > 0.0);
            print_row(
                &[
                    label.to_string(),
                    t.to_string(),
                    format!("{kops:.1}"),
                    format!("{:.1}", r.mib_per_sec(value_len)),
                    format!("{:.2}x", kops / base_kops.max(1e-9)),
                    group_mean.map_or("-".to_string(), |m| format!("{m:.1}")),
                ],
                &widths,
            );
            json_rows.push(format!(
                "{{\"engine\":\"{label}\",\"threads\":{t},\"kops\":{kops:.3},\"mib_per_sec\":{:.3},\"elapsed_ns\":{},\"mean_group_size\":{:.3}}}",
                r.mib_per_sec(value_len),
                r.elapsed_ns,
                group_mean.unwrap_or(0.0),
            ));
            engine.wait_idle()?;
        }
    }
    let json = format!(
        "{{\"experiment\":\"scaling\",\"value_len\":{value_len},\"dataset_bytes\":{},\"keys\":{},\"host_cores\":{cores},\"results\":[\n  {}\n]}}\n",
        scale.dataset_bytes,
        scale.keys(),
        json_rows.join(",\n  "),
    );
    std::fs::write("BENCH_scaling.json", json).map_err(miodb_common::Error::Io)?;
    eprintln!("[scaling results written to BENCH_scaling.json]");
    Ok(())
}

// ---------------------------------------------------------------------------
// Trace — end-to-end critical-path attribution for YCSB-A over the wire.
// ---------------------------------------------------------------------------

/// One trace reduced to its critical-path buckets (all nanoseconds).
struct TraceCost {
    total: u64,
    buckets: Vec<(&'static str, u64)>,
}

/// Self-time of every span (duration minus the durations of its direct
/// children), keyed by span id, for one trace's spans.
fn self_times(spans: &[&miodb_common::SpanRecord]) -> std::collections::HashMap<u64, u64> {
    let mut child_ns: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for s in spans {
        if s.parent_id != 0 {
            *child_ns.entry(s.parent_id).or_default() += s.dur_ns();
        }
    }
    spans
        .iter()
        .map(|s| {
            let children = child_ns.get(&s.span_id).copied().unwrap_or(0);
            (s.span_id, s.dur_ns().saturating_sub(children))
        })
        .collect()
}

/// Attribution buckets reported by the `trace` experiment; every
/// critical-path nanosecond lands in exactly one.
const TRACE_BUCKETS: &[&str] = &[
    "network+queue",
    "commit-wait",
    "wal-append",
    "memtable-insert",
    "rotation-stall",
    "memtable-probe",
    "level-probe",
    "repo-probe",
    "router",
    "decode",
    "server-other",
    "unattributed",
];

/// Reduces one trace's spans to named buckets. The client-observed round
/// trip (`client_request`) is the total; server-side wall time is carved
/// out of it span by span, and whatever the server tree does not explain
/// is the wire + connection-queue share.
fn attribute_trace(spans: &[&miodb_common::SpanRecord]) -> Option<TraceCost> {
    use miodb_common::SpanKind;
    let root = spans.iter().find(|s| s.kind == SpanKind::ClientRequest)?;
    let srv = spans.iter().find(|s| s.kind == SpanKind::SrvRequest)?;
    let total = root.dur_ns();
    let srv_total = srv.dur_ns().min(total);
    let selfs = self_times(spans);
    let mut buckets: Vec<(&'static str, u64)> = TRACE_BUCKETS.iter().map(|b| (*b, 0u64)).collect();
    let mut add = |name: &'static str, ns: u64| {
        if let Some(b) = buckets.iter_mut().find(|(n, _)| *n == name) {
            b.1 += ns;
        }
    };
    let mut server_named = 0u64;
    for s in spans {
        let own = selfs.get(&s.span_id).copied().unwrap_or(0);
        let bucket = match s.kind {
            SpanKind::CommitWait => Some("commit-wait"),
            SpanKind::WalAppend => Some("wal-append"),
            SpanKind::MemtableInsert => Some("memtable-insert"),
            SpanKind::RotationStall => Some("rotation-stall"),
            SpanKind::MemtableProbe => Some("memtable-probe"),
            SpanKind::LevelProbe => Some("level-probe"),
            SpanKind::RepoProbe => Some("repo-probe"),
            SpanKind::RouterFanout | SpanKind::RouterMerge => Some("router"),
            SpanKind::SrvDecode => Some("decode"),
            SpanKind::SrvRequest | SpanKind::SrvExecute => Some("server-other"),
            _ => None,
        };
        if let Some(b) = bucket {
            add(b, own);
            server_named += own;
        }
    }
    // The server tree is contiguous wall time inside the round trip, so
    // anything the round trip spends outside it is wire + queueing; any
    // server time the named spans miss is already in "server-other".
    add("network+queue", total.saturating_sub(srv_total));
    // Server wall time no span's self-time explains (should be ~0; a
    // non-zero share means an uninstrumented engine path).
    add(
        "unattributed",
        srv_total.saturating_sub(server_named.min(srv_total)),
    );
    Some(TraceCost { total, buckets })
}

/// Averages a cohort's buckets and prints one table column pair.
fn cohort_summary(cohort: &[&TraceCost]) -> (u64, Vec<(&'static str, u64)>) {
    let n = cohort.len().max(1) as u64;
    let total: u64 = cohort.iter().map(|c| c.total).sum::<u64>() / n;
    let mut buckets: Vec<(&'static str, u64)> = TRACE_BUCKETS.iter().map(|b| (*b, 0u64)).collect();
    for c in cohort {
        for (name, ns) in &c.buckets {
            if let Some(b) = buckets.iter_mut().find(|(n2, _)| n2 == name) {
                b.1 += ns / n;
            }
        }
    }
    (total, buckets)
}

fn trace_experiment(quick: bool) -> Result<()> {
    use miodb_client::{ClientOptions, KvClient};
    use miodb_common::trace;
    use miodb_core::MioOptions;
    use miodb_pmem::DeviceModel;
    use miodb_server::{KvServer, ServerOptions, ShardRouter};
    use std::sync::Arc;
    use std::time::Duration;

    println!("\n== Trace: YCSB-A critical-path attribution, p50 vs p99.9 ==");
    println!("   in-process server + client over TCP; every sampled request carries its");
    println!("   trace id in the frame header, so client, server and engine spans join");
    println!("   into one tree and the round trip decomposes into named buckets.");

    let records: u64 = if quick { 5_000 } else { 20_000 };
    let seconds = if quick { 2.0 } else { 5.0 };
    let connections = 4usize;
    let value_len = 256usize;

    let mut opts = MioOptions {
        memtable_bytes: 1 << 20,
        nvm_pool_bytes: 1 << 30,
        dram_pool_bytes: 64 << 20,
        name: "MioDB-trace".to_string(),
        ..MioOptions::default()
    };
    opts.nvm_device = DeviceModel::nvm_unthrottled();
    let router = Arc::new(ShardRouter::open_miodb(&opts, 4)?);
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn KvEngine>,
        ServerOptions::default(),
    )?;
    let addr = server.local_addr();
    let copts = || ClientOptions {
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        ..ClientOptions::default()
    };

    // Fill (untraced), then trace the measured mix.
    {
        let mut c = KvClient::connect_with(addr, copts())?;
        for k in 0..records {
            let key = format!("user{k:016}").into_bytes();
            c.put(&key, &vec![b'x'; value_len])?;
        }
        c.close()?;
    }
    trace::enable(1 << 18, 4, false);

    let deadline = std::time::Instant::now() + Duration::from_secs_f64(seconds);
    let workers: Vec<std::thread::JoinHandle<Result<u64>>> = (0..connections)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = KvClient::connect_with(addr, copts())?;
                let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (w as u64 + 1);
                let mut next = move || {
                    rng ^= rng >> 12;
                    rng ^= rng << 25;
                    rng ^= rng >> 27;
                    rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
                };
                let mut ops = 0u64;
                while std::time::Instant::now() < deadline {
                    let key = format!("user{:016}", next() % records).into_bytes();
                    if next() % 2 == 0 {
                        c.get(&key)?;
                    } else {
                        c.put(&key, &vec![b'y'; value_len])?;
                    }
                    ops += 1;
                }
                c.close()?;
                Ok(ops)
            })
        })
        .collect();
    let mut total_ops = 0u64;
    for w in workers {
        total_ops += w.join().expect("worker panicked")?;
    }

    let spans = trace::drain();
    let dropped = trace::dropped_spans();
    trace::disable();
    server.shutdown();
    router.close()?;

    // Group by trace and attribute.
    let mut by_trace: std::collections::HashMap<u64, Vec<&miodb_common::SpanRecord>> =
        std::collections::HashMap::new();
    for s in &spans {
        if s.trace_id != 0 {
            by_trace.entry(s.trace_id).or_default().push(s);
        }
    }
    let mut costs: Vec<TraceCost> = by_trace
        .values()
        .filter_map(|spans| attribute_trace(spans))
        .collect();
    if costs.is_empty() {
        return Err(miodb_common::Error::Corruption(
            "no complete traces captured".to_string(),
        ));
    }
    costs.sort_by_key(|c| c.total);
    let n = costs.len();
    let p50_cohort: Vec<&TraceCost> = {
        let mid = n / 2;
        let half = (n / 40).max(1);
        costs[mid.saturating_sub(half)..(mid + half).min(n)]
            .iter()
            .collect()
    };
    let p999_cohort: Vec<&TraceCost> = {
        let k = (n / 1000).max(1);
        costs[n - k..].iter().collect()
    };
    let (p50_total, p50_buckets) = cohort_summary(&p50_cohort);
    let (p999_total, p999_buckets) = cohort_summary(&p999_cohort);

    println!(
        "\n   {total_ops} ops over {connections} connections, {} sampled traces ({dropped} spans dropped)",
        n
    );
    let widths = [16usize, 12, 8, 12, 8];
    print_header(
        &["bucket", "p50(us)", "p50 %", "p99.9(us)", "p99.9 %"],
        &widths,
    );
    let mut named50 = 0u64;
    let mut named999 = 0u64;
    for (i, (name, ns50)) in p50_buckets.iter().enumerate() {
        let ns999 = p999_buckets[i].1;
        if *name != "unattributed" {
            named50 += ns50;
            named999 += ns999;
        }
        if *ns50 == 0 && ns999 == 0 {
            continue;
        }
        print_row(
            &[
                name.to_string(),
                format!("{:.1}", *ns50 as f64 / 1e3),
                format!("{:.1}", 100.0 * *ns50 as f64 / p50_total.max(1) as f64),
                format!("{:.1}", ns999 as f64 / 1e3),
                format!("{:.1}", 100.0 * ns999 as f64 / p999_total.max(1) as f64),
            ],
            &widths,
        );
    }
    let pct50 = 100.0 * named50 as f64 / p50_total.max(1) as f64;
    let pct999 = 100.0 * named999 as f64 / p999_total.max(1) as f64;
    print_row(
        &[
            "total".to_string(),
            format!("{:.1}", p50_total as f64 / 1e3),
            format!("{pct50:.1}"),
            format!("{:.1}", p999_total as f64 / 1e3),
            format!("{pct999:.1}"),
        ],
        &widths,
    );
    println!(
        "   attribution covers {pct50:.1}% of p50 and {pct999:.1}% of p99.9 wall time \
         (target >=95%)"
    );

    std::fs::write("BENCH_trace.json", trace::to_chrome_json(&spans))
        .map_err(miodb_common::Error::Io)?;
    let bucket_json = |buckets: &[(&'static str, u64)]| -> String {
        buckets
            .iter()
            .map(|(name, ns)| format!("\"{name}\":{ns}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let json = format!(
        "{{\"experiment\":\"trace\",\"ops\":{total_ops},\"traces\":{n},\"dropped_spans\":{dropped},\"p50\":{{\"total_ns\":{p50_total},\"named_pct\":{pct50:.2},{}}},\"p999\":{{\"total_ns\":{p999_total},\"named_pct\":{pct999:.2},{}}}}}\n",
        bucket_json(&p50_buckets),
        bucket_json(&p999_buckets),
    );
    std::fs::write("BENCH_trace_attrib.json", json).map_err(miodb_common::Error::Io)?;
    eprintln!("[trace written to BENCH_trace.json + BENCH_trace_attrib.json]");
    if pct999 < 95.0 {
        eprintln!("trace: p99.9 attribution below 95% target");
    }
    Ok(())
}

/// `repro repl`: WAL-shipping replication cost. The same sequential
/// writer loads a leader+follower pair twice — once with fire-and-forget
/// `async` acks, once with `semi-sync` acks where every PUT's commit-wait
/// blocks until the follower has applied it — and reports throughput plus
/// the publish→ack lag distribution the leader measured per group.
fn repl_experiment(quick: bool) -> Result<()> {
    use miodb_client::KvClient;
    use miodb_common::ReplicationSink;
    use miodb_core::{MioDb, MioOptions};
    use miodb_pmem::DeviceModel;
    use miodb_repl::{
        engine_snapshot_bytes, AckLevel, Follower, FollowerOptions, Replicator, ReplicatorOptions,
    };
    use miodb_server::{KvServer, ReplConfig, ServerOptions};
    use std::sync::Arc;
    use std::time::Duration;

    println!("\n== Replication: async vs semi-sync vs quorum ack levels, follower lag ==");
    println!("   one leader + one follower in-process over TCP; shipped bytes are the");
    println!("   exact framed WAL group records, so the follower replays what the");
    println!("   leader persisted. Lag is publish->ack per committed group.");

    let records: u64 = if quick { 2_000 } else { 10_000 };
    let value_len = 256usize;
    let opts = |name: String| MioOptions {
        memtable_bytes: 1 << 20,
        nvm_pool_bytes: 1 << 30,
        dram_pool_bytes: 64 << 20,
        nvm_device: DeviceModel::nvm_unthrottled(),
        name,
        ..MioOptions::default()
    };

    let widths = [12usize, 8, 10, 12, 12, 12];
    print_header(
        &["ack", "puts", "Kops", "lag p50(us)", "lag p99(us)", "acked"],
        &widths,
    );

    let mut rows: Vec<String> = Vec::new();
    for ack in [AckLevel::Async, AckLevel::SemiSync, AckLevel::Quorum] {
        let label = ack.label();
        let ldb = Arc::new(MioDb::open(opts(format!("MioDB-repl-{label}-L")))?);
        let replicator = Replicator::new(ReplicatorOptions {
            ack_level: ack,
            semi_sync_timeout: Duration::from_secs(10),
            retain_bytes: 256 << 20,
            // Leader + one follower: quorum needs the follower's ack.
            group_size: 2,
        });
        ldb.set_commit_sink(Some(Arc::clone(&replicator) as Arc<dyn ReplicationSink>));
        let snap = Arc::clone(&ldb);
        let server = KvServer::start_replicated(
            "127.0.0.1:0",
            Arc::clone(&ldb) as Arc<dyn KvEngine>,
            ServerOptions::default(),
            ReplConfig::new(
                Some(Arc::clone(&replicator)),
                Some(Box::new(move || engine_snapshot_bytes(&snap))),
                Arc::new(miodb_common::RoleState::new_leader(1)),
                "",
            ),
        )?;
        let fdb = Arc::new(MioDb::open(opts(format!("MioDB-repl-{label}-F")))?);
        let follower = Follower::start(
            Arc::clone(&fdb),
            &server.local_addr().to_string(),
            FollowerOptions::default(),
        )?;
        let deadline = Instant::now() + Duration::from_secs(5);
        while replicator.subscriber_count() == 0 {
            if Instant::now() >= deadline {
                return Err(miodb_common::Error::Background(
                    "follower never subscribed".to_string(),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        // Concurrent writers: group commit batches them on the leader and
        // the semi-sync ack wait is paid per group, not per put.
        let writers = 4u64;
        let addr = server.local_addr();
        let started = Instant::now();
        std::thread::scope(|s| -> Result<()> {
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    s.spawn(move || -> Result<()> {
                        let mut c = KvClient::connect(addr)?;
                        let (lo, hi) = (records * w / writers, records * (w + 1) / writers);
                        for k in lo..hi {
                            c.put(format!("user{k:016}").as_bytes(), &vec![b'x'; value_len])?;
                        }
                        c.close()
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("writer panicked")?;
            }
            Ok(())
        })?;
        let elapsed = started.elapsed();

        // Async writers return before the follower applies; wait for
        // convergence so the lag histogram covers every group.
        let target = ldb.last_sequence();
        let deadline = Instant::now() + Duration::from_secs(30);
        while replicator.max_acked() < target {
            if Instant::now() >= deadline {
                return Err(miodb_common::Error::Background(format!(
                    "follower never converged ({} < {target})",
                    replicator.max_acked()
                )));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let lag = replicator.lag_histogram();
        let kops = records as f64 / elapsed.as_secs_f64().max(1e-9) / 1e3;
        let (p50, p99) = (
            lag.percentile(50.0) as f64 / 1e3,
            lag.percentile(99.0) as f64 / 1e3,
        );
        print_row(
            &[
                label.to_string(),
                format!("{records}"),
                format!("{kops:.1}"),
                format!("{p50:.1}"),
                format!("{p99:.1}"),
                format!("{}", replicator.max_acked()),
            ],
            &widths,
        );
        rows.push(format!(
            "{{\"ack\":\"{label}\",\"puts\":{records},\"elapsed_ns\":{},\"kops\":{kops:.2},\"lag_p50_us\":{p50:.1},\"lag_p99_us\":{p99:.1},\"max_acked\":{}}}",
            elapsed.as_nanos(),
            replicator.max_acked(),
        ));

        follower.stop();
        server.shutdown();
        ldb.set_commit_sink(None);
        fdb.close()?;
        ldb.close()?;
    }

    let json = format!(
        "{{\"experiment\":\"repl\",\"value_len\":{value_len},\"modes\":[\n  {}\n]}}\n",
        rows.join(",\n  "),
    );
    std::fs::write("BENCH_repl.json", json).map_err(miodb_common::Error::Io)?;
    eprintln!("[repl results written to BENCH_repl.json]");
    Ok(())
}
