//! Closed-loop network benchmark for the sharded service layer.
//!
//! ```text
//! netbench [--shards N] [--connections N] [--seconds F] [--records N]
//!          [--value-len N] [--pipeline-depth N] [--throttled]
//!          [--replicate async|semi-sync]
//! ```
//!
//! Starts an in-process [`KvServer`] over a [`ShardRouter`] of MioDB
//! instances on an ephemeral localhost port, then drives it with N
//! closed-loop client connections: a fill phase loading `--records` keys,
//! followed by `--seconds` of a YCSB-A-style 50/50 read/update mix over
//! uniformly random keys. Each connection keeps `--pipeline-depth`
//! requests in flight, which is where wire throughput comes from.
//!
//! `--replicate` switches to replication mode: a single-shard leader with
//! a WAL-shipping [`Replicator`] plus an in-process follower applying the
//! stream, at the chosen ack level. The summary and JSON gain the
//! follower's publish→ack lag percentiles and final acked offset.
//!
//! Prints a summary table and writes `BENCH_server.json` with throughput
//! and client-observed p50/p99/p99.9 latency per opcode and phase. Exits
//! nonzero if either phase completes zero operations, so CI can use a
//! short run as a smoke test.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb_bench::{print_header, print_row};
use miodb_client::{ClientCounters, ClientOptions, KvClient};
use miodb_common::trace;
use miodb_common::{Histogram, Opcode, Request, Response, Result};
use miodb_core::{MioDb, MioOptions};
use miodb_pmem::DeviceModel;
use miodb_repl::{
    engine_snapshot_bytes, AckLevel, Follower, FollowerOptions, Replicator, ReplicatorOptions,
};
use miodb_server::{KvServer, ReplConfig, ServerOptions, ShardRouter};

#[derive(Clone)]
struct Config {
    shards: usize,
    connections: usize,
    seconds: f64,
    records: u64,
    value_len: usize,
    pipeline_depth: usize,
    throttled: bool,
    seed: u64,
    trace: bool,
    replicate: Option<AckLevel>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            shards: 4,
            connections: 4,
            seconds: 10.0,
            records: 20_000,
            value_len: 256,
            pipeline_depth: 32,
            throttled: false,
            seed: 0x9E37_79B9_7F4A_7C15,
            trace: false,
            replicate: None,
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("bad or missing value for {flag}");
        std::process::exit(2)
    })
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--shards" => {
                i += 1;
                cfg.shards = parse_num(flag, args.get(i));
            }
            "--connections" => {
                i += 1;
                cfg.connections = parse_num(flag, args.get(i));
            }
            "--seconds" => {
                i += 1;
                cfg.seconds = parse_num(flag, args.get(i));
            }
            "--records" => {
                i += 1;
                cfg.records = parse_num(flag, args.get(i));
            }
            "--value-len" => {
                i += 1;
                cfg.value_len = parse_num(flag, args.get(i));
            }
            "--pipeline-depth" => {
                i += 1;
                cfg.pipeline_depth = parse_num(flag, args.get(i));
            }
            "--throttled" => cfg.throttled = true,
            "--trace" => cfg.trace = true,
            "--replicate" => {
                i += 1;
                cfg.replicate = match args.get(i).map(String::as_str) {
                    Some("async") => Some(AckLevel::Async),
                    Some("semi-sync") => Some(AckLevel::SemiSync),
                    Some("quorum") => Some(AckLevel::Quorum),
                    other => {
                        eprintln!(
                            "bad value for --replicate: {} (want async|semi-sync|quorum)",
                            other.unwrap_or("<missing>")
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                cfg.seed = parse_num(flag, args.get(i));
            }
            other => {
                eprintln!(
                    "unknown flag: {other}\nusage: netbench [--shards N] [--connections N] \
                     [--seconds F] [--records N] [--value-len N] [--pipeline-depth N] \
                     [--throttled] [--trace] [--seed N] [--replicate async|semi-sync]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cfg.shards = cfg.shards.max(1);
    cfg.connections = cfg.connections.max(1);
    cfg.records = cfg.records.max(1);
    cfg.pipeline_depth = cfg.pipeline_depth.max(1);
    cfg
}

fn main() {
    let cfg = parse_args();
    if let Err(e) = run(&cfg) {
        eprintln!("netbench failed: {e}");
        std::process::exit(1);
    }
}

/// Client socket timeouts for every benchmark connection: a wedged server
/// surfaces as a timeout error instead of hanging the run.
fn client_options() -> ClientOptions {
    ClientOptions {
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        ..ClientOptions::default()
    }
}

/// One phase's client-side measurements for a single connection.
struct ConnResult {
    ops: u64,
    get_lat: Histogram,
    put_lat: Histogram,
    counters: ClientCounters,
}

impl ConnResult {
    fn new() -> ConnResult {
        ConnResult {
            ops: 0,
            get_lat: Histogram::new(),
            put_lat: Histogram::new(),
            counters: ClientCounters::default(),
        }
    }
}

/// Tiny deterministic PRNG (xorshift64*) so the benchmark needs no
/// external randomness source and runs are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn key_bytes(k: u64) -> Vec<u8> {
    format!("user{k:016}").into_bytes()
}

/// Drives one connection closed-loop: keeps `depth` requests in flight,
/// records the wall-clock send→receive latency of every response, and
/// stops once `make_req` returns `None` and all in-flight responses have
/// drained.
fn drive(
    addr: SocketAddr,
    depth: usize,
    mut make_req: impl FnMut() -> Option<Request>,
    result: &mut ConnResult,
) -> Result<()> {
    let mut client = KvClient::connect_with(addr, client_options())?;
    let mut inflight: VecDeque<(Opcode, Instant)> = VecDeque::with_capacity(depth);
    loop {
        while inflight.len() < depth {
            match make_req() {
                Some(req) => {
                    let op = req.opcode();
                    client.send(&req)?;
                    inflight.push_back((op, Instant::now()));
                }
                None => break,
            }
        }
        if inflight.is_empty() {
            break;
        }
        client.flush()?;
        // Drain one response (blocking) plus everything else already
        // buffered, so the next refill sends a batch — not one frame.
        loop {
            let (_, resp) = client.recv()?;
            let (op, sent) = inflight.pop_front().expect("response matches a send");
            let ns = sent.elapsed().as_nanos() as u64;
            match op {
                Opcode::Get => result.get_lat.record(ns),
                _ => result.put_lat.record(ns),
            }
            if let Response::Err(msg) = resp {
                return Err(miodb_common::Error::Background(format!(
                    "server error: {msg}"
                )));
            }
            result.ops += 1;
            if inflight.is_empty() || client.buffered() == 0 {
                break;
            }
        }
    }
    result.counters = client.counters();
    client.close()
}

struct PhaseSummary {
    name: &'static str,
    ops: u64,
    elapsed: Duration,
    get_lat: Histogram,
    put_lat: Histogram,
    counters: ClientCounters,
}

impl PhaseSummary {
    fn kops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9) / 1e3
    }
}

/// Runs `per_conn` closures on one thread per connection and aggregates.
fn run_phase(
    name: &'static str,
    addr: SocketAddr,
    cfg: &Config,
    per_conn: impl Fn(usize) -> Box<dyn FnMut() -> Option<Request> + Send>,
) -> Result<PhaseSummary> {
    let started = Instant::now();
    let results: Vec<Result<ConnResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|c| {
                let mut make_req = per_conn(c);
                let depth = cfg.pipeline_depth;
                s.spawn(move || {
                    let mut r = ConnResult::new();
                    drive(addr, depth, &mut make_req, &mut r)?;
                    Ok(r)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut ops = 0;
    let mut get_lat = Histogram::new();
    let mut put_lat = Histogram::new();
    let mut counters = ClientCounters::default();
    for r in results {
        let r = r?;
        ops += r.ops;
        get_lat.merge(&r.get_lat);
        put_lat.merge(&r.put_lat);
        counters.retries += r.counters.retries;
        counters.timeouts += r.counters.timeouts;
        counters.reconnects += r.counters.reconnects;
        counters.ambiguous += r.counters.ambiguous;
    }
    Ok(PhaseSummary {
        name,
        ops,
        elapsed,
        get_lat,
        put_lat,
        counters,
    })
}

fn lat_json(label: &str, h: &Histogram) -> String {
    format!(
        "\"{label}\":{{\"count\":{},\"mean_us\":{:.2},\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1}}}",
        h.count(),
        h.mean() / 1e3,
        h.percentile(50.0) as f64 / 1e3,
        h.percentile(99.0) as f64 / 1e3,
        h.percentile(99.9) as f64 / 1e3,
    )
}

fn print_phase(p: &PhaseSummary) {
    let widths = [8usize, 10, 10, 8, 10, 10, 10];
    for (op, h) in [("put", &p.put_lat), ("get", &p.get_lat)] {
        if h.count() == 0 {
            continue;
        }
        print_row(
            &[
                p.name.to_string(),
                op.to_string(),
                format!("{}", h.count()),
                format!("{:.1}", p.kops()),
                format!("{:.1}", h.percentile(50.0) as f64 / 1e3),
                format!("{:.1}", h.percentile(99.0) as f64 / 1e3),
                format!("{:.1}", h.percentile(99.9) as f64 / 1e3),
            ],
            &widths,
        );
    }
}

fn ack_label(cfg: &Config) -> &'static str {
    match cfg.replicate {
        Some(ack) => ack.label(),
        None => "none",
    }
}

/// Engine-side state behind the benchmark server: the plain sharded
/// router, or a replicated leader with an in-process follower applying
/// the shipped WAL stream.
enum Backend {
    Sharded(Arc<ShardRouter<MioDb>>),
    Replicated {
        leader: Arc<MioDb>,
        replicator: Arc<Replicator>,
        follower: Follower,
        follower_db: Arc<MioDb>,
    },
}

fn run(cfg: &Config) -> Result<()> {
    // Server side: a shard router over `--shards` MioDB instances. The
    // device model is unthrottled by default — netbench measures the
    // service layer; `--throttled` adds the NVM timing model back.
    let mut opts = MioOptions {
        memtable_bytes: 1 << 20,
        nvm_pool_bytes: 1 << 30,
        dram_pool_bytes: 64 << 20,
        name: "MioDB-net".to_string(),
        ..MioOptions::default()
    };
    if !cfg.throttled {
        opts.nvm_device = DeviceModel::nvm_unthrottled();
    }
    let (server, backend) = if let Some(ack) = cfg.replicate {
        // Replication mode: one leader engine (the commit sink taps its
        // group-commit pipeline) plus a follower replica.
        let leader = Arc::new(MioDb::open(opts.clone())?);
        let replicator = Replicator::new(ReplicatorOptions {
            ack_level: ack,
            semi_sync_timeout: Duration::from_secs(10),
            retain_bytes: 256 << 20,
            group_size: 2,
        });
        leader.set_commit_sink(Some(
            Arc::clone(&replicator) as Arc<dyn miodb_common::ReplicationSink>
        ));
        let snap = Arc::clone(&leader);
        let server = KvServer::start_replicated(
            "127.0.0.1:0",
            Arc::clone(&leader) as Arc<dyn miodb_common::KvEngine>,
            ServerOptions::default(),
            ReplConfig::new(
                Some(Arc::clone(&replicator)),
                Some(Box::new(move || engine_snapshot_bytes(&snap))),
                Arc::new(miodb_common::RoleState::new_leader(1)),
                "",
            ),
        )?;
        let follower_db = Arc::new(MioDb::open(MioOptions {
            name: "MioDB-net-follower".to_string(),
            ..opts.clone()
        })?);
        let follower = Follower::start(
            Arc::clone(&follower_db),
            &server.local_addr().to_string(),
            FollowerOptions::default(),
        )?;
        let deadline = Instant::now() + Duration::from_secs(5);
        while replicator.subscriber_count() == 0 {
            if Instant::now() >= deadline {
                return Err(miodb_common::Error::Background(
                    "follower never subscribed".to_string(),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        (
            server,
            Backend::Replicated {
                leader,
                replicator,
                follower,
                follower_db,
            },
        )
    } else {
        let router = Arc::new(ShardRouter::open_miodb(&opts, cfg.shards)?);
        let server = KvServer::start(
            "127.0.0.1:0",
            Arc::clone(&router) as Arc<dyn miodb_common::KvEngine>,
            ServerOptions::default(),
        )?;
        (server, Backend::Sharded(router))
    };
    let addr = server.local_addr();
    match &backend {
        Backend::Sharded(_) => eprintln!(
            "[netbench] serving {} shards on {addr}; {} connections, depth {}, {} records, {}s run",
            cfg.shards, cfg.connections, cfg.pipeline_depth, cfg.records, cfg.seconds
        ),
        Backend::Replicated { .. } => eprintln!(
            "[netbench] replicated leader on {addr} ({} acks) + follower; {} connections, \
             depth {}, {} records, {}s run",
            ack_label(cfg),
            cfg.connections,
            cfg.pipeline_depth,
            cfg.records,
            cfg.seconds
        ),
    }

    // Phase 1: fill. Connections split the keyspace into contiguous
    // stripes so every record is written exactly once.
    let records = cfg.records;
    let connections = cfg.connections as u64;
    let value_len = cfg.value_len;
    let fill = run_phase("fill", addr, cfg, |c| {
        let lo = records * c as u64 / connections;
        let hi = records * (c as u64 + 1) / connections;
        let mut next = lo;
        Box::new(move || {
            if next >= hi {
                return None;
            }
            let k = next;
            next += 1;
            Some(Request::Put {
                key: key_bytes(k),
                value: vec![b'x'; value_len],
            })
        })
    })?;

    // Tracing covers the measured phase only: the fill phase would
    // overflow the span ring without telling us anything about the mix.
    // Server and clients share one process, so one global tracer captures
    // complete client→server→engine trees.
    if cfg.trace {
        trace::enable(1 << 16, 16, false);
    }

    // Phase 2: YCSB-A-style 50/50 read/update over uniform random keys,
    // bounded by wall-clock time.
    let deadline = Instant::now() + Duration::from_secs_f64(cfg.seconds);
    let ycsb = run_phase("ycsb-a", addr, cfg, |c| {
        let mut rng = Rng(cfg.seed ^ (c as u64 + 1));
        Box::new(move || {
            if Instant::now() >= deadline {
                return None;
            }
            let k = rng.next() % records;
            if rng.next().is_multiple_of(2) {
                Some(Request::Get { key: key_bytes(k) })
            } else {
                Some(Request::Put {
                    key: key_bytes(k),
                    value: vec![b'y'; value_len],
                })
            }
        })
    })?;

    if cfg.trace {
        let spans = trace::drain();
        let dropped = trace::dropped_spans();
        trace::disable();
        let traces: std::collections::HashSet<u64> = spans
            .iter()
            .map(|s| s.trace_id)
            .filter(|t| *t != 0)
            .collect();
        let complete = trace::complete_tree_count(&spans);
        std::fs::write("BENCH_trace.json", trace::to_chrome_json(&spans))
            .map_err(miodb_common::Error::Io)?;
        eprintln!(
            "[netbench] trace: {} spans, {} traces, {complete} complete client->engine trees, \
             {dropped} dropped (BENCH_trace.json)",
            spans.len(),
            traces.len(),
        );
    }

    // Server-side view: scrape STATS over the wire like a client would.
    let mut probe = KvClient::connect_with(addr, client_options())?;
    let stats_text = probe.stats()?;
    probe.close()?;
    let served = server.telemetry().requests_total();

    println!(
        "\n== netbench: {} shards, {} connections, depth {} ==",
        cfg.shards, cfg.connections, cfg.pipeline_depth
    );
    let widths = [8usize, 10, 10, 8, 10, 10, 10];
    print_header(
        &[
            "phase",
            "op",
            "count",
            "Kops",
            "p50(us)",
            "p99(us)",
            "p99.9(us)",
        ],
        &widths,
    );
    print_phase(&fill);
    print_phase(&ycsb);
    for line in stats_text
        .lines()
        .filter(|l| l.starts_with("miodb_server_"))
        .take(6)
    {
        eprintln!("  [server] {line}");
    }

    // Replication mode: wait for the follower to converge on everything
    // the leader committed, then report the lag distribution.
    let repl_json = match &backend {
        Backend::Sharded(_) => String::new(),
        Backend::Replicated {
            leader, replicator, ..
        } => {
            let target = leader.last_sequence();
            let deadline = Instant::now() + Duration::from_secs(30);
            while replicator.max_acked() < target {
                if Instant::now() >= deadline {
                    return Err(miodb_common::Error::Background(format!(
                        "follower never converged ({} < {target})",
                        replicator.max_acked()
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let lag = replicator.lag_histogram();
            eprintln!(
                "  [repl] {} acks: {} groups acked, lag p50 {:.1}us p99 {:.1}us",
                ack_label(cfg),
                lag.count(),
                lag.percentile(50.0) as f64 / 1e3,
                lag.percentile(99.0) as f64 / 1e3,
            );
            format!(
                ",\"replication\":{{\"ack\":\"{}\",\"max_acked\":{},\"groups\":{},\"lag_p50_us\":{:.1},\"lag_p99_us\":{:.1}}}",
                ack_label(cfg),
                replicator.max_acked(),
                lag.count(),
                lag.percentile(50.0) as f64 / 1e3,
                lag.percentile(99.0) as f64 / 1e3,
            )
        }
    };

    server.shutdown();
    match backend {
        Backend::Sharded(router) => router.close()?,
        Backend::Replicated {
            leader,
            follower,
            follower_db,
            ..
        } => {
            follower.stop();
            leader.set_commit_sink(None);
            follower_db.close()?;
            leader.close()?;
        }
    }

    let json = format!(
        "{{\"experiment\":\"netbench\",\"shards\":{},\"connections\":{},\"pipeline_depth\":{},\"value_len\":{},\"records\":{},\"throttled\":{},\"requests_served\":{served}{repl_json},\"phases\":[\n  {},\n  {}\n]}}\n",
        cfg.shards,
        cfg.connections,
        cfg.pipeline_depth,
        cfg.value_len,
        cfg.records,
        cfg.throttled,
        phase_json(&fill),
        phase_json(&ycsb),
    );
    std::fs::write("BENCH_server.json", json).map_err(miodb_common::Error::Io)?;
    eprintln!("[netbench results written to BENCH_server.json]");

    if fill.ops == 0 || ycsb.ops == 0 {
        eprintln!("netbench: a phase completed zero operations");
        std::process::exit(1);
    }
    Ok(())
}

fn phase_json(p: &PhaseSummary) -> String {
    format!(
        "{{\"phase\":\"{}\",\"ops\":{},\"elapsed_ns\":{},\"kops\":{:.2},\"timeouts\":{},\"retries\":{},\"reconnects\":{},\"ambiguous\":{},{},{}}}",
        p.name,
        p.ops,
        p.elapsed.as_nanos(),
        p.kops(),
        p.counters.timeouts,
        p.counters.retries,
        p.counters.reconnects,
        p.counters.ambiguous,
        lat_json("put", &p.put_lat),
        lat_json("get", &p.get_lat),
    )
}
