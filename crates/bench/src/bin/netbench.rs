//! Closed-loop network benchmark for the sharded service layer.
//!
//! ```text
//! netbench [--shards N] [--connections N] [--seconds F] [--records N]
//!          [--value-len N] [--pipeline-depth N] [--throttled]
//!          [--replicate async|semi-sync] [--sweep N,N,...]
//!          [--serve] [--addr HOST:PORT] [--max-connections N]
//! ```
//!
//! `--sweep 1000,2500,5000,10000` replaces the measured phase with a
//! connection-count sweep: each step opens that many concurrent
//! connections against the event-driven server (raising `RLIMIT_NOFILE`
//! as needed) and drives them from a fixed pool of driver threads — each
//! thread owns a slice of the connections and cycles send-batch /
//! drain-batch across them, so ten thousand sockets don't need ten
//! thousand benchmark threads. Per-step throughput and p99 land in
//! `BENCH_server.json` under `"sweep"`.
//!
//! By default server and clients share one process (2 fds per
//! connection). When that would overrun `RLIMIT_NOFILE` — a 10k-conn
//! sweep needs >20k fds — split them: `netbench --serve` hosts only the
//! engine and server, prints `ADDR <host:port>` on stdout and runs until
//! stdin EOF; a second `netbench --addr <host:port> --sweep ...` process
//! drives the workload and writes `BENCH_server.json`.
//!
//! Starts an in-process [`KvServer`] over a [`ShardRouter`] of MioDB
//! instances on an ephemeral localhost port, then drives it with N
//! closed-loop client connections: a fill phase loading `--records` keys,
//! followed by `--seconds` of a YCSB-A-style 50/50 read/update mix over
//! uniformly random keys. Each connection keeps `--pipeline-depth`
//! requests in flight, which is where wire throughput comes from.
//!
//! `--replicate` switches to replication mode: a single-shard leader with
//! a WAL-shipping [`Replicator`] plus an in-process follower applying the
//! stream, at the chosen ack level. The summary and JSON gain the
//! follower's publish→ack lag percentiles and final acked offset.
//!
//! Prints a summary table and writes `BENCH_server.json` with throughput
//! and client-observed p50/p99/p99.9 latency per opcode and phase. Exits
//! nonzero if either phase completes zero operations, so CI can use a
//! short run as a smoke test.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb_bench::{print_header, print_row};
use miodb_client::{ClientCounters, ClientOptions, KvClient};
use miodb_common::trace;
use miodb_common::{Histogram, Opcode, Request, Response, Result};
use miodb_core::{MioDb, MioOptions};
use miodb_pmem::DeviceModel;
use miodb_repl::{
    engine_snapshot_bytes, AckLevel, Follower, FollowerOptions, Replicator, ReplicatorOptions,
};
use miodb_server::{KvServer, ReplConfig, ServerOptions, ShardRouter};

#[derive(Clone)]
struct Config {
    shards: usize,
    connections: usize,
    seconds: f64,
    records: u64,
    value_len: usize,
    pipeline_depth: usize,
    throttled: bool,
    seed: u64,
    trace: bool,
    replicate: Option<AckLevel>,
    sweep: Vec<usize>,
    driver_threads: usize,
    serve: bool,
    addr: Option<String>,
    max_connections: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            shards: 4,
            connections: 4,
            seconds: 10.0,
            records: 20_000,
            value_len: 256,
            pipeline_depth: 32,
            throttled: false,
            seed: 0x9E37_79B9_7F4A_7C15,
            trace: false,
            replicate: None,
            sweep: Vec::new(),
            driver_threads: 8,
            serve: false,
            addr: None,
            max_connections: 0,
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("bad or missing value for {flag}");
        std::process::exit(2)
    })
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--shards" => {
                i += 1;
                cfg.shards = parse_num(flag, args.get(i));
            }
            "--connections" => {
                i += 1;
                cfg.connections = parse_num(flag, args.get(i));
            }
            "--seconds" => {
                i += 1;
                cfg.seconds = parse_num(flag, args.get(i));
            }
            "--records" => {
                i += 1;
                cfg.records = parse_num(flag, args.get(i));
            }
            "--value-len" => {
                i += 1;
                cfg.value_len = parse_num(flag, args.get(i));
            }
            "--pipeline-depth" => {
                i += 1;
                cfg.pipeline_depth = parse_num(flag, args.get(i));
            }
            "--throttled" => cfg.throttled = true,
            "--trace" => cfg.trace = true,
            "--replicate" => {
                i += 1;
                cfg.replicate = match args.get(i).map(String::as_str) {
                    Some("async") => Some(AckLevel::Async),
                    Some("semi-sync") => Some(AckLevel::SemiSync),
                    Some("quorum") => Some(AckLevel::Quorum),
                    other => {
                        eprintln!(
                            "bad value for --replicate: {} (want async|semi-sync|quorum)",
                            other.unwrap_or("<missing>")
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                cfg.seed = parse_num(flag, args.get(i));
            }
            "--sweep" => {
                i += 1;
                let list = args.get(i).cloned().unwrap_or_default();
                cfg.sweep = list
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .collect();
                if cfg.sweep.is_empty() {
                    eprintln!("bad value for --sweep: want a comma-separated connection list");
                    std::process::exit(2);
                }
            }
            "--driver-threads" => {
                i += 1;
                cfg.driver_threads = parse_num(flag, args.get(i));
            }
            "--serve" => cfg.serve = true,
            "--addr" => {
                i += 1;
                cfg.addr = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("bad or missing value for --addr");
                    std::process::exit(2)
                }));
            }
            "--max-connections" => {
                i += 1;
                cfg.max_connections = parse_num(flag, args.get(i));
            }
            other => {
                eprintln!(
                    "unknown flag: {other}\nusage: netbench [--shards N] [--connections N] \
                     [--seconds F] [--records N] [--value-len N] [--pipeline-depth N] \
                     [--throttled] [--trace] [--seed N] [--replicate async|semi-sync] \
                     [--sweep N,N,...] [--driver-threads N] [--serve] [--addr HOST:PORT] \
                     [--max-connections N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cfg.shards = cfg.shards.max(1);
    cfg.connections = cfg.connections.max(1);
    cfg.records = cfg.records.max(1);
    cfg.pipeline_depth = cfg.pipeline_depth.max(1);
    cfg.driver_threads = cfg.driver_threads.max(1);
    if !cfg.sweep.is_empty() && cfg.replicate.is_some() {
        eprintln!("--sweep and --replicate are mutually exclusive");
        std::process::exit(2);
    }
    if cfg.addr.is_some() && (cfg.serve || cfg.replicate.is_some()) {
        eprintln!("--addr drives a remote server; it excludes --serve and --replicate");
        std::process::exit(2);
    }
    cfg
}

fn main() {
    let cfg = parse_args();
    if let Err(e) = run(&cfg) {
        eprintln!("netbench failed: {e}");
        std::process::exit(1);
    }
}

/// Client socket timeouts for every benchmark connection: a wedged server
/// surfaces as a timeout error instead of hanging the run.
fn client_options() -> ClientOptions {
    ClientOptions {
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        ..ClientOptions::default()
    }
}

/// One phase's client-side measurements for a single connection.
struct ConnResult {
    ops: u64,
    get_lat: Histogram,
    put_lat: Histogram,
    counters: ClientCounters,
}

impl ConnResult {
    fn new() -> ConnResult {
        ConnResult {
            ops: 0,
            get_lat: Histogram::new(),
            put_lat: Histogram::new(),
            counters: ClientCounters::default(),
        }
    }
}

/// Tiny deterministic PRNG (xorshift64*) so the benchmark needs no
/// external randomness source and runs are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn key_bytes(k: u64) -> Vec<u8> {
    format!("user{k:016}").into_bytes()
}

/// Drives one connection closed-loop: keeps `depth` requests in flight,
/// records the wall-clock send→receive latency of every response, and
/// stops once `make_req` returns `None` and all in-flight responses have
/// drained.
fn drive(
    addr: SocketAddr,
    depth: usize,
    mut make_req: impl FnMut() -> Option<Request>,
    result: &mut ConnResult,
) -> Result<()> {
    let mut client = KvClient::connect_with(addr, client_options())?;
    let mut inflight: VecDeque<(Opcode, Instant)> = VecDeque::with_capacity(depth);
    loop {
        while inflight.len() < depth {
            match make_req() {
                Some(req) => {
                    let op = req.opcode();
                    client.send(&req)?;
                    inflight.push_back((op, Instant::now()));
                }
                None => break,
            }
        }
        if inflight.is_empty() {
            break;
        }
        client.flush()?;
        // Drain one response (blocking) plus everything else already
        // buffered, so the next refill sends a batch — not one frame.
        loop {
            let (_, resp) = client.recv()?;
            let (op, sent) = inflight.pop_front().expect("response matches a send");
            let ns = sent.elapsed().as_nanos() as u64;
            match op {
                Opcode::Get => result.get_lat.record(ns),
                _ => result.put_lat.record(ns),
            }
            if let Response::Err(msg) = resp {
                return Err(miodb_common::Error::Background(format!(
                    "server error: {msg}"
                )));
            }
            result.ops += 1;
            if inflight.is_empty() || client.buffered() == 0 {
                break;
            }
        }
    }
    result.counters = client.counters();
    client.close()
}

struct PhaseSummary {
    name: &'static str,
    ops: u64,
    elapsed: Duration,
    get_lat: Histogram,
    put_lat: Histogram,
    counters: ClientCounters,
}

impl PhaseSummary {
    fn kops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9) / 1e3
    }
}

/// Runs `per_conn` closures on one thread per connection and aggregates.
fn run_phase(
    name: &'static str,
    addr: SocketAddr,
    cfg: &Config,
    per_conn: impl Fn(usize) -> Box<dyn FnMut() -> Option<Request> + Send>,
) -> Result<PhaseSummary> {
    let started = Instant::now();
    let results: Vec<Result<ConnResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|c| {
                let mut make_req = per_conn(c);
                let depth = cfg.pipeline_depth;
                s.spawn(move || {
                    let mut r = ConnResult::new();
                    drive(addr, depth, &mut make_req, &mut r)?;
                    Ok(r)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut ops = 0;
    let mut get_lat = Histogram::new();
    let mut put_lat = Histogram::new();
    let mut counters = ClientCounters::default();
    for r in results {
        let r = r?;
        ops += r.ops;
        get_lat.merge(&r.get_lat);
        put_lat.merge(&r.put_lat);
        counters.retries += r.counters.retries;
        counters.timeouts += r.counters.timeouts;
        counters.reconnects += r.counters.reconnects;
        counters.ambiguous += r.counters.ambiguous;
    }
    Ok(PhaseSummary {
        name,
        ops,
        elapsed,
        get_lat,
        put_lat,
        counters,
    })
}

/// One connection-sweep step: `conns` concurrent sockets driven by a
/// fixed pool of driver threads. Each thread owns a contiguous slice of
/// the connections and loops send-batch (depth requests per connection,
/// one flush each) then drain-batch (blocking recv of everything it sent),
/// so the server holds `conns × depth` requests in flight without the
/// benchmark needing one thread per socket. The in-flight depth per
/// connection adapts downward at high connection counts to keep the total
/// outstanding window (and thus the drain-batch wall time) bounded.
fn run_sweep_step(addr: SocketAddr, cfg: &Config, conns: usize) -> Result<PhaseSummary> {
    let threads = cfg.driver_threads.min(conns);
    // Cap the total outstanding window: closed-loop p99 at a step is
    // roughly outstanding/throughput, so an unbounded window would just
    // report queueing delay the benchmark itself created.
    let depth = cfg.pipeline_depth.min((16_384 / conns).max(1));
    let records = cfg.records;
    let value_len = cfg.value_len;
    let seconds = cfg.seconds;
    let seed = cfg.seed;
    // All threads connect first, then start the measured window together:
    // a 10k-connection setup storm must not eat into (or be billed to)
    // the throughput window.
    let barrier = std::sync::Barrier::new(threads);
    let results: Vec<Result<(ConnResult, Duration)>> = std::thread::scope(|s| {
        let barrier = &barrier;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || -> Result<(ConnResult, Duration)> {
                    let lo = conns * t / threads;
                    let hi = conns * (t + 1) / threads;
                    let mut opts = client_options();
                    // A full drain-batch at 10k connections can keep one
                    // socket waiting well past the interactive default.
                    opts.read_timeout = Some(Duration::from_secs(30));
                    let mut clients = Vec::with_capacity(hi - lo);
                    let mut connect_err = None;
                    for _ in lo..hi {
                        match KvClient::connect_with(addr, opts.clone()) {
                            Ok(c) => clients.push(c),
                            Err(e) => {
                                connect_err = Some(e);
                                break;
                            }
                        }
                    }
                    // Reach the barrier even on failure, or the other
                    // driver threads would wait forever.
                    barrier.wait();
                    if let Some(e) = connect_err {
                        return Err(e);
                    }
                    let mut rng = Rng(seed ^ (0xD1B5_4A32 + t as u64));
                    let mut r = ConnResult::new();
                    let window_start = Instant::now();
                    let deadline = window_start + Duration::from_secs_f64(seconds);
                    let mut sent: Vec<Vec<(Opcode, Instant)>> = vec![Vec::new(); clients.len()];
                    while Instant::now() < deadline {
                        for (c, client) in clients.iter_mut().enumerate() {
                            for _ in 0..depth {
                                let k = rng.next() % records;
                                let req = if rng.next().is_multiple_of(2) {
                                    Request::Get { key: key_bytes(k) }
                                } else {
                                    Request::Put {
                                        key: key_bytes(k),
                                        value: vec![b'y'; value_len],
                                    }
                                };
                                let op = req.opcode();
                                client.send(&req)?;
                                sent[c].push((op, Instant::now()));
                            }
                            client.flush()?;
                        }
                        for (c, client) in clients.iter_mut().enumerate() {
                            for (op, at) in sent[c].drain(..) {
                                let (_, resp) = client.recv()?;
                                let ns = at.elapsed().as_nanos() as u64;
                                match op {
                                    Opcode::Get => r.get_lat.record(ns),
                                    _ => r.put_lat.record(ns),
                                }
                                if let Response::Err(msg) = resp {
                                    return Err(miodb_common::Error::Background(format!(
                                        "server error: {msg}"
                                    )));
                                }
                                r.ops += 1;
                            }
                        }
                    }
                    let window = window_start.elapsed();
                    for client in clients {
                        let c = client.counters();
                        r.counters.retries += c.retries;
                        r.counters.timeouts += c.timeouts;
                        r.counters.reconnects += c.reconnects;
                        r.counters.ambiguous += c.ambiguous;
                        r.counters.backpressure += c.backpressure;
                        client.close()?;
                    }
                    Ok((r, window))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep driver thread panicked"))
            .collect()
    });
    let mut elapsed = Duration::ZERO;
    let mut agg = ConnResult::new();
    for r in results {
        let (r, window) = r?;
        elapsed = elapsed.max(window);
        agg.ops += r.ops;
        agg.get_lat.merge(&r.get_lat);
        agg.put_lat.merge(&r.put_lat);
        agg.counters.retries += r.counters.retries;
        agg.counters.timeouts += r.counters.timeouts;
        agg.counters.reconnects += r.counters.reconnects;
        agg.counters.ambiguous += r.counters.ambiguous;
        agg.counters.backpressure += r.counters.backpressure;
    }
    Ok(PhaseSummary {
        name: "sweep",
        ops: agg.ops,
        elapsed,
        get_lat: agg.get_lat,
        put_lat: agg.put_lat,
        counters: agg.counters,
    })
}

fn lat_json(label: &str, h: &Histogram) -> String {
    format!(
        "\"{label}\":{{\"count\":{},\"mean_us\":{:.2},\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1}}}",
        h.count(),
        h.mean() / 1e3,
        h.percentile(50.0) as f64 / 1e3,
        h.percentile(99.0) as f64 / 1e3,
        h.percentile(99.9) as f64 / 1e3,
    )
}

fn print_phase(p: &PhaseSummary) {
    let widths = [8usize, 10, 10, 8, 10, 10, 10];
    for (op, h) in [("put", &p.put_lat), ("get", &p.get_lat)] {
        if h.count() == 0 {
            continue;
        }
        print_row(
            &[
                p.name.to_string(),
                op.to_string(),
                format!("{}", h.count()),
                format!("{:.1}", p.kops()),
                format!("{:.1}", h.percentile(50.0) as f64 / 1e3),
                format!("{:.1}", h.percentile(99.0) as f64 / 1e3),
                format!("{:.1}", h.percentile(99.9) as f64 / 1e3),
            ],
            &widths,
        );
    }
}

fn ack_label(cfg: &Config) -> &'static str {
    match cfg.replicate {
        Some(ack) => ack.label(),
        None => "none",
    }
}

/// Engine-side state behind the benchmark server: the plain sharded
/// router, or a replicated leader with an in-process follower applying
/// the shipped WAL stream.
enum Backend {
    Sharded(Arc<ShardRouter<MioDb>>),
    Replicated {
        leader: Arc<MioDb>,
        replicator: Arc<Replicator>,
        follower: Follower,
        follower_db: Arc<MioDb>,
    },
}

/// Server-side engine options: a shard router over `--shards` MioDB
/// instances. The device model is unthrottled by default — netbench
/// measures the service layer; `--throttled` adds the NVM timing model.
fn engine_opts(cfg: &Config) -> MioOptions {
    let mut opts = MioOptions {
        memtable_bytes: 1 << 20,
        nvm_pool_bytes: 1 << 30,
        dram_pool_bytes: 64 << 20,
        name: "MioDB-net".to_string(),
        ..MioOptions::default()
    };
    if !cfg.throttled {
        opts.nvm_device = DeviceModel::nvm_unthrottled();
    }
    opts
}

/// `--serve`: host the engine and server alone in this process, print the
/// listen address, and block until stdin reaches EOF. A second netbench
/// process drives the workload with `--addr`. Splitting the two halves
/// across processes is what lets a 10k-connection sweep fit under a
/// 20k-fd `RLIMIT_NOFILE`: each side then holds one descriptor per
/// connection instead of two.
fn serve_only(cfg: &Config) -> Result<()> {
    let max_conns = if cfg.max_connections > 0 {
        cfg.max_connections
    } else {
        10_064
    };
    let achieved = miodb_server::raise_nofile_limit(max_conns as u64 + 512);
    if (achieved as usize) < max_conns + 64 {
        eprintln!(
            "[netbench] RLIMIT_NOFILE allows only {achieved} fds; fewer than {max_conns} \
             connections will fit"
        );
    }
    let router = Arc::new(ShardRouter::open_miodb(&engine_opts(cfg), cfg.shards)?);
    let server = KvServer::start(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn miodb_common::KvEngine>,
        ServerOptions {
            max_connections: max_conns,
            ..ServerOptions::default()
        },
    )?;
    // The driving process scrapes this exact line for the address.
    println!("ADDR {}", server.local_addr());
    std::io::Write::flush(&mut std::io::stdout()).map_err(miodb_common::Error::Io)?;
    eprintln!(
        "[netbench] --serve: {} shards on {}, max {max_conns} connections; waiting for stdin EOF",
        cfg.shards,
        server.local_addr()
    );
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    eprintln!("[netbench] --serve: stdin closed, shutting down");
    server.shutdown();
    router.close()?;
    Ok(())
}

fn run(cfg: &Config) -> Result<()> {
    if cfg.serve {
        return serve_only(cfg);
    }
    let opts = engine_opts(cfg);
    let (server, backend): (Option<KvServer>, Option<Backend>) = if cfg.addr.is_some() {
        // Remote mode: the server lives in a `--serve` peer process.
        (None, None)
    } else if let Some(ack) = cfg.replicate {
        // Replication mode: one leader engine (the commit sink taps its
        // group-commit pipeline) plus a follower replica.
        let leader = Arc::new(MioDb::open(opts.clone())?);
        let replicator = Replicator::new(ReplicatorOptions {
            ack_level: ack,
            semi_sync_timeout: Duration::from_secs(10),
            retain_bytes: 256 << 20,
            group_size: 2,
        });
        leader.set_commit_sink(Some(
            Arc::clone(&replicator) as Arc<dyn miodb_common::ReplicationSink>
        ));
        let snap = Arc::clone(&leader);
        let server = KvServer::start_replicated(
            "127.0.0.1:0",
            Arc::clone(&leader) as Arc<dyn miodb_common::KvEngine>,
            ServerOptions::default(),
            ReplConfig::new(
                Some(Arc::clone(&replicator)),
                Some(Box::new(move || engine_snapshot_bytes(&snap))),
                Arc::new(miodb_common::RoleState::new_leader(1)),
                "",
            ),
        )?;
        let follower_db = Arc::new(MioDb::open(MioOptions {
            name: "MioDB-net-follower".to_string(),
            ..opts.clone()
        })?);
        let follower = Follower::start(
            Arc::clone(&follower_db),
            &server.local_addr().to_string(),
            FollowerOptions::default(),
        )?;
        let deadline = Instant::now() + Duration::from_secs(5);
        while replicator.subscriber_count() == 0 {
            if Instant::now() >= deadline {
                return Err(miodb_common::Error::Background(
                    "follower never subscribed".to_string(),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        (
            Some(server),
            Some(Backend::Replicated {
                leader,
                replicator,
                follower,
                follower_db,
            }),
        )
    } else {
        // A connection sweep needs the fd budget and the server's accept
        // cap raised before any socket opens: every step needs one client
        // and one server fd per connection, both in this process.
        let max_sweep = cfg.sweep.iter().copied().max().unwrap_or(0);
        let mut server_opts = ServerOptions::default();
        if max_sweep > 0 {
            let achieved = miodb_server::raise_nofile_limit(2 * max_sweep as u64 + 512);
            let cap = (achieved.saturating_sub(512) / 2) as usize;
            if cap < max_sweep {
                eprintln!(
                    "[netbench] RLIMIT_NOFILE allows only {achieved} fds; sweep steps above \
                     {cap} connections will be skipped"
                );
            }
            server_opts.max_connections = max_sweep + 64;
        }
        let router = Arc::new(ShardRouter::open_miodb(&opts, cfg.shards)?);
        let server = KvServer::start(
            "127.0.0.1:0",
            Arc::clone(&router) as Arc<dyn miodb_common::KvEngine>,
            server_opts,
        )?;
        (Some(server), Some(Backend::Sharded(router)))
    };
    let addr: std::net::SocketAddr = match &cfg.addr {
        Some(a) => a
            .parse()
            .map_err(|_| miodb_common::Error::Background(format!("bad --addr value: {a}")))?,
        None => server.as_ref().expect("local server").local_addr(),
    };
    match &backend {
        None => eprintln!(
            "[netbench] driving remote server at {addr}; {} connections, depth {}, {} records, \
             {}s run",
            cfg.connections, cfg.pipeline_depth, cfg.records, cfg.seconds
        ),
        Some(Backend::Sharded(_)) => eprintln!(
            "[netbench] serving {} shards on {addr}; {} connections, depth {}, {} records, {}s run",
            cfg.shards, cfg.connections, cfg.pipeline_depth, cfg.records, cfg.seconds
        ),
        Some(Backend::Replicated { .. }) => eprintln!(
            "[netbench] replicated leader on {addr} ({} acks) + follower; {} connections, \
             depth {}, {} records, {}s run",
            ack_label(cfg),
            cfg.connections,
            cfg.pipeline_depth,
            cfg.records,
            cfg.seconds
        ),
    }

    // Phase 1: fill. Connections split the keyspace into contiguous
    // stripes so every record is written exactly once.
    let records = cfg.records;
    let connections = cfg.connections as u64;
    let value_len = cfg.value_len;
    let fill = run_phase("fill", addr, cfg, |c| {
        let lo = records * c as u64 / connections;
        let hi = records * (c as u64 + 1) / connections;
        let mut next = lo;
        Box::new(move || {
            if next >= hi {
                return None;
            }
            let k = next;
            next += 1;
            Some(Request::Put {
                key: key_bytes(k),
                value: vec![b'x'; value_len],
            })
        })
    })?;

    // Tracing covers the measured phase only: the fill phase would
    // overflow the span ring without telling us anything about the mix.
    // Server and clients share one process, so one global tracer captures
    // complete client→server→engine trees.
    if cfg.trace {
        trace::enable(1 << 16, 16, false);
    }

    // Phase 2: the same YCSB-A-style 50/50 read/update mix over uniform
    // random keys, either as one fixed-connection phase or as a
    // connection-count sweep.
    let mut sweep_results: Vec<(usize, PhaseSummary)> = Vec::new();
    let ycsb = if cfg.sweep.is_empty() {
        let deadline = Instant::now() + Duration::from_secs_f64(cfg.seconds);
        Some(run_phase("ycsb-a", addr, cfg, |c| {
            let mut rng = Rng(cfg.seed ^ (c as u64 + 1));
            Box::new(move || {
                if Instant::now() >= deadline {
                    return None;
                }
                let k = rng.next() % records;
                if rng.next().is_multiple_of(2) {
                    Some(Request::Get { key: key_bytes(k) })
                } else {
                    Some(Request::Put {
                        key: key_bytes(k),
                        value: vec![b'y'; value_len],
                    })
                }
            })
        })?)
    } else {
        // Local mode holds both ends of every connection (2 fds each);
        // remote mode only the client end.
        let per_conn_fds: u64 = if cfg.addr.is_some() { 1 } else { 2 };
        let achieved = miodb_server::raise_nofile_limit(
            per_conn_fds * cfg.sweep.iter().copied().max().unwrap_or(0) as u64 + 512,
        );
        let cap = (achieved.saturating_sub(512) / per_conn_fds) as usize;
        for &n in &cfg.sweep {
            if n > cap {
                eprintln!("[netbench] skipping {n}-conn sweep step (fd cap {cap})");
                continue;
            }
            let step = run_sweep_step(addr, cfg, n)?;
            let mut all = Histogram::new();
            all.merge(&step.get_lat);
            all.merge(&step.put_lat);
            eprintln!(
                "[netbench] sweep {n} conns: {} ops, {:.1} Kops/s, p99 {:.1}us, {} backpressure",
                step.ops,
                step.kops(),
                all.percentile(99.0) as f64 / 1e3,
                step.counters.backpressure,
            );
            sweep_results.push((n, step));
        }
        None
    };

    if cfg.trace {
        let spans = trace::drain();
        let dropped = trace::dropped_spans();
        trace::disable();
        let traces: std::collections::HashSet<u64> = spans
            .iter()
            .map(|s| s.trace_id)
            .filter(|t| *t != 0)
            .collect();
        let complete = trace::complete_tree_count(&spans);
        std::fs::write("BENCH_trace.json", trace::to_chrome_json(&spans))
            .map_err(miodb_common::Error::Io)?;
        eprintln!(
            "[netbench] trace: {} spans, {} traces, {complete} complete client->engine trees, \
             {dropped} dropped (BENCH_trace.json)",
            spans.len(),
            traces.len(),
        );
    }

    // Server-side view: scrape STATS over the wire like a client would.
    let mut probe = KvClient::connect_with(addr, client_options())?;
    let stats_text = probe.stats()?;
    probe.close()?;
    let measured_ops = ycsb.as_ref().map(|p| p.ops).unwrap_or(0)
        + sweep_results.iter().map(|(_, s)| s.ops).sum::<u64>();
    // A remote server's telemetry isn't reachable in-process, and the
    // rendered stats don't include the request total; fall back to the
    // client-side operation count (a lower bound: it excludes probes).
    let served = match &server {
        Some(s) => s.telemetry().requests_total(),
        None => fill.ops + measured_ops,
    };

    println!(
        "\n== netbench: {} shards, {} connections, depth {} ==",
        cfg.shards, cfg.connections, cfg.pipeline_depth
    );
    let widths = [8usize, 10, 10, 8, 10, 10, 10];
    print_header(
        &[
            "phase",
            "op",
            "count",
            "Kops",
            "p50(us)",
            "p99(us)",
            "p99.9(us)",
        ],
        &widths,
    );
    print_phase(&fill);
    if let Some(ycsb) = &ycsb {
        print_phase(ycsb);
    }
    for (n, step) in &sweep_results {
        let mut all = Histogram::new();
        all.merge(&step.get_lat);
        all.merge(&step.put_lat);
        print_row(
            &[
                format!("sw-{n}"),
                "mix".to_string(),
                format!("{}", step.ops),
                format!("{:.1}", step.kops()),
                format!("{:.1}", all.percentile(50.0) as f64 / 1e3),
                format!("{:.1}", all.percentile(99.0) as f64 / 1e3),
                format!("{:.1}", all.percentile(99.9) as f64 / 1e3),
            ],
            &widths,
        );
    }
    for line in stats_text
        .lines()
        .filter(|l| l.starts_with("miodb_server_"))
        .take(6)
    {
        eprintln!("  [server] {line}");
    }

    // Replication mode: wait for the follower to converge on everything
    // the leader committed, then report the lag distribution.
    let repl_json = match &backend {
        None | Some(Backend::Sharded(_)) => String::new(),
        Some(Backend::Replicated {
            leader, replicator, ..
        }) => {
            let target = leader.last_sequence();
            let deadline = Instant::now() + Duration::from_secs(30);
            while replicator.max_acked() < target {
                if Instant::now() >= deadline {
                    return Err(miodb_common::Error::Background(format!(
                        "follower never converged ({} < {target})",
                        replicator.max_acked()
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let lag = replicator.lag_histogram();
            eprintln!(
                "  [repl] {} acks: {} groups acked, lag p50 {:.1}us p99 {:.1}us",
                ack_label(cfg),
                lag.count(),
                lag.percentile(50.0) as f64 / 1e3,
                lag.percentile(99.0) as f64 / 1e3,
            );
            format!(
                ",\"replication\":{{\"ack\":\"{}\",\"max_acked\":{},\"groups\":{},\"lag_p50_us\":{:.1},\"lag_p99_us\":{:.1}}}",
                ack_label(cfg),
                replicator.max_acked(),
                lag.count(),
                lag.percentile(50.0) as f64 / 1e3,
                lag.percentile(99.0) as f64 / 1e3,
            )
        }
    };

    if let Some(server) = server {
        server.shutdown();
    }
    match backend {
        None => {}
        Some(Backend::Sharded(router)) => router.close()?,
        Some(Backend::Replicated {
            leader,
            follower,
            follower_db,
            ..
        }) => {
            follower.stop();
            leader.set_commit_sink(None);
            follower_db.close()?;
            leader.close()?;
        }
    }

    let mut phases = vec![phase_json(&fill)];
    if let Some(ycsb) = &ycsb {
        phases.push(phase_json(ycsb));
    }
    let sweep_json = if sweep_results.is_empty() {
        String::new()
    } else {
        let steps: Vec<String> = sweep_results
            .iter()
            .map(|(n, step)| {
                let mut all = Histogram::new();
                all.merge(&step.get_lat);
                all.merge(&step.put_lat);
                format!(
                    "{{\"connections\":{n},\"ops\":{},\"elapsed_ns\":{},\"kops\":{:.2},\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\"backpressure\":{},\"timeouts\":{},{},{}}}",
                    step.ops,
                    step.elapsed.as_nanos(),
                    step.kops(),
                    all.percentile(50.0) as f64 / 1e3,
                    all.percentile(99.0) as f64 / 1e3,
                    all.percentile(99.9) as f64 / 1e3,
                    step.counters.backpressure,
                    step.counters.timeouts,
                    lat_json("put", &step.put_lat),
                    lat_json("get", &step.get_lat),
                )
            })
            .collect();
        format!(",\"sweep\":[\n  {}\n]", steps.join(",\n  "))
    };
    let json = format!(
        "{{\"experiment\":\"netbench\",\"shards\":{},\"connections\":{},\"pipeline_depth\":{},\"value_len\":{},\"records\":{},\"throttled\":{},\"requests_served\":{served}{repl_json}{sweep_json},\"phases\":[\n  {}\n]}}\n",
        cfg.shards,
        cfg.connections,
        cfg.pipeline_depth,
        cfg.value_len,
        cfg.records,
        cfg.throttled,
        phases.join(",\n  "),
    );
    std::fs::write("BENCH_server.json", json).map_err(miodb_common::Error::Io)?;
    eprintln!("[netbench results written to BENCH_server.json]");

    if fill.ops == 0 || measured_ops == 0 {
        eprintln!("netbench: a phase completed zero operations");
        std::process::exit(1);
    }
    Ok(())
}

fn phase_json(p: &PhaseSummary) -> String {
    format!(
        "{{\"phase\":\"{}\",\"ops\":{},\"elapsed_ns\":{},\"kops\":{:.2},\"timeouts\":{},\"retries\":{},\"reconnects\":{},\"ambiguous\":{},{},{}}}",
        p.name,
        p.ops,
        p.elapsed.as_nanos(),
        p.kops(),
        p.counters.timeouts,
        p.counters.retries,
        p.counters.reconnects,
        p.counters.ambiguous,
        lat_json("put", &p.put_lat),
        lat_json("get", &p.get_lat),
    )
}
