//! Crash-recovery fuzzer: repeatedly snapshot MioDB mid-operation, recover
//! and verify, looking for rare recovery corruption. Not part of the test
//! suite (unbounded); run manually: `crash_fuzz [iterations]`.

use miodb_common::{KvEngine, Stats};
use miodb_core::{MioDb, MioOptions};
use miodb_pmem::PmemPool;
use std::sync::Arc;

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let opts = MioOptions::small_for_tests();
    let path = std::env::temp_dir().join(format!("miodb-fuzz-{}", std::process::id()));
    for round in 0..iters {
        let seed = round as u64;
        // Lifetime 1
        {
            let db = MioDb::open(opts.clone()).unwrap();
            for i in 0..1000u32 {
                db.put(format!("key{i:05}").as_bytes(), b"gen1").unwrap();
            }
            db.snapshot(&path).unwrap();
        }
        for gen in 2..5u32 {
            let pool = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new()))
                .unwrap();
            let db = MioDb::recover(pool, opts.clone()).unwrap();
            for i in (0..1000u32).step_by(gen as usize) {
                db.put(
                    format!("key{i:05}").as_bytes(),
                    format!("gen{gen}").as_bytes(),
                )
                .unwrap();
            }
            // Random extra churn to vary background timing.
            for i in 0..(seed % 400) as u32 {
                db.put(format!("extra{i:05}").as_bytes(), &[9u8; 128])
                    .unwrap();
            }
            db.snapshot(&path).unwrap();
        }
        let pool =
            PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
        let db = MioDb::recover(pool, opts.clone()).unwrap();
        for i in 0..1000u32 {
            let got = db.get(format!("key{i:05}").as_bytes()).unwrap().unwrap();
            let expected = if i % 4 == 0 {
                "gen4"
            } else if i % 3 == 0 {
                "gen3"
            } else if i % 2 == 0 {
                "gen2"
            } else {
                "gen1"
            };
            assert_eq!(got, expected.as_bytes(), "round {round} key{i:05}");
        }
        eprint!("\r{round} ok");
    }
    eprintln!("\nall rounds passed");
    std::fs::remove_file(&path).ok();
}
