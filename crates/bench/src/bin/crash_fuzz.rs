//! Crash-recovery fuzzer: repeatedly snapshot MioDB mid-operation, recover
//! and verify, looking for rare recovery corruption. Not part of the test
//! suite (unbounded); run manually:
//!
//! ```text
//! crash_fuzz [iterations]              # sequential lifetimes (original mode)
//! crash_fuzz [iterations] --concurrent # snapshot from a second thread while
//!                                      # writers run (mid-flush/mid-merge)
//! crash_fuzz ... --slow-log-us N       # after the run, print span trees for
//!                                      # engine ops slower than N us
//! ```
//!
//! A bounded fixed-seed variant of the concurrent mode runs in tier-1 as
//! `tests/crash_recovery.rs::concurrent_snapshot_while_writers_run`.

use miodb_check::DurableOracle;
use miodb_common::trace;
use miodb_common::{KvEngine, Stats};
use miodb_core::{MioDb, MioOptions};
use miodb_pmem::PmemPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn recover(path: &std::path::Path, opts: &MioOptions) -> MioDb {
    let pool = PmemPool::restore_from_file(path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
    MioDb::recover(pool, opts.clone()).unwrap()
}

/// One adversarial-timing round: the snapshot races live writers, so it
/// lands mid-flush / mid-merge. Base keys (quiesced before the race) must
/// survive exactly; churn keys are verified against the durable-prefix
/// oracle — every write acknowledged before the snapshot instant must be
/// readable (superseded only by later writes to the same slot), and every
/// in-flight write must be fully present or fully absent, never torn.
fn concurrent_round(opts: &MioOptions, path: &std::path::Path, seed: u64) {
    const WRITERS: u32 = 2;
    const CHURN_SLOTS: u64 = 400;
    let db = Arc::new(MioDb::open(opts.clone()).unwrap());
    let oracle = DurableOracle::new();
    for i in 0..800u32 {
        oracle
            .put(&*db, format!("base{i:05}").as_bytes(), b"base-value")
            .unwrap();
    }
    db.wait_idle().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let db = Arc::clone(&db);
            let oracle = oracle.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // Each slot is written by exactly one thread, as the
                    // oracle's single-writer-per-key model requires.
                    let k = format!("churn{t:02}-{:05}", n % CHURN_SLOTS);
                    let v = format!("churnval-{t:02}-{n:08}");
                    oracle.put(&*db, k.as_bytes(), v.as_bytes()).unwrap();
                    n += 1;
                }
            })
        })
        .collect();

    // Seed-varied delay so successive rounds freeze different instants of
    // the flush/merge pipeline.
    std::thread::sleep(Duration::from_millis(2 + seed % 25));
    let crash_ns = oracle.now_ns();
    db.snapshot(path).unwrap();
    stop.store(true, Ordering::Release);
    for w in writers {
        w.join().unwrap();
    }
    db.close().unwrap();
    drop(db);

    let db = recover(path, opts);
    if let Err(v) = oracle.verify_engine(&db, crash_ns) {
        panic!("seed {seed}: {v}");
    }
    for i in 0..800u32 {
        assert_eq!(
            db.get(format!("base{i:05}").as_bytes()).unwrap().unwrap(),
            b"base-value",
            "seed {seed}: base{i:05} lost"
        );
    }
    // The recovered engine keeps accepting writes.
    db.put(b"post-recovery-probe", b"ok").unwrap();
    assert_eq!(
        db.get(b"post-recovery-probe").unwrap().unwrap(),
        b"ok",
        "seed {seed}"
    );
    db.close().unwrap();
}

fn sequential_round(opts: &MioOptions, path: &std::path::Path, round: u32) {
    let seed = round as u64;
    // Lifetime 1
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for i in 0..1000u32 {
            db.put(format!("key{i:05}").as_bytes(), b"gen1").unwrap();
        }
        db.snapshot(path).unwrap();
    }
    for gen in 2..5u32 {
        let db = recover(path, opts);
        for i in (0..1000u32).step_by(gen as usize) {
            db.put(
                format!("key{i:05}").as_bytes(),
                format!("gen{gen}").as_bytes(),
            )
            .unwrap();
        }
        // Random extra churn to vary background timing.
        for i in 0..(seed % 400) as u32 {
            db.put(format!("extra{i:05}").as_bytes(), &[9u8; 128])
                .unwrap();
        }
        db.snapshot(path).unwrap();
    }
    let db = recover(path, opts);
    for i in 0..1000u32 {
        let got = db.get(format!("key{i:05}").as_bytes()).unwrap().unwrap();
        let expected = if i % 4 == 0 {
            "gen4"
        } else if i % 3 == 0 {
            "gen3"
        } else if i % 2 == 0 {
            "gen2"
        } else {
            "gen1"
        };
        assert_eq!(got, expected.as_bytes(), "round {round} key{i:05}");
    }
}

fn main() {
    let mut iters: u32 = 50;
    let mut concurrent = false;
    let mut slow_log_us: Option<u64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if arg == "--concurrent" {
            concurrent = true;
        } else if arg == "--slow-log-us" {
            i += 1;
            slow_log_us = args.get(i).and_then(|s| s.parse().ok());
            if slow_log_us.is_none() {
                eprintln!("bad or missing value for --slow-log-us");
                std::process::exit(2);
            }
        } else if let Ok(n) = arg.parse() {
            iters = n;
        }
        i += 1;
    }
    // Direct-drive harness: implicit roots give every engine op its own
    // trace so slow rounds decompose into pipeline stages.
    if slow_log_us.is_some() {
        trace::enable(1 << 18, 1, true);
    }
    let opts = MioOptions::small_for_tests();
    let path = std::env::temp_dir().join(format!("miodb-fuzz-{}", std::process::id()));
    for round in 0..iters {
        if concurrent {
            concurrent_round(&opts, &path, round as u64);
        } else {
            sequential_round(&opts, &path, round);
        }
        eprint!("\r{round} ok");
    }
    if let Some(us) = slow_log_us {
        let spans = trace::drain();
        trace::disable();
        let log = trace::slow_log(&spans, us * 1000);
        if log.is_empty() {
            eprintln!("\nslow log: no engine op exceeded {us}us");
        } else {
            eprintln!("\nslow log (threshold {us}us):\n{log}");
        }
    }
    eprintln!(
        "\nall {} rounds passed",
        if concurrent {
            "concurrent"
        } else {
            "sequential"
        }
    );
    std::fs::remove_file(&path).ok();
}
