use miodb_common::KvEngine;
use miodb_core::{MioDb, MioOptions};
use miodb_pmem::DeviceModel;
use std::time::Duration;

fn main() {
    let rounds: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    for round in 0..rounds {
        let db = MioDb::open(MioOptions {
            memtable_bytes: 64 * 1024,
            elastic_levels: 6,
            nvm_pool_bytes: 128 << 20,
            nvm_device: DeviceModel::nvm(),
            ..MioOptions::small_for_tests()
        })
        .unwrap();
        for i in 0..8_000u32 {
            db.put(format!("key{i:06}").as_bytes(), &[5u8; 256])
                .unwrap();
        }
        std::thread::sleep(Duration::from_millis(50));
        // Reads while compactions are still running.
        let mut i = 0u64;
        for n in 0..30_000u64 {
            i = (i + 7919) % 8_000;
            if db.get(format!("key{i:06}").as_bytes()).unwrap().is_none() {
                eprintln!("ROUND {round}: key{i:06} INVISIBLE at probe {n}");
                eprintln!(
                    "locate: {:?}",
                    db.debug_locate(format!("key{i:06}").as_bytes())
                );
                eprintln!("bloom audit: {:?}", db.debug_bloom_audit());
                eprintln!("report: {:?}", db.report().tables_per_level);
                // Check again after settling.
                db.wait_idle().unwrap();
                match db.get(format!("key{i:06}").as_bytes()).unwrap() {
                    Some(_) => eprintln!("  ...reappeared after wait_idle (transient)"),
                    None => eprintln!("  ...PERMANENTLY LOST"),
                }
                std::process::exit(1);
            }
        }
        eprint!("\r{round} ok");
    }
    eprintln!("\nno race in {rounds} rounds");
}
