//! Shared harness for the paper-reproduction benchmarks.
//!
//! Provides an engine factory that builds MioDB and every baseline with
//! **consistently scaled** configurations (the paper's 80 GB / 64 MB-
//! MemTable setup shrunk by a single scale factor so stall and WA
//! phenomena keep their shape), plus table-printing helpers used by the
//! `repro` binary.

use std::sync::Arc;

use miodb_baselines::{MatrixKv, MatrixKvOptions, NoveLsm, NoveLsmOptions};
use miodb_common::{KvEngine, Result, Stats, TelemetryOptions};
use miodb_core::{MioDb, MioOptions, RepositoryMode};
use miodb_lsm::{LsmDb, LsmOptions};
use miodb_pmem::DeviceModel;

/// Storage mode matching the paper's two deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// §5.1–5.3: everything persistent lives on the NVM device.
    InMemory,
    /// §5.4: SSTables/repository on an SSD device, buffers on NVM.
    Tiered,
}

/// Which engine to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's system.
    MioDb,
    /// Flat NoveLSM.
    NoveLsm,
    /// NoveLSM without SSTables (one big skip list).
    NoveLsmNoSst,
    /// MatrixKV.
    MatrixKv,
    /// Plain LevelDB-model LSM (extra reference point / ablation).
    LevelDb,
}

impl EngineKind {
    /// Engines compared in the main figures.
    pub fn main_three() -> [EngineKind; 3] {
        [EngineKind::MioDb, EngineKind::MatrixKv, EngineKind::NoveLsm]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::MioDb => "MioDB",
            EngineKind::NoveLsm => "NoveLSM",
            EngineKind::NoveLsmNoSst => "NoveLSM-NoSST",
            EngineKind::MatrixKv => "MatrixKV",
            EngineKind::LevelDb => "LevelDB",
        }
    }
}

/// Scaled experiment geometry.
///
/// The paper: 80 GB dataset, 64 MB MemTables, 4 GB NoveLSM NVM MemTable,
/// 8 GB MatrixKV container, 64 MB SSTables, AF 10. `Scale::new` keeps all
/// the ratios while shrinking the dataset.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Total bytes written by the load phase.
    pub dataset_bytes: u64,
    /// Value size.
    pub value_len: usize,
    /// MemTable bytes (dataset/512, clamped).
    pub memtable_bytes: usize,
    /// Reads performed by read benchmarks (paper: 1/20 of the keys).
    pub read_ops: u64,
}

impl Scale {
    /// Builds a scale around a dataset size and value length. The
    /// MemTable:dataset ratio follows the paper (64 MB : 80 GB ~ 1:1280,
    /// clamped so arenas stay usable at laptop scale) — structure counts
    /// (container rows, SSTables per level, flush count) drive the read
    /// and stall behaviour, so they must shrink *less* than byte sizes.
    pub fn new(dataset_bytes: u64, value_len: usize) -> Scale {
        let memtable_bytes = (dataset_bytes / 512).clamp(64 * 1024, 4 << 20) as usize;
        let keys = dataset_bytes / (16 + value_len as u64).max(1);
        Scale {
            dataset_bytes,
            value_len,
            memtable_bytes,
            read_ops: (keys / 20).max(200),
        }
    }

    /// Default scale for the repro harness: 48 MiB of 4 KiB values
    /// (the paper's 80 GB shrunk ~1700×; all thresholds shrink alongside).
    pub fn default_scale() -> Scale {
        Scale::new(48 << 20, 4096)
    }

    /// Number of keys in the dataset.
    pub fn keys(&self) -> u64 {
        self.dataset_bytes / (16 + self.value_len as u64).max(1)
    }

    /// NoveLSM's big-NVM-MemTable threshold (paper 4 GB : 80 GB = 1/20).
    pub fn nvm_memtable_bytes(&self) -> u64 {
        (self.dataset_bytes / 20).max(4 * self.memtable_bytes as u64)
    }

    /// MatrixKV's container budget (paper 8 GB : 80 GB = 1/10).
    pub fn container_bytes(&self) -> u64 {
        (self.dataset_bytes / 10).max(4 * self.memtable_bytes as u64)
    }

    /// LSM geometry shared by the baselines.
    pub fn lsm_options(&self) -> LsmOptions {
        LsmOptions {
            table_bytes: self.memtable_bytes,
            block_bytes: 4096,
            bloom_bits_per_key: 10,
            l0_compaction_trigger: 4,
            l0_slowdown_trigger: 8,
            l0_stop_trigger: 12,
            level1_max_bytes: self.memtable_bytes as u64 * 10,
            amplification_factor: 10,
            max_levels: 7,
        }
    }

    /// NVM pool size for engines (generous: dataset × 4 plus slack).
    pub fn nvm_pool_bytes(&self) -> usize {
        (self.dataset_bytes * 4 + (64 << 20)) as usize
    }
}

/// MioDB options matching the repro harness geometry at `scale`.
fn mio_options(
    mode: Mode,
    scale: &Scale,
    mio_levels: Option<usize>,
    nvm_buffer_cap: Option<u64>,
) -> MioOptions {
    let repository = match mode {
        Mode::InMemory => RepositoryMode::HugePmTable,
        Mode::Tiered => RepositoryMode::Ssd {
            lsm: scale.lsm_options(),
            device: DeviceModel::ssd(),
        },
    };
    MioOptions {
        memtable_bytes: scale.memtable_bytes,
        elastic_levels: mio_levels.unwrap_or(8),
        bloom_bits_per_key: 16,
        nvm_pool_bytes: scale.nvm_pool_bytes(),
        dram_pool_bytes: (scale.memtable_bytes * 10).max(16 << 20),
        nvm_device: DeviceModel::nvm(),
        elastic_buffer_cap: nvm_buffer_cap,
        wal_segment_bytes: scale.memtable_bytes,
        repo_chunk_bytes: (scale.memtable_bytes * 2).max(1 << 20),
        lazy_copy_trigger: 2,
        repository,
        bloom_enabled: true,
        parallel_compaction: true,
        write_pipeline: true,
        name: "MioDB".to_string(),
        telemetry: TelemetryOptions::default(),
    }
}

/// Builds MioDB at `scale` with the group-commit write pipeline toggled —
/// the `repro scaling` experiment's pipeline-on/off comparison.
///
/// # Errors
///
/// Propagates pool-allocation failures.
pub fn build_miodb_pipeline(scale: &Scale, write_pipeline: bool) -> Result<Box<dyn KvEngine>> {
    let mut opts = mio_options(Mode::InMemory, scale, None, None);
    opts.write_pipeline = write_pipeline;
    if !write_pipeline {
        opts.name = "MioDB-single".to_string();
    }
    Ok(Box::new(MioDb::open(opts)?))
}

/// Builds an engine for `kind` under `mode` at `scale`. Devices are
/// throttled (the timing model is the measurement substrate).
///
/// # Errors
///
/// Propagates pool-allocation failures.
pub fn build_engine(kind: EngineKind, mode: Mode, scale: &Scale) -> Result<Box<dyn KvEngine>> {
    build_engine_with(kind, mode, scale, None, None)
}

/// [`build_engine`] with optional overrides used by the sensitivity
/// sweeps: MioDB level count (Figure 9) and NVM-buffer cap (Figure 14).
///
/// # Errors
///
/// Propagates pool-allocation failures.
pub fn build_engine_with(
    kind: EngineKind,
    mode: Mode,
    scale: &Scale,
    mio_levels: Option<usize>,
    nvm_buffer_cap: Option<u64>,
) -> Result<Box<dyn KvEngine>> {
    let nvm_dev = DeviceModel::nvm();
    let ssd_dev = DeviceModel::ssd();
    let table_device = match mode {
        Mode::InMemory => nvm_dev,
        Mode::Tiered => ssd_dev,
    };
    let stats = Arc::new(Stats::new());
    match kind {
        EngineKind::MioDb => {
            let opts = mio_options(mode, scale, mio_levels, nvm_buffer_cap);
            Ok(Box::new(MioDb::open(opts)?))
        }
        EngineKind::NoveLsm | EngineKind::NoveLsmNoSst => {
            let no_sst = kind == EngineKind::NoveLsmNoSst;
            let opts = NoveLsmOptions {
                memtable_bytes: scale.memtable_bytes,
                nvm_memtable_bytes: nvm_buffer_cap.unwrap_or_else(|| scale.nvm_memtable_bytes()),
                no_sst,
                lsm: scale.lsm_options(),
                table_device,
                nvm_device: nvm_dev,
                nvm_pool_bytes: scale.nvm_pool_bytes(),
                name: if no_sst { "NoveLSM-NoSST" } else { "NoveLSM" }.to_string(),
                telemetry: TelemetryOptions::default(),
            };
            Ok(Box::new(NoveLsm::open(opts, stats)?))
        }
        EngineKind::MatrixKv => {
            let opts = MatrixKvOptions {
                memtable_bytes: scale.memtable_bytes,
                container_bytes: nvm_buffer_cap.unwrap_or_else(|| scale.container_bytes()),
                column_denominator: 8,
                lsm: scale.lsm_options(),
                table_device,
                row_device: nvm_dev,
                name: "MatrixKV".to_string(),
                telemetry: TelemetryOptions::default(),
            };
            Ok(Box::new(MatrixKv::open(opts, stats)?))
        }
        EngineKind::LevelDb => {
            let opts = miodb_lsm::db::LsmDbOptions {
                memtable_bytes: scale.memtable_bytes,
                lsm: scale.lsm_options(),
                table_device,
                wal_device: nvm_dev,
                name: match mode {
                    Mode::InMemory => "LevelDB-NVM".to_string(),
                    Mode::Tiered => "LevelDB-SSD".to_string(),
                },
            };
            Ok(Box::new(LsmDb::open(opts, stats)?))
        }
    }
}

/// Prints a markdown-ish table row, padding cells to `widths`.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::from("| ");
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$} | ", w = w));
    }
    println!("{line}");
}

/// Prints a table header and separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let mut line = String::from("|-");
    for w in widths {
        line.push_str(&"-".repeat(*w));
        line.push_str("-|-");
    }
    line.pop();
    println!("{line}");
}

/// Human-readable byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1}KiB", b as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_ratios_match_paper() {
        let s = Scale::new(80 << 20, 4096);
        // 1/20 for NoveLSM's NVM memtable, 1/10 for MatrixKV's container.
        assert_eq!(s.nvm_memtable_bytes(), 4 << 20);
        assert_eq!(s.container_bytes(), 8 << 20);
        assert!(s.memtable_bytes >= 128 * 1024);
        assert!(s.keys() > 0);
    }

    #[test]
    fn engines_build_in_memory() {
        let s = Scale::new(4 << 20, 1024);
        for kind in [
            EngineKind::MioDb,
            EngineKind::NoveLsm,
            EngineKind::NoveLsmNoSst,
            EngineKind::MatrixKv,
            EngineKind::LevelDb,
        ] {
            let e = build_engine(kind, Mode::InMemory, &s).unwrap();
            e.put(b"k", b"v").unwrap();
            assert_eq!(e.get(b"k").unwrap().unwrap(), b"v", "{}", kind.name());
        }
    }

    #[test]
    fn engines_build_tiered() {
        let s = Scale::new(4 << 20, 1024);
        for kind in EngineKind::main_three() {
            let e = build_engine(kind, Mode::Tiered, &s).unwrap();
            e.put(b"k", b"v").unwrap();
            assert_eq!(e.get(b"k").unwrap().unwrap(), b"v", "{}", kind.name());
        }
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "0.5KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
        assert_eq!(fmt_bytes(2 << 30), "2.0GiB");
    }
}
