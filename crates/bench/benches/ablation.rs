//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **bloom filters on/off** (§4.6): point-lookup cost when every table
//!   must be probed vs. bloom-guided skipping;
//! - **parallel vs. serial compaction** (§4.5): end-to-end load+settle
//!   time when one thread serves all levels instead of one per level.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use miodb_common::KvEngine;
use miodb_core::{MioDb, MioOptions};

fn opts(bloom: bool, parallel: bool) -> MioOptions {
    MioOptions {
        memtable_bytes: 64 * 1024,
        elastic_levels: 6,
        nvm_pool_bytes: 128 << 20,
        // Throttled NVM: the bloom ablation measures avoided NVM probes,
        // which are free on an unthrottled pool.
        nvm_device: miodb_pmem::DeviceModel::nvm(),
        bloom_enabled: bloom,
        parallel_compaction: parallel,
        ..MioOptions::small_for_tests()
    }
}

fn loaded_db(bloom: bool) -> MioDb {
    let db = MioDb::open(opts(bloom, true)).unwrap();
    for i in 0..8_000u32 {
        db.put(format!("key{i:06}").as_bytes(), &[5u8; 256])
            .unwrap();
    }
    // Do not wait for quiescence: the interesting case has tables resting
    // in several levels.
    std::thread::sleep(Duration::from_millis(50));
    db
}

fn bloom_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_ablation_get");
    group.sample_size(30);
    for &bloom in &[true, false] {
        let label = if bloom { "bloom_on" } else { "bloom_off" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &bloom, |b, &bloom| {
            let db = loaded_db(bloom);
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7919) % 8_000;
                assert!(db.get(format!("key{i:06}").as_bytes()).unwrap().is_some());
            });
        });
    }
    group.finish();
}

fn compaction_parallelism_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction_parallelism");
    group.sample_size(10);
    for &parallel in &[true, false] {
        let label = if parallel {
            "one_thread_per_level"
        } else {
            "single_thread"
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &parallel,
            |b, &parallel| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let db = MioDb::open(opts(true, parallel)).unwrap();
                        let t0 = Instant::now();
                        for i in 0..6_000u32 {
                            db.put(format!("key{i:06}").as_bytes(), &[3u8; 256])
                                .unwrap();
                        }
                        db.wait_idle().unwrap();
                        total += t0.elapsed();
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bloom_ablation, compaction_parallelism_ablation);
criterion_main!(benches);
