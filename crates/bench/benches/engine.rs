//! End-to-end engine micro-benchmarks: put/get through MioDB and the
//! baselines with unthrottled devices (pure software-path cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use miodb_bench::{build_engine, EngineKind, Mode, Scale};

fn engine_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_put_1k");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(1024 + 16));
    for kind in [
        EngineKind::MioDb,
        EngineKind::MatrixKv,
        EngineKind::NoveLsm,
        EngineKind::LevelDb,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let scale = Scale::new(32 << 20, 1024);
                let engine = build_engine(kind, Mode::InMemory, &scale).unwrap();
                let value = vec![1u8; 1024];
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    engine.put(format!("k{i:015}").as_bytes(), &value).unwrap();
                });
            },
        );
    }
    group.finish();
}

fn engine_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_get_1k");
    group.sample_size(20);
    for kind in [
        EngineKind::MioDb,
        EngineKind::MatrixKv,
        EngineKind::NoveLsm,
        EngineKind::LevelDb,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let scale = Scale::new(8 << 20, 1024);
                let engine = build_engine(kind, Mode::InMemory, &scale).unwrap();
                let value = vec![1u8; 1024];
                let n = 5_000u64;
                for i in 0..n {
                    engine.put(format!("k{i:015}").as_bytes(), &value).unwrap();
                }
                engine.wait_idle().unwrap();
                let mut i = 0u64;
                b.iter(|| {
                    i = (i + 7919) % n;
                    assert!(engine
                        .get(format!("k{i:015}").as_bytes())
                        .unwrap()
                        .is_some());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, engine_put, engine_get);
criterion_main!(benches);
