//! Ablation: zero-copy compaction vs copying compaction (paper §4.3).
//!
//! `zero_copy` merges two PMTables by pointer re-linking only; `copy`
//! rebuilds a fresh table by physically copying every entry (what a
//! traditional compaction does, and what MioDB's own lazy-copy pays at the
//! bottom level). Both run under the throttled NVM model — the advantage
//! being measured *is* the avoided NVM write traffic.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use miodb_common::{OpKind, Stats};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_skiplist::{
    merge::MergeLimits, zero_copy_merge, GrowableSkipList, InsertionMark, SkipListArena,
};

fn build_table(pool: &Arc<PmemPool>, base: u64, entries: u64, vlen: usize) -> SkipListArena {
    let arena = SkipListArena::new(pool.clone(), 32 << 20).unwrap();
    let value = vec![3u8; vlen];
    for i in 0..entries {
        arena
            .insert(
                format!("k{:015}", base + i * 2).as_bytes(),
                &value,
                base + i + 1,
                OpKind::Put,
            )
            .unwrap();
    }
    arena
}

fn compaction_ablation(c: &mut Criterion) {
    let entries = 2_000u64;
    let vlen = 1024usize;
    let mut group = c.benchmark_group("compaction_ablation");
    group.sample_size(15);
    group.throughput(Throughput::Bytes(2 * entries * (16 + vlen as u64)));

    group.bench_with_input(BenchmarkId::new("zero_copy", entries), &(), |b, ()| {
        b.iter_with_setup(
            || {
                let pool =
                    PmemPool::new(256 << 20, DeviceModel::nvm(), Arc::new(Stats::new())).unwrap();
                let old = build_table(&pool, 0, entries, vlen);
                let new = build_table(&pool, 1_000_000, entries, vlen);
                let mark = InsertionMark::alloc(&pool).unwrap();
                (pool, old, new, mark)
            },
            |(pool, old, new, mark)| {
                let out =
                    zero_copy_merge(&pool, new.head(), old.head(), &mark, MergeLimits::none());
                assert!(out.is_complete());
            },
        );
    });

    group.bench_with_input(BenchmarkId::new("copy", entries), &(), |b, ()| {
        b.iter_with_setup(
            || {
                let pool =
                    PmemPool::new(256 << 20, DeviceModel::nvm(), Arc::new(Stats::new())).unwrap();
                let old = build_table(&pool, 0, entries, vlen);
                let new = build_table(&pool, 1_000_000, entries, vlen);
                (pool, old, new)
            },
            |(pool, old, new)| {
                // Traditional merge: copy every entry into a fresh table.
                let out = GrowableSkipList::new(pool.clone(), 8 << 20).unwrap();
                for e in new.list().iter() {
                    out.apply(&e.key, &e.value, e.seq, e.kind).unwrap();
                }
                for e in old.list().iter() {
                    out.apply(&e.key, &e.value, e.seq, e.kind).unwrap();
                }
                assert!(!out.is_empty());
            },
        );
    });
    group.finish();
}

criterion_group!(benches, compaction_ablation);
criterion_main!(benches);
