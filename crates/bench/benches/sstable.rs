//! Criterion micro-benchmarks of SSTable serialization and
//! deserialization — the baseline costs MioDB's PMTables eliminate
//! (Figure 2, Table 1).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use miodb_common::{OpKind, Stats};
use miodb_lsm::{SsTableBuilder, TableStore};
use miodb_pmem::DeviceModel;

fn build_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sstable_build");
    group.sample_size(20);
    for &vlen in &[1024usize, 4096] {
        let entries = 1000u64;
        group.throughput(Throughput::Bytes(entries * (16 + vlen as u64)));
        group.bench_with_input(BenchmarkId::from_parameter(vlen), &vlen, |b, &vlen| {
            let stats = Arc::new(Stats::new());
            let store = TableStore::new(DeviceModel::nvm_unthrottled(), stats.clone());
            let value = vec![5u8; vlen];
            b.iter(|| {
                let mut builder = SsTableBuilder::new(4096, 10);
                for i in 0..entries {
                    builder.add(format!("k{i:015}").as_bytes(), &value, i + 1, OpKind::Put);
                }
                let meta = builder.finish(&store, &stats).unwrap();
                store.delete(meta.id);
            });
        });
    }
    group.finish();
}

fn get_bench(c: &mut Criterion) {
    let stats = Arc::new(Stats::new());
    let store = TableStore::new(DeviceModel::nvm_unthrottled(), stats.clone());
    let mut builder = SsTableBuilder::new(4096, 10);
    let n = 10_000u64;
    for i in 0..n {
        builder.add(
            format!("k{i:015}").as_bytes(),
            &[2u8; 1024],
            i + 1,
            OpKind::Put,
        );
    }
    let meta = builder.finish(&store, &stats).unwrap();
    let mut group = c.benchmark_group("sstable_get");
    group.bench_function("hit_deserialize", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % n;
            assert!(meta
                .reader
                .get(format!("k{i:015}").as_bytes(), &stats)
                .unwrap()
                .is_some());
        });
    });
    group.bench_function("bloom_filtered_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            assert!(meta
                .reader
                .get(format!("x{i:015}").as_bytes(), &stats)
                .unwrap()
                .is_none());
        });
    });
    group.finish();
}

criterion_group!(benches, build_bench, get_bench);
criterion_main!(benches);
