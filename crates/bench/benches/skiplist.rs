//! Criterion micro-benchmarks of the arena skip list (insert, point
//! lookup) — the primitive behind MemTables and PMTables.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use miodb_common::{OpKind, Stats};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_skiplist::SkipListArena;

fn insert_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist_insert");
    for &value_len in &[64usize, 1024, 4096] {
        group.throughput(Throughput::Bytes(value_len as u64 + 16));
        group.bench_with_input(
            BenchmarkId::from_parameter(value_len),
            &value_len,
            |b, &vlen| {
                let pool =
                    PmemPool::new(256 << 20, DeviceModel::dram(), Arc::new(Stats::new())).unwrap();
                let value = vec![7u8; vlen];
                let mut arena = SkipListArena::new(pool.clone(), 64 << 20).unwrap();
                let mut i = 0u64;
                b.iter(|| {
                    if !arena.fits(16, vlen) {
                        let old = std::mem::replace(
                            &mut arena,
                            SkipListArena::new(pool.clone(), 64 << 20).unwrap(),
                        );
                        old.release();
                    }
                    i += 1;
                    arena
                        .insert(format!("k{i:015}").as_bytes(), &value, i, OpKind::Put)
                        .unwrap();
                });
            },
        );
    }
    group.finish();
}

fn get_bench(c: &mut Criterion) {
    let pool = PmemPool::new(128 << 20, DeviceModel::dram(), Arc::new(Stats::new())).unwrap();
    let arena = SkipListArena::new(pool, 64 << 20).unwrap();
    let n = 100_000u64;
    for i in 0..n {
        arena
            .insert(
                format!("k{i:015}").as_bytes(),
                &[1u8; 64],
                i + 1,
                OpKind::Put,
            )
            .unwrap();
    }
    let list = arena.list();
    let mut group = c.benchmark_group("skiplist_get");
    group.bench_function("hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % n;
            assert!(list.get(format!("k{i:015}").as_bytes()).is_some());
        });
    });
    group.bench_function("miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            assert!(list.get(format!("x{i:015}").as_bytes()).is_none());
        });
    });
    group.finish();
}

criterion_group!(benches, insert_bench, get_bench);
criterion_main!(benches);
