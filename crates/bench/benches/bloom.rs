//! Criterion micro-benchmarks of the mergeable bloom filter (§4.6).

use criterion::{criterion_group, criterion_main, Criterion};
use miodb_bloom::BloomFilter;

fn bloom_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    group.bench_function("insert", |b| {
        let mut f = BloomFilter::with_bits_per_key(100_000, 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            f.insert(&i.to_le_bytes());
        });
    });

    let mut filled = BloomFilter::with_bits_per_key(100_000, 16);
    for i in 0..100_000u64 {
        filled.insert(&i.to_le_bytes());
    }
    group.bench_function("may_contain_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            assert!(filled.may_contain(&i.to_le_bytes()));
        });
    });
    group.bench_function("may_contain_miss", |b| {
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            criterion::black_box(filled.may_contain(&i.to_le_bytes()));
        });
    });
    group.bench_function("or_merge", |b| {
        let other = filled.clone();
        let mut acc = filled.clone();
        b.iter(|| {
            acc.merge(&other).unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bloom_ops);
criterion_main!(benches);
