//! Ablation: one-piece flushing vs per-entry merging into a big skip list
//! (paper §4.2 / Principle 2, Figure 12's mechanism).
//!
//! `one_piece` copies a whole MemTable arena into NVM with one memcpy plus
//! pointer swizzling; `per_entry` is what NoveLSM does — insert every KV
//! into a large persistent skip list one by one.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use miodb_common::{OpKind, Stats};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_skiplist::{flush::flush_and_swizzle, GrowableSkipList, SkipListArena};

fn build_memtable(dram: &Arc<PmemPool>, entries: u64, vlen: usize) -> SkipListArena {
    let arena = SkipListArena::new(dram.clone(), 16 << 20).unwrap();
    let value = vec![9u8; vlen];
    for i in 0..entries {
        arena
            .insert(format!("k{i:015}").as_bytes(), &value, i + 1, OpKind::Put)
            .unwrap();
    }
    arena
}

fn flush_ablation(c: &mut Criterion) {
    let entries = 2_000u64;
    let vlen = 1024usize;
    let mut group = c.benchmark_group("flush_ablation");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(entries * (16 + vlen as u64)));

    group.bench_with_input(BenchmarkId::new("one_piece", entries), &(), |b, ()| {
        let stats = Arc::new(Stats::new());
        let dram = PmemPool::new(64 << 20, DeviceModel::dram(), stats.clone()).unwrap();
        let nvm = PmemPool::new(1 << 30, DeviceModel::nvm(), stats).unwrap();
        let mem = build_memtable(&dram, entries, vlen);
        b.iter(|| {
            let (_list, table) = flush_and_swizzle(&mem, &nvm).unwrap();
            nvm.free(table.region);
        });
    });

    group.bench_with_input(BenchmarkId::new("per_entry", entries), &(), |b, ()| {
        let stats = Arc::new(Stats::new());
        let dram = PmemPool::new(64 << 20, DeviceModel::dram(), stats.clone()).unwrap();
        let nvm = PmemPool::new(1 << 30, DeviceModel::nvm(), stats).unwrap();
        let mem = build_memtable(&dram, entries, vlen);
        // Pre-populate the big list so inserts pay realistic search depths.
        let big = GrowableSkipList::new(nvm.clone(), 8 << 20).unwrap();
        for i in 0..20_000u64 {
            big.apply(
                format!("p{i:015}").as_bytes(),
                &[0u8; 64],
                i + 1,
                OpKind::Put,
            )
            .unwrap();
        }
        b.iter(|| {
            for e in mem.list().iter() {
                big.apply(&e.key, &e.value, e.seq, e.kind).unwrap();
            }
        });
    });
    group.finish();
}

criterion_group!(benches, flush_ablation);
criterion_main!(benches);
