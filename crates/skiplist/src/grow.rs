//! The data repository: a huge, growable skip list at the bottom level.
//!
//! Lazy-copy compaction (paper §4.4) physically copies the newest version
//! of every key from the last elastic-buffer level into this list and
//! discards outdated versions. Unlike PMTables, the repository holds **at
//! most one version per key** and no tombstones — a tombstone arriving from
//! above physically removes the key here.
//!
//! The list grows by chaining fixed-size chunks allocated from the NVM
//! pool; nodes reference each other with pool-global offsets, so chunk
//! boundaries are invisible to traversal.
//!
//! The paper updates same-sized values in place; we substitute
//! insert-new-node + atomic bypass of the old one, which has identical
//! ordering behaviour but stays data-race-free for concurrent lock-free
//! readers (documented in `DESIGN.md`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use miodb_common::{Error, OpKind, Result, SequenceNumber};
use miodb_pmem::{PmemPool, PmemRegion};
use parking_lot::Mutex;

use crate::node::{self, find_preds, node_size, raw, LookupResult, SkipList, MAX_HEIGHT};

/// What [`GrowableSkipList::apply`] did with an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The key was new; a node was inserted.
    Inserted,
    /// An older version existed and was replaced (old node bypassed).
    Updated,
    /// A tombstone removed an existing key.
    Deleted,
    /// A tombstone arrived for a key the repository never had.
    DeletedAbsent,
    /// The repository already holds a version at least as new; the entry
    /// was discarded.
    Superseded,
}

#[derive(Debug)]
struct GrowState {
    chunks: Vec<PmemRegion>,
    /// Next free pool-global offset in the current chunk.
    cursor: u64,
    /// End of the current chunk.
    end: u64,
}

/// A growable, single-version-per-key persistent skip list.
///
/// Writers (the lazy-copy compactor) must be serialized externally;
/// concurrent readers are lock-free (same discipline as
/// [`SkipListArena`](crate::SkipListArena)).
pub struct GrowableSkipList {
    pool: Arc<PmemPool>,
    head: u64,
    chunk_size: usize,
    /// When true, tombstones are stored as entries (NoveLSM's big mutable
    /// MemTable needs them to shadow older SSTable versions); when false,
    /// a tombstone physically removes the key (MioDB's bottom repository).
    keep_tombstones: bool,
    state: Mutex<GrowState>,
    len: AtomicU64,
    data_bytes: AtomicU64,
    rng: AtomicU64,
}

impl std::fmt::Debug for GrowableSkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrowableSkipList")
            .field("head", &self.head)
            .field("len", &self.len())
            .field("chunks", &self.state.lock().chunks.len())
            .finish()
    }
}

impl GrowableSkipList {
    /// Creates an empty repository that grows in `chunk_size`-byte chunks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PoolExhausted`] if the first chunk cannot be
    /// allocated, or [`Error::InvalidArgument`] for unusably small chunks.
    pub fn new(pool: Arc<PmemPool>, chunk_size: usize) -> Result<GrowableSkipList> {
        Self::with_tombstone_mode(pool, chunk_size, false)
    }

    /// Like [`GrowableSkipList::new`], but tombstones are stored as
    /// regular entries instead of removing keys — required when the list
    /// sits *above* other persistent data (NoveLSM's big NVM MemTable).
    pub fn new_keeping_tombstones(
        pool: Arc<PmemPool>,
        chunk_size: usize,
    ) -> Result<GrowableSkipList> {
        Self::with_tombstone_mode(pool, chunk_size, true)
    }

    fn with_tombstone_mode(
        pool: Arc<PmemPool>,
        chunk_size: usize,
        keep_tombstones: bool,
    ) -> Result<GrowableSkipList> {
        let head_size = node_size(MAX_HEIGHT, 0, 0);
        if (chunk_size as u64) < head_size * 4 {
            return Err(Error::InvalidArgument(format!(
                "repository chunk size {chunk_size} too small"
            )));
        }
        let first = pool.alloc(chunk_size)?;
        let head = first.offset;
        raw::write_header(&pool, head, 0, 0, 0, MAX_HEIGHT, OpKind::Put);
        for level in 0..MAX_HEIGHT {
            pool.atomic_u64(raw::tower_slot(head, level))
                .store(0, Ordering::Relaxed);
        }
        pool.charge_write(head_size as usize);
        Ok(GrowableSkipList {
            rng: AtomicU64::new(crate::arena::next_seed(head ^ 0xD1B5_4A32_D192_ED03)),
            pool,
            head,
            chunk_size,
            keep_tombstones,
            state: Mutex::new(GrowState {
                cursor: head + head_size,
                end: first.end(),
                chunks: vec![first],
            }),
            len: AtomicU64::new(0),
            data_bytes: AtomicU64::new(0),
        })
    }

    /// Reconstructs a repository from manifest state after a restart.
    #[allow(clippy::too_many_arguments)] // mirrors the manifest record
    pub fn from_parts(
        pool: Arc<PmemPool>,
        head: u64,
        chunk_size: usize,
        chunks: Vec<PmemRegion>,
        cursor: u64,
        end: u64,
        len: u64,
        data_bytes: u64,
    ) -> GrowableSkipList {
        GrowableSkipList {
            rng: AtomicU64::new(crate::arena::next_seed(head ^ 0xD1B5_4A32_D192_ED03)),
            pool,
            head,
            chunk_size,
            keep_tombstones: false,
            state: Mutex::new(GrowState {
                chunks,
                cursor,
                end,
            }),
            len: AtomicU64::new(len),
            data_bytes: AtomicU64::new(data_bytes),
        }
    }

    /// Manifest state: `(head, chunks, cursor, end, len, data_bytes)`.
    pub fn parts(&self) -> (u64, Vec<PmemRegion>, u64, u64, u64, u64) {
        let s = self.state.lock();
        (
            self.head,
            s.chunks.clone(),
            s.cursor,
            s.end,
            self.len.load(Ordering::Acquire),
            self.data_bytes.load(Ordering::Acquire),
        )
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    /// Returns `true` if the repository holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total user bytes (keys + values) of live entries.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes.load(Ordering::Acquire)
    }

    /// Total NVM bytes held by the repository's chunks.
    pub fn allocated_bytes(&self) -> u64 {
        self.state.lock().chunks.iter().map(|c| c.len).sum()
    }

    /// Read-only view.
    pub fn list(&self) -> SkipList {
        SkipList::from_raw(self.pool.clone(), self.head)
    }

    /// Point lookup: the repository holds at most one version per key and
    /// never tombstones, so a hit is always live data.
    pub fn get(&self, key: &[u8]) -> Option<LookupResult> {
        self.list().get(key)
    }

    fn random_height(&self) -> usize {
        let mut s = self.rng.load(Ordering::Relaxed);
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.rng.store(s, Ordering::Relaxed);
        let mut h = 1;
        let mut bits = s;
        while h < MAX_HEIGHT && bits.is_multiple_of(4) {
            h += 1;
            bits /= 4;
        }
        h
    }

    fn alloc_node(&self, size: u64) -> Result<u64> {
        let mut s = self.state.lock();
        if s.cursor + size > s.end {
            let chunk_len = self.chunk_size.max(size as usize);
            let chunk = self.pool.alloc(chunk_len)?;
            s.cursor = chunk.offset;
            s.end = chunk.end();
            s.chunks.push(chunk);
        }
        let off = s.cursor;
        s.cursor += size;
        Ok(off)
    }

    /// Applies one entry from a lazy-copy compaction: inserts/updates a put
    /// or removes the key for a tombstone. Entries must be applied through
    /// a single writer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PoolExhausted`] if a new chunk cannot be allocated.
    pub fn apply(
        &self,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
    ) -> Result<ApplyOutcome> {
        let pool = &*self.pool;
        let mut preds = [0u64; MAX_HEIGHT];
        let existing = find_preds(
            pool,
            self.head,
            key,
            miodb_common::MAX_SEQUENCE_NUMBER,
            &mut preds,
        );
        let existing = if existing != 0 && raw::key(pool, existing) == key {
            existing
        } else {
            0
        };

        if kind.is_delete() && !self.keep_tombstones {
            if existing == 0 {
                return Ok(ApplyOutcome::DeletedAbsent);
            }
            let removed_bytes = (raw::klen(pool, existing) + raw::vlen(pool, existing)) as u64;
            self.unlink_chain(&preds, existing, key);
            self.len.fetch_sub(1, Ordering::Release);
            self.data_bytes.fetch_sub(removed_bytes, Ordering::Release);
            return Ok(ApplyOutcome::Deleted);
        }

        if existing != 0 && raw::seq(pool, existing) >= seq {
            return Ok(ApplyOutcome::Superseded);
        }

        // Insert the new node before any existing (older) version, then
        // bypass the old chain.
        let height = self.random_height();
        let size = node_size(height, key.len(), value.len());
        let off = self.alloc_node(size)?;
        raw::write_header(pool, off, seq, key.len(), value.len(), height, kind);
        let kv_off = off + node::HEADER_BYTES + 8 * height as u64;
        pool.write_bytes(kv_off, key);
        if !value.is_empty() {
            pool.write_bytes(kv_off + key.len() as u64, value);
        }
        pool.charge_write((node::HEADER_BYTES + 8 * height as u64) as usize);

        #[allow(clippy::needless_range_loop)] // level indexes preds AND towers
        for level in 0..height {
            let succ = raw::next(pool, preds[level], level);
            pool.atomic_u64(raw::tower_slot(off, level))
                .store(succ, Ordering::Relaxed);
            raw::set_next(pool, preds[level], level, off);
        }

        let outcome = if existing != 0 {
            let old_bytes = (raw::klen(pool, existing) + raw::vlen(pool, existing)) as u64;
            self.bypass_older(&preds, off, height, key);
            self.data_bytes.fetch_sub(old_bytes, Ordering::Release);
            ApplyOutcome::Updated
        } else {
            self.len.fetch_add(1, Ordering::Release);
            ApplyOutcome::Inserted
        };
        self.data_bytes
            .fetch_add((key.len() + value.len()) as u64, Ordering::Release);
        Ok(outcome)
    }

    /// Unlinks every same-key node reachable right after `preds` (used for
    /// tombstone removal). `first` is the first such node.
    fn unlink_chain(&self, preds: &[u64; MAX_HEIGHT], first: u64, key: &[u8]) {
        let pool = &*self.pool;
        let mut victims = vec![first];
        let mut cur = raw::next(pool, first, 0);
        while cur != 0 && raw::key(pool, cur) == key {
            victims.push(cur);
            cur = raw::next(pool, cur, 0);
        }
        for v in victims {
            let h = raw::height(pool, v);
            for level in (0..h).rev() {
                if raw::next(pool, preds[level], level) == v {
                    raw::set_next(pool, preds[level], level, raw::next(pool, v, level));
                }
            }
        }
    }

    /// Bypasses older same-key nodes that now follow the freshly inserted
    /// node at `new_off`.
    fn bypass_older(&self, preds: &[u64; MAX_HEIGHT], new_off: u64, new_height: usize, key: &[u8]) {
        let pool = &*self.pool;
        let mut victims = Vec::new();
        let mut cur = raw::next(pool, new_off, 0);
        while cur != 0 && raw::key(pool, cur) == key {
            victims.push(cur);
            cur = raw::next(pool, cur, 0);
        }
        for v in victims {
            let h = raw::height(pool, v);
            for level in (0..h).rev() {
                if level < new_height && raw::next(pool, new_off, level) == v {
                    raw::set_next(pool, new_off, level, raw::next(pool, v, level));
                } else if raw::next(pool, preds[level], level) == v {
                    raw::set_next(pool, preds[level], level, raw::next(pool, v, level));
                }
            }
        }
    }

    /// Releases every chunk back to the pool, consuming the repository.
    pub fn release(self) {
        let s = self.state.into_inner();
        for c in s.chunks {
            self.pool.free(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::Stats;
    use miodb_pmem::DeviceModel;

    fn repo() -> GrowableSkipList {
        let pool = PmemPool::new(
            32 << 20,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap();
        GrowableSkipList::new(pool, 64 * 1024).unwrap()
    }

    #[test]
    fn insert_update_get() {
        let r = repo();
        assert_eq!(
            r.apply(b"k", b"v1", 1, OpKind::Put).unwrap(),
            ApplyOutcome::Inserted
        );
        assert_eq!(r.get(b"k").unwrap().value, b"v1");
        assert_eq!(
            r.apply(b"k", b"v2", 2, OpKind::Put).unwrap(),
            ApplyOutcome::Updated
        );
        assert_eq!(r.get(b"k").unwrap().value, b"v2");
        assert_eq!(r.len(), 1);
        assert_eq!(r.list().count_nodes(), 1, "old node bypassed");
    }

    #[test]
    fn superseded_entries_discarded() {
        let r = repo();
        r.apply(b"k", b"new", 10, OpKind::Put).unwrap();
        assert_eq!(
            r.apply(b"k", b"old", 5, OpKind::Put).unwrap(),
            ApplyOutcome::Superseded
        );
        assert_eq!(r.get(b"k").unwrap().value, b"new");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn tombstone_removes_key() {
        let r = repo();
        r.apply(b"k", b"v", 1, OpKind::Put).unwrap();
        assert_eq!(
            r.apply(b"k", b"", 2, OpKind::Delete).unwrap(),
            ApplyOutcome::Deleted
        );
        assert!(r.get(b"k").is_none());
        assert_eq!(r.len(), 0);
        assert_eq!(r.list().count_nodes(), 0);
    }

    #[test]
    fn tombstone_for_absent_key() {
        let r = repo();
        assert_eq!(
            r.apply(b"ghost", b"", 1, OpKind::Delete).unwrap(),
            ApplyOutcome::DeletedAbsent
        );
    }

    #[test]
    fn grows_across_chunks() {
        let r = repo();
        let value = vec![0xABu8; 1000];
        // 64 KiB chunks, ~1 KiB nodes: forces many chunk allocations.
        for i in 0..500u32 {
            r.apply(
                format!("key{i:05}").as_bytes(),
                &value,
                i as u64 + 1,
                OpKind::Put,
            )
            .unwrap();
        }
        assert_eq!(r.len(), 500);
        assert!(r.state.lock().chunks.len() > 3, "expected multiple chunks");
        for i in (0..500u32).step_by(37) {
            assert_eq!(r.get(format!("key{i:05}").as_bytes()).unwrap().value, value);
        }
        // Ordered iteration across chunk boundaries.
        let keys: Vec<Vec<u8>> = r.list().iter().map(|e| e.key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn oversized_value_gets_dedicated_chunk() {
        let r = repo();
        let huge = vec![1u8; 300 * 1024]; // bigger than the 64 KiB chunk
        r.apply(b"big", &huge, 1, OpKind::Put).unwrap();
        assert_eq!(r.get(b"big").unwrap().value, huge);
    }

    #[test]
    fn data_bytes_tracks_live_set() {
        let r = repo();
        r.apply(b"a", b"12345", 1, OpKind::Put).unwrap();
        assert_eq!(r.data_bytes(), 6);
        r.apply(b"a", b"123", 2, OpKind::Put).unwrap();
        assert_eq!(r.data_bytes(), 4);
        r.apply(b"a", b"", 3, OpKind::Delete).unwrap();
        assert_eq!(r.data_bytes(), 0);
    }

    #[test]
    fn release_frees_all_chunks() {
        let pool = PmemPool::new(
            8 << 20,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap();
        let before = pool.used_bytes();
        let r = GrowableSkipList::new(pool.clone(), 64 * 1024).unwrap();
        for i in 0..200u32 {
            r.apply(
                format!("k{i}").as_bytes(),
                &[0u8; 500],
                i as u64 + 1,
                OpKind::Put,
            )
            .unwrap();
        }
        assert!(pool.used_bytes() > before);
        r.release();
        assert_eq!(pool.used_bytes(), before);
    }

    #[test]
    fn parts_round_trip() {
        let pool = PmemPool::new(
            8 << 20,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap();
        let r = GrowableSkipList::new(pool.clone(), 64 * 1024).unwrap();
        r.apply(b"x", b"1", 1, OpKind::Put).unwrap();
        r.apply(b"y", b"2", 2, OpKind::Put).unwrap();
        let (head, chunks, cursor, end, len, bytes) = r.parts();
        drop(r);
        let r2 =
            GrowableSkipList::from_parts(pool, head, 64 * 1024, chunks, cursor, end, len, bytes);
        assert_eq!(r2.get(b"x").unwrap().value, b"1");
        assert_eq!(r2.get(b"y").unwrap().value, b"2");
        assert_eq!(r2.len(), 2);
        // Can keep growing after reconstruction.
        r2.apply(b"z", b"3", 3, OpKind::Put).unwrap();
        assert_eq!(r2.len(), 3);
    }
}
