//! One-piece flushing: bulk MemTable→NVM copy plus pointer swizzling.
//!
//! Traditional LSM stores serialize every KV pair of a flushed MemTable
//! into a block format. MioDB instead copies the *entire arena* with one
//! `memcpy` (paper §4.2): because MemTables and PMTables share one node
//! layout, the only post-copy work is rebasing each link word by the
//! constant delta between the arena's old and new base addresses.
//!
//! Swizzling happens in the background while the immutable DRAM MemTable
//! keeps serving reads; the flushed PMTable is published only after
//! [`swizzle`] completes.

use std::sync::Arc;

use miodb_common::Result;
use miodb_pmem::{PmemPool, PmemRegion};

use crate::arena::SkipListArena;
use crate::node::{raw, SkipList};

/// A PMTable produced by [`one_piece_flush`], not yet swizzled.
///
/// The table must be passed to [`swizzle`] before any reader touches it —
/// its link words still hold source-arena offsets.
#[derive(Debug)]
pub struct FlushedTable {
    /// Destination arena in the NVM pool.
    pub region: PmemRegion,
    /// Offset of the head node (== `region.offset`).
    pub head: u64,
    /// `dst_base - src_base`, as two's-complement u64: add (wrapping) to a
    /// source link word to rebase it.
    pub delta: u64,
    /// Bytes copied.
    pub bytes: u64,
    /// Number of data nodes in the table.
    pub len: usize,
    /// User bytes (keys + values) in the table.
    pub data_bytes: u64,
}

/// Copies the frozen `src` MemTable into `dst` as one bulk transfer.
///
/// Returns an unswizzled [`FlushedTable`]; call [`swizzle`] on it (possibly
/// from a background thread) before publishing.
///
/// # Errors
///
/// Returns [`miodb_common::Error::PoolExhausted`] if `dst` cannot fit the
/// arena.
pub fn one_piece_flush(src: &SkipListArena, dst: &Arc<PmemPool>) -> Result<FlushedTable> {
    let used = src.used_bytes();
    let region = dst.alloc(used as usize)?;
    dst.copy_from_pool(region.offset, src.pool(), src.head(), used as usize);
    let delta = region.offset.wrapping_sub(src.head());
    Ok(FlushedTable {
        region,
        head: region.offset,
        delta,
        bytes: used,
        len: src.len(),
        data_bytes: src.data_bytes(),
    })
}

/// Rebases every link word of a freshly flushed table by `table.delta`,
/// walking the level-0 chain. Returns the number of pointers rewritten.
///
/// The table is unpublished during swizzling, so plain (non-atomic) writes
/// are safe; each updated word is charged to the destination device as an
/// 8-byte write, modeling the paper's background swizzle cost.
pub fn swizzle(pool: &PmemPool, table: &FlushedTable) -> u64 {
    let delta = table.delta;
    let mut rewritten = 0u64;
    let mut cur = table.head;
    loop {
        let height = raw::height(pool, cur);
        let mut next0 = 0u64;
        for level in 0..height {
            let slot = raw::tower_slot(cur, level);
            let old = pool.read_u64(slot);
            let new = if old == 0 { 0 } else { old.wrapping_add(delta) };
            pool.write_u64(slot, new);
            rewritten += 1;
            if level == 0 {
                next0 = new;
            }
        }
        pool.charge_write(8 * height);
        if next0 == 0 {
            break;
        }
        cur = next0;
    }
    rewritten
}

/// Convenience wrapper: flush and swizzle in one call, returning a
/// published read-only view together with its backing region.
///
/// # Errors
///
/// Same as [`one_piece_flush`].
pub fn flush_and_swizzle(
    src: &SkipListArena,
    dst: &Arc<PmemPool>,
) -> Result<(SkipList, FlushedTable)> {
    let table = one_piece_flush(src, dst)?;
    swizzle(dst, &table);
    Ok((SkipList::from_raw(dst.clone(), table.head), table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::{OpKind, Stats};
    use miodb_pmem::DeviceModel;
    use std::sync::atomic::Ordering;

    fn pools() -> (Arc<PmemPool>, Arc<PmemPool>, Arc<Stats>) {
        let stats = Arc::new(Stats::new());
        let dram = PmemPool::new(4 << 20, DeviceModel::dram(), stats.clone()).unwrap();
        let nvm = PmemPool::new(8 << 20, DeviceModel::nvm_unthrottled(), stats.clone()).unwrap();
        (dram, nvm, stats)
    }

    #[test]
    fn flush_preserves_all_entries() {
        let (dram, nvm, _) = pools();
        let mem = SkipListArena::new(dram, 512 * 1024).unwrap();
        for i in 0..300u32 {
            mem.insert(
                format!("key{i:04}").as_bytes(),
                format!("value-{i}").as_bytes(),
                i as u64 + 1,
                OpKind::Put,
            )
            .unwrap();
        }
        let (list, table) = flush_and_swizzle(&mem, &nvm).unwrap();
        assert_eq!(table.len, 300);
        for i in 0..300u32 {
            let r = list.get(format!("key{i:04}").as_bytes()).unwrap();
            assert_eq!(r.value, format!("value-{i}").as_bytes());
            assert_eq!(r.seq, i as u64 + 1);
        }
        assert_eq!(list.count_nodes(), 300);
    }

    #[test]
    fn flush_is_one_bulk_copy() {
        let (dram, nvm, stats) = pools();
        let mem = SkipListArena::new(dram, 256 * 1024).unwrap();
        for i in 0..50u32 {
            mem.insert(
                format!("k{i}").as_bytes(),
                &[7u8; 128],
                i as u64 + 1,
                OpKind::Put,
            )
            .unwrap();
        }
        let before = stats.nvm_bytes_written.load(Ordering::Relaxed);
        let table = one_piece_flush(&mem, &nvm).unwrap();
        let after = stats.nvm_bytes_written.load(Ordering::Relaxed);
        // Exactly the used arena bytes were charged by the copy.
        assert_eq!(after - before, table.bytes);
        assert_eq!(table.bytes, mem.used_bytes());
    }

    #[test]
    fn swizzle_rewrites_every_tower_word() {
        let (dram, nvm, _) = pools();
        let mem = SkipListArena::new(dram, 256 * 1024).unwrap();
        let mut expected_words = 0u64;
        for i in 0..100u32 {
            mem.insert(
                format!("k{i:03}").as_bytes(),
                b"v",
                i as u64 + 1,
                OpKind::Put,
            )
            .unwrap();
        }
        // Count words by walking the source list.
        {
            let pool = mem.pool();
            let mut cur = mem.head();
            loop {
                expected_words += raw::height(pool, cur) as u64;
                let nxt = raw::next(pool, cur, 0);
                if nxt == 0 {
                    break;
                }
                cur = nxt;
            }
        }
        let table = one_piece_flush(&mem, &nvm).unwrap();
        let rewritten = swizzle(&nvm, &table);
        assert_eq!(rewritten, expected_words);
    }

    #[test]
    fn flushed_table_independent_of_source() {
        let (dram, nvm, _) = pools();
        let mem = SkipListArena::new(dram.clone(), 128 * 1024).unwrap();
        mem.insert(b"a", b"1", 1, OpKind::Put).unwrap();
        mem.insert(b"b", b"2", 2, OpKind::Put).unwrap();
        let (list, _t) = flush_and_swizzle(&mem, &nvm).unwrap();
        // Free the source arena entirely; flushed table must still work.
        mem.release();
        assert_eq!(list.get(b"a").unwrap().value, b"1");
        assert_eq!(list.get(b"b").unwrap().value, b"2");
    }

    #[test]
    fn empty_memtable_flushes_to_empty_table() {
        let (dram, nvm, _) = pools();
        let mem = SkipListArena::new(dram, 64 * 1024).unwrap();
        let (list, table) = flush_and_swizzle(&mem, &nvm).unwrap();
        assert_eq!(table.len, 0);
        assert!(list.is_empty());
    }

    #[test]
    fn multi_version_entries_survive_flush() {
        let (dram, nvm, _) = pools();
        let mem = SkipListArena::new(dram, 128 * 1024).unwrap();
        mem.insert(b"k", b"old", 1, OpKind::Put).unwrap();
        mem.insert(b"k", b"new", 2, OpKind::Put).unwrap();
        mem.insert(b"gone", b"x", 3, OpKind::Put).unwrap();
        mem.insert(b"gone", b"", 4, OpKind::Delete).unwrap();
        let (list, _) = flush_and_swizzle(&mem, &nvm).unwrap();
        assert_eq!(list.get(b"k").unwrap().value, b"new");
        assert_eq!(list.get(b"gone").unwrap().kind, OpKind::Delete);
        assert_eq!(list.count_nodes(), 4);
    }

    #[test]
    fn tower_offset_constant_matches_layout() {
        // Guard against accidental layout drift: the swizzle walks towers at
        // this offset.
        assert_eq!(crate::node::TOWER_OFFSET, 24);
    }
}
