//! A skip list built inside one contiguous arena.
//!
//! This is the structure used for DRAM MemTables and — because one-piece
//! flushing copies the arena verbatim — for freshly flushed PMTables. All
//! node offsets and link words are pool-global, so an arena in the DRAM
//! pool can be rebased into the NVM pool by adding a constant delta
//! (see [`crate::flush`]).
//!
//! # Write synchronization
//!
//! [`SkipListArena::insert`] takes `&self` so the arena can be shared, but
//! callers must serialize writers externally (MioDB has a single foreground
//! writer per MemTable, like LevelDB). [`SkipListArena::insert_concurrent`]
//! lifts that restriction: allocation becomes an atomic bump
//! (`fetch_add`) and link splicing a per-level compare-and-swap with
//! retry, so the members of one write group can insert in parallel
//! (RocksDB's `allow_concurrent_memtable_write`). The two insert paths
//! must not run at the same time on one arena — the engine guarantees
//! this by holding the writer mutex for the duration of a group.
//! Concurrent **readers** are safe at all times: nodes are fully written
//! before the release/CAS that publishes them, and offsets are never
//! reused within an arena so traversals cannot observe ABA.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use miodb_common::types::mv_cmp;
use miodb_common::{Error, OpKind, Result, SequenceNumber};
use miodb_pmem::{PmemPool, PmemRegion};

use crate::node::{self, node_size, raw, SkipList, MAX_HEIGHT};

/// Branching probability denominator: a node grows a level with p = 1/4.
const BRANCH: u64 = 4;

/// Process-wide seed sequence so arenas recycled at the same pool offset
/// still draw independent tower heights — identical height sequences
/// across MemTables would cap the max height of tables merged from them,
/// degenerating descents to near-linear walks.
static ARENA_SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

pub(crate) fn next_seed(salt: u64) -> u64 {
    let s = ARENA_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    // splitmix64 finish over the counter, salted by the arena offset.
    let mut z = s ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

/// A multi-version skip list owning a bump-allocated arena.
pub struct SkipListArena {
    pool: Arc<PmemPool>,
    region: PmemRegion,
    /// Next free pool-global offset.
    cursor: AtomicU64,
    /// Xorshift state for tower heights.
    rng: AtomicU64,
    /// Number of data nodes inserted.
    len: AtomicU64,
    /// Total user bytes (keys + values) inserted.
    data_bytes: AtomicU64,
}

impl std::fmt::Debug for SkipListArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipListArena")
            .field("head", &self.region.offset)
            .field("capacity", &self.region.len)
            .field("used", &self.used_bytes())
            .field("len", &self.len())
            .finish()
    }
}

impl SkipListArena {
    /// Allocates a `capacity`-byte arena in `pool` and initializes an empty
    /// list (the head node sits at the arena start).
    ///
    /// # Errors
    ///
    /// Returns [`Error::PoolExhausted`] if the pool cannot fit the arena,
    /// or [`Error::InvalidArgument`] for capacities too small for a head
    /// node.
    pub fn new(pool: Arc<PmemPool>, capacity: usize) -> Result<SkipListArena> {
        let head_size = node_size(MAX_HEIGHT, 0, 0);
        if (capacity as u64) < head_size * 2 {
            return Err(Error::InvalidArgument(format!(
                "arena capacity {capacity} too small"
            )));
        }
        let region = pool.alloc(capacity)?;
        let head = region.offset;
        raw::write_header(&pool, head, 0, 0, 0, MAX_HEIGHT, OpKind::Put);
        // Zero the head tower explicitly: the region may be recycled memory.
        for level in 0..MAX_HEIGHT {
            pool.atomic_u64(raw::tower_slot(head, level))
                .store(0, Ordering::Relaxed);
        }
        pool.charge_write(head_size as usize);
        Ok(SkipListArena {
            rng: AtomicU64::new(next_seed(head)),
            pool,
            region,
            cursor: AtomicU64::new(head + head_size),
            len: AtomicU64::new(0),
            data_bytes: AtomicU64::new(0),
        })
    }

    /// The pool this arena was allocated from.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// The arena's region within the pool.
    pub fn region(&self) -> PmemRegion {
        self.region
    }

    /// Offset of the head node (== region start).
    pub fn head(&self) -> u64 {
        self.region.offset
    }

    /// Bytes consumed so far (head node included). Clamped to the region
    /// length: a failed concurrent reservation may leave the cursor past
    /// the end, and flush copies exactly `used_bytes()`.
    pub fn used_bytes(&self) -> u64 {
        (self.cursor.load(Ordering::Acquire) - self.region.offset).min(self.region.len)
    }

    /// Bytes still available for nodes (0 once the cursor overshoots).
    pub fn remaining_bytes(&self) -> u64 {
        self.region
            .end()
            .saturating_sub(self.cursor.load(Ordering::Acquire))
    }

    /// Number of data nodes.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    /// Returns `true` if no data nodes have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total user bytes (keys + values) inserted.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes.load(Ordering::Acquire)
    }

    /// A read-only view of the list.
    pub fn list(&self) -> SkipList {
        SkipList::from_raw(self.pool.clone(), self.region.offset)
    }

    /// Checks whether an entry of the given dimensions would fit.
    pub fn fits(&self, klen: usize, vlen: usize) -> bool {
        node_size(MAX_HEIGHT, klen, vlen) <= self.remaining_bytes()
    }

    /// Arena capacity guaranteed to accept one entry of the given
    /// dimensions — engines rotating to a fresh MemTable must size it at
    /// least this large or an oversized value would rotate forever.
    pub fn capacity_for_entry(klen: usize, vlen: usize) -> usize {
        (node_size(MAX_HEIGHT, 0, 0) + node_size(MAX_HEIGHT, klen, vlen) + 128) as usize
    }

    fn random_height(&self) -> usize {
        // Weyl increment + splitmix64 finish: `fetch_add` keeps the
        // sequence collision-free under concurrent callers (a racy
        // xorshift load/store would let two threads draw the same state).
        let s = self.rng.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut bits = z ^ (z >> 31);
        let mut h = 1;
        while h < MAX_HEIGHT && bits.is_multiple_of(BRANCH) {
            h += 1;
            bits /= BRANCH;
        }
        h
    }

    /// Reserves `size` bytes with an atomic bump, returning the node
    /// offset. On exhaustion the cursor may be left past the region end —
    /// `used_bytes`/`remaining_bytes` clamp for that — which is fine
    /// because callers seal the table on [`Error::ArenaFull`].
    fn alloc_node(&self, size: u64) -> Result<u64> {
        let off = self.cursor.fetch_add(size, Ordering::AcqRel);
        if off + size > self.region.end() {
            return Err(Error::ArenaFull);
        }
        Ok(off)
    }

    /// Writes the node payload (header, key, value) at `off`, leaving the
    /// tower unlinked. Shared by both insert paths.
    fn write_node(
        &self,
        off: u64,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
        height: usize,
    ) {
        let pool = &*self.pool;
        raw::write_header(pool, off, seq, key.len(), value.len(), height, kind);
        let kv_off = off + node::HEADER_BYTES + 8 * height as u64;
        pool.write_bytes(kv_off, key);
        if !value.is_empty() {
            pool.write_bytes(kv_off + key.len() as u64, value);
        }
        pool.charge_write((node::HEADER_BYTES + 8 * height as u64) as usize);
    }

    /// Inserts a version of `key`. Multiple versions of the same key may
    /// coexist (ordered newest-first); tombstones are ordinary entries with
    /// [`OpKind::Delete`].
    ///
    /// Requires external writer serialization; see the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArenaFull`] when the arena cannot fit the node —
    /// the caller should seal this table and open a new one.
    pub fn insert(
        &self,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
    ) -> Result<()> {
        if key.len() > u32::MAX as usize || value.len() > u32::MAX as usize {
            return Err(Error::InvalidArgument("key/value too large".to_string()));
        }
        let height = self.random_height();
        let size = node_size(height, key.len(), value.len());
        let off = self.alloc_node(size)?;
        let pool = &*self.pool;

        // Write the node fully before publication.
        self.write_node(off, key, value, seq, kind, height);

        // Find predecessors and link bottom-up with release stores.
        let mut preds = [0u64; MAX_HEIGHT];
        let list = SkipList::from_raw(self.pool.clone(), self.region.offset);
        let _ = list.find_geq(key, seq, &mut preds);
        #[allow(clippy::needless_range_loop)] // level indexes preds AND towers
        for level in 0..height {
            let succ = raw::next(pool, preds[level], level);
            pool.atomic_u64(raw::tower_slot(off, level))
                .store(succ, Ordering::Relaxed);
            raw::set_next(pool, preds[level], level, off);
        }
        self.len.fetch_add(1, Ordering::Release);
        self.data_bytes
            .fetch_add((key.len() + value.len()) as u64, Ordering::Release);
        Ok(())
    }

    /// Inserts a version of `key` concurrently with other
    /// `insert_concurrent` callers on the same arena: allocation is an
    /// atomic bump, and each tower level is spliced with a
    /// compare-and-swap that retries after re-locating predecessors.
    ///
    /// Correctness notes:
    /// - `(key, seq)` positions are unique (the engine allocates unique
    ///   sequence numbers), so no two inserts compete for the same slot.
    /// - The level-0 CAS uses release ordering, publishing the fully
    ///   written node to acquire-side readers exactly like the
    ///   single-writer path.
    /// - Offsets are never recycled inside an arena, so a CAS cannot
    ///   succeed against a stale-but-reallocated successor (no ABA).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArenaFull`] when the arena cannot fit the node.
    pub fn insert_concurrent(
        &self,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
    ) -> Result<()> {
        if key.len() > u32::MAX as usize || value.len() > u32::MAX as usize {
            return Err(Error::InvalidArgument("key/value too large".to_string()));
        }
        let height = self.random_height();
        let size = node_size(height, key.len(), value.len());
        let off = self.alloc_node(size)?;
        let pool = &*self.pool;

        // Write the node fully before publication.
        self.write_node(off, key, value, seq, kind, height);

        let list = SkipList::from_raw(self.pool.clone(), self.region.offset);
        let mut preds = [0u64; MAX_HEIGHT];
        let _ = list.find_geq(key, seq, &mut preds);
        for level in 0..height {
            loop {
                let pred = preds[level];
                let succ = raw::next(pool, pred, level);
                if succ != 0 {
                    let sk = raw::key(pool, succ);
                    let ss = raw::seq(pool, succ);
                    if mv_cmp(sk, ss, key, seq) == std::cmp::Ordering::Less {
                        // A racing insert landed between pred and us; the
                        // cached predecessor is stale. Re-descend.
                        let _ = list.find_geq(key, seq, &mut preds);
                        continue;
                    }
                }
                // Point our tower at the observed successor first; the
                // successful CAS (release) then publishes node + link in
                // one step.
                pool.atomic_u64(raw::tower_slot(off, level))
                    .store(succ, Ordering::Relaxed);
                if raw::cas_next(pool, pred, level, succ, off) {
                    break;
                }
                let _ = list.find_geq(key, seq, &mut preds);
            }
        }
        self.len.fetch_add(1, Ordering::Release);
        self.data_bytes
            .fetch_add((key.len() + value.len()) as u64, Ordering::Release);
        Ok(())
    }

    /// Releases the arena back to the pool, consuming the table.
    ///
    /// Callers must guarantee no readers hold node references (MioDB frees
    /// arenas only during lazy-copy reclamation, after the tables built on
    /// them were atomically removed from the level structure).
    pub fn release(self) {
        self.pool.free(self.region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::Stats;
    use miodb_pmem::DeviceModel;

    fn arena(cap: usize) -> SkipListArena {
        let pool = PmemPool::new(8 << 20, DeviceModel::dram(), Arc::new(Stats::new())).unwrap();
        SkipListArena::new(pool, cap).unwrap()
    }

    #[test]
    fn empty_list() {
        let t = arena(64 * 1024);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.list().get(b"missing").is_none());
        assert!(t.list().is_empty());
    }

    #[test]
    fn insert_and_get() {
        let t = arena(64 * 1024);
        t.insert(b"apple", b"red", 1, OpKind::Put).unwrap();
        t.insert(b"banana", b"yellow", 2, OpKind::Put).unwrap();
        let r = t.list().get(b"apple").unwrap();
        assert_eq!(r.value, b"red");
        assert_eq!(r.seq, 1);
        assert_eq!(r.kind, OpKind::Put);
        assert_eq!(t.list().get(b"banana").unwrap().value, b"yellow");
        assert!(t.list().get(b"cherry").is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn newest_version_wins() {
        let t = arena(64 * 1024);
        t.insert(b"k", b"v1", 1, OpKind::Put).unwrap();
        t.insert(b"k", b"v2", 2, OpKind::Put).unwrap();
        t.insert(b"k", b"v3", 3, OpKind::Put).unwrap();
        let r = t.list().get(b"k").unwrap();
        assert_eq!(r.value, b"v3");
        assert_eq!(r.seq, 3);
        assert_eq!(t.list().count_nodes(), 3, "all versions retained");
    }

    #[test]
    fn tombstone_is_visible_as_newest() {
        let t = arena(64 * 1024);
        t.insert(b"k", b"v", 1, OpKind::Put).unwrap();
        t.insert(b"k", b"", 2, OpKind::Delete).unwrap();
        let r = t.list().get(b"k").unwrap();
        assert_eq!(r.kind, OpKind::Delete);
        assert_eq!(r.seq, 2);
    }

    #[test]
    fn arena_full_is_reported() {
        let t = arena(1024);
        let big = vec![0u8; 600];
        t.insert(b"a", &big, 1, OpKind::Put).unwrap();
        let err = t.insert(b"b", &big, 2, OpKind::Put).unwrap_err();
        assert!(matches!(err, Error::ArenaFull));
        // The first entry is still intact.
        assert_eq!(t.list().get(b"a").unwrap().value, big);
    }

    #[test]
    fn ordered_iteration() {
        let t = arena(1 << 20);
        let mut keys: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("key{i:05}").into_bytes())
            .collect();
        // Insert shuffled.
        let mut shuffled = keys.clone();
        let mut state = 12345u64;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        for (i, k) in shuffled.iter().enumerate() {
            t.insert(k, b"v", i as u64 + 1, OpKind::Put).unwrap();
        }
        let got: Vec<Vec<u8>> = t.list().iter().map(|e| e.key).collect();
        keys.sort();
        assert_eq!(got, keys);
    }

    #[test]
    fn same_key_versions_iterate_newest_first() {
        let t = arena(64 * 1024);
        t.insert(b"k", b"v1", 1, OpKind::Put).unwrap();
        t.insert(b"k", b"v2", 2, OpKind::Put).unwrap();
        let seqs: Vec<u64> = t.list().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 1]);
    }

    #[test]
    fn used_bytes_grows_monotonically() {
        let t = arena(1 << 20);
        let before = t.used_bytes();
        t.insert(b"key", &[0u8; 100], 1, OpKind::Put).unwrap();
        assert!(t.used_bytes() > before);
        assert_eq!(t.data_bytes(), 103);
    }

    #[test]
    fn empty_key_is_supported() {
        let t = arena(64 * 1024);
        t.insert(b"", b"root", 1, OpKind::Put).unwrap();
        assert_eq!(t.list().get(b"").unwrap().value, b"root");
    }

    #[test]
    fn release_returns_memory() {
        let pool = PmemPool::new(1 << 20, DeviceModel::dram(), Arc::new(Stats::new())).unwrap();
        let before = pool.used_bytes();
        let t = SkipListArena::new(pool.clone(), 64 * 1024).unwrap();
        assert!(pool.used_bytes() > before);
        t.release();
        assert_eq!(pool.used_bytes(), before);
    }

    #[test]
    fn iter_from_seeks_correctly() {
        let t = arena(1 << 20);
        for i in 0..50u32 {
            t.insert(
                format!("k{i:03}").as_bytes(),
                b"v",
                i as u64 + 1,
                OpKind::Put,
            )
            .unwrap();
        }
        let first = t.list().iter_from(b"k025").next().unwrap();
        assert_eq!(first.key, b"k025");
        // Seeking between keys lands on the next one.
        let first = t.list().iter_from(b"k0255").next().unwrap();
        assert_eq!(first.key, b"k026");
        // Seeking past the end yields nothing.
        assert!(t.list().iter_from(b"z").next().is_none());
    }

    #[test]
    fn concurrent_inserts_preserve_order_and_visibility() {
        let t = Arc::new(arena(4 << 20));
        let threads = 8usize;
        let per = 1_500u64;
        std::thread::scope(|s| {
            for tid in 0..threads as u64 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let k = format!("key{:06}", i * threads as u64 + tid);
                        let v = format!("val{tid}-{i}");
                        let seq = tid * per + i + 1;
                        t.insert_concurrent(k.as_bytes(), v.as_bytes(), seq, OpKind::Put)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(t.len(), threads * per as usize);
        // Every key readable with the value written by its owner thread.
        for tid in 0..threads as u64 {
            for i in (0..per).step_by(97) {
                let k = format!("key{:06}", i * threads as u64 + tid);
                let r = t.list().get(k.as_bytes()).unwrap();
                assert_eq!(r.value, format!("val{tid}-{i}").into_bytes());
            }
        }
        // Level-0 walk is fully sorted and complete.
        let mut n = 0usize;
        let mut prev: Option<(Vec<u8>, u64)> = None;
        for e in t.list().iter() {
            if let Some((pk, ps)) = &prev {
                assert!(
                    mv_cmp(pk, *ps, &e.key, e.seq) == std::cmp::Ordering::Less,
                    "order violated at {:?}",
                    e.key
                );
            }
            prev = Some((e.key.clone(), e.seq));
            n += 1;
        }
        assert_eq!(n, threads * per as usize, "level-0 chain lost nodes");
    }

    #[test]
    fn concurrent_inserts_on_same_key_keep_all_versions() {
        let t = Arc::new(arena(4 << 20));
        let threads = 6u64;
        let per = 500u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let seq = tid * per + i + 1;
                        t.insert_concurrent(b"hot", format!("{seq}").as_bytes(), seq, OpKind::Put)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(t.list().count_nodes(), (threads * per) as usize);
        let r = t.list().get(b"hot").unwrap();
        assert_eq!(r.seq, threads * per, "newest version must win");
        // Versions iterate newest-first with no duplicates.
        let seqs: Vec<u64> = t.list().iter().map(|e| e.seq).collect();
        let want: Vec<u64> = (1..=threads * per).rev().collect();
        assert_eq!(seqs, want);
    }

    #[test]
    fn concurrent_arena_full_leaves_list_consistent() {
        let t = Arc::new(arena(32 * 1024));
        let full = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = t.clone();
                let full = full.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = format!("k{tid}-{i:04}");
                        match t.insert_concurrent(
                            k.as_bytes(),
                            &[7u8; 128],
                            tid * 200 + i + 1,
                            OpKind::Put,
                        ) {
                            Ok(()) => {}
                            Err(Error::ArenaFull) => {
                                full.store(true, Ordering::Release);
                                break;
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                });
            }
        });
        assert!(full.load(Ordering::Acquire), "arena was sized to overflow");
        assert!(
            t.used_bytes() <= t.region.len,
            "used_bytes must stay clamped"
        );
        assert_eq!(t.remaining_bytes(), 0);
        // Everything that was acknowledged is readable and ordered.
        assert_eq!(t.list().count_nodes(), t.len());
    }

    #[test]
    fn height_distribution_is_geometric() {
        let t = arena(4 << 20);
        let mut heights = [0usize; MAX_HEIGHT + 1];
        for _ in 0..10_000 {
            heights[t.random_height()] += 1;
        }
        assert!(heights[1] > 6_000, "h=1 count {}", heights[1]);
        assert!(heights[2] > 1_000, "h=2 count {}", heights[2]);
        assert!(heights[2] < heights[1]);
        assert_eq!(heights[0], 0);
    }
}
