//! Zero-copy compaction: merging two PMTables by pointer re-linking only.
//!
//! Implements §4.3 of the paper. The *newtable* (younger) is drained node
//! by node into the *oldtable* (older); no KV bytes move. For each run of
//! same-key versions at the front of the newtable:
//!
//! 1. the newest node `n` is recorded in the persistent [`InsertionMark`]
//!    (phase `Unlink`),
//! 2. the older duplicates behind it are unlinked and dropped (they are
//!    superseded by `n`),
//! 3. `n` is unlinked from the newtable,
//! 4. the mark advances to phase `Splice` and `n` is spliced into the
//!    oldtable at its multi-version position, bypassing any older
//!    duplicates already there,
//! 5. the mark is cleared.
//!
//! All link updates are single atomic release stores, so concurrent point
//! lookups never block; a reader that consults **newtable → mark →
//! oldtable** (see [`InsertionMark::read`]) observes every node at every
//! instant of the merge (paper §4.3, cases 1–2).
//!
//! Unlinked nodes keep their outgoing pointers, so a reader standing on one
//! continues traversing correctly; their memory is reclaimed only by the
//! later lazy-copy compaction (lazy freeing, §4.4).
//!
//! The merge is **resumable**: if the process dies mid-step (simulated via
//! [`MergeLimits::abandon_after_link_writes`] plus a pool snapshot),
//! re-running [`zero_copy_merge`] first completes the marked node's step —
//! every sub-operation is idempotent — then continues draining.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use miodb_common::{Result, SequenceNumber};
use miodb_pmem::{PmemPool, PmemRegion};

use crate::node::{raw, LookupResult, MAX_HEIGHT};

/// Merge progress phase, persisted in the low bits of the mark word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePhase {
    /// The marked node is being unlinked from the newtable.
    Unlink = 0,
    /// The marked node is being spliced into the oldtable.
    Splice = 1,
}

/// A persistent one-word slot naming the node currently in flight between
/// the two tables of a zero-copy merge.
///
/// Readers call [`InsertionMark::read`] between searching the newtable and
/// the oldtable so the in-flight node is never missed. The slot lives in
/// NVM, making merges crash-resumable.
#[derive(Clone)]
pub struct InsertionMark {
    pool: Arc<PmemPool>,
    region: PmemRegion,
}

impl std::fmt::Debug for InsertionMark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InsertionMark")
            .field("slot", &self.region.offset)
            .field("value", &self.load_raw())
            .finish()
    }
}

impl InsertionMark {
    /// Allocates a cleared mark slot in `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`miodb_common::Error::PoolExhausted`] if the pool is full.
    pub fn alloc(pool: &Arc<PmemPool>) -> Result<InsertionMark> {
        let region = pool.alloc(64)?;
        pool.atomic_u64(region.offset).store(0, Ordering::Release);
        Ok(InsertionMark {
            pool: pool.clone(),
            region,
        })
    }

    /// Re-attaches to a mark slot that survived a crash (its offset comes
    /// from the manifest).
    pub fn from_raw(pool: Arc<PmemPool>, region: PmemRegion) -> InsertionMark {
        InsertionMark { pool, region }
    }

    /// The slot's region (persisted in the manifest).
    pub fn region(&self) -> PmemRegion {
        self.region
    }

    fn load_raw(&self) -> u64 {
        self.pool
            .atomic_u64(self.region.offset)
            .load(Ordering::Acquire)
    }

    /// Current marked node and phase, if a merge step is in flight.
    pub fn load(&self) -> Option<(u64, MergePhase)> {
        let v = self.load_raw();
        if v == 0 {
            None
        } else {
            let phase = if v & 1 == 0 {
                MergePhase::Unlink
            } else {
                MergePhase::Splice
            };
            Some((v & !7, phase))
        }
    }

    fn set(&self, node: u64, phase: MergePhase) {
        debug_assert_eq!(node & 7, 0);
        self.pool
            .atomic_u64(self.region.offset)
            .store(node | phase as u64, Ordering::Release);
        self.pool.charge_write(8);
    }

    fn clear(&self) {
        self.pool
            .atomic_u64(self.region.offset)
            .store(0, Ordering::Release);
        // Bump the step counter (second word of the slot): readers use it
        // to detect that a merge step completed during their descent.
        self.pool
            .atomic_u64(self.region.offset + 8)
            .fetch_add(1, Ordering::Release);
        self.pool.charge_write(16);
    }

    /// Number of completed merge steps through this mark (monotonic).
    pub fn step_count(&self) -> u64 {
        self.pool
            .atomic_u64(self.region.offset + 8)
            .load(Ordering::Acquire)
    }

    /// Checks whether the in-flight node (if any) matches `key`, returning
    /// its version. Safe to call concurrently with the merge: node payloads
    /// are immutable and the mark always names a fully written node.
    pub fn read(&self, key: &[u8]) -> Option<LookupResult> {
        let (node, _) = self.load()?;
        let pool = &*self.pool;
        raw::charge_visit(pool);
        if raw::key(pool, node) != key {
            return None;
        }
        let value = raw::value(pool, node).to_vec();
        pool.charge_read(value.len());
        Some(LookupResult {
            value,
            seq: raw::seq(pool, node),
            kind: raw::kind(pool, node),
        })
    }

    /// Materializes the in-flight node (key included) as an owned entry,
    /// for merging iterators that must not miss it.
    pub fn entry(&self) -> Option<crate::iter::OwnedEntry> {
        let (node, _) = self.load()?;
        let pool = &*self.pool;
        raw::charge_visit(pool);
        Some(crate::iter::OwnedEntry {
            key: raw::key(pool, node).to_vec(),
            value: raw::value(pool, node).to_vec(),
            seq: raw::seq(pool, node),
            kind: raw::kind(pool, node),
        })
    }

    /// Frees the slot. Callers must ensure no merge is using it.
    pub fn release(self) {
        self.pool.free(self.region);
    }
}

/// Counters describing one merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Nodes re-linked from the newtable into the oldtable.
    pub moved: u64,
    /// Newtable nodes dropped because a newer version superseded them.
    pub dropped_new: u64,
    /// Oldtable nodes bypassed (logically deleted) by newer versions.
    pub bypassed_old: u64,
    /// Atomic link-word writes performed.
    pub link_writes: u64,
}

/// Result of [`zero_copy_merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The newtable was fully drained into the oldtable.
    Complete(MergeStats),
    /// A limit fired; call [`zero_copy_merge`] again to continue.
    Paused(MergeStats),
}

impl MergeOutcome {
    /// The stats regardless of completion.
    pub fn stats(&self) -> MergeStats {
        match *self {
            MergeOutcome::Complete(s) | MergeOutcome::Paused(s) => s,
        }
    }

    /// Returns `true` if the merge finished.
    pub fn is_complete(&self) -> bool {
        matches!(self, MergeOutcome::Complete(_))
    }
}

/// Optional stopping conditions, used by tests and incremental compactors.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeLimits {
    /// Stop (cleanly, between steps) after this many key runs.
    pub max_steps: Option<usize>,
    /// Abandon abruptly after this many link writes, leaving the mark and
    /// half-updated pointers in place — simulates a crash mid-step.
    pub abandon_after_link_writes: Option<u64>,
}

impl MergeLimits {
    /// No limits: run to completion.
    pub fn none() -> MergeLimits {
        MergeLimits::default()
    }
}

struct Ctx<'a> {
    pool: &'a PmemPool,
    stats: MergeStats,
    abandon_after: Option<u64>,
    abandoned: bool,
}

impl<'a> Ctx<'a> {
    /// Performs one atomic link write; returns false if the crash limit
    /// fired (caller must unwind immediately without cleanup).
    #[must_use]
    fn store_link(&mut self, node: u64, level: usize, target: u64) -> bool {
        if let Some(max) = self.abandon_after {
            if self.stats.link_writes >= max {
                self.abandoned = true;
                return false;
            }
        }
        raw::set_next(self.pool, node, level, target);
        self.stats.link_writes += 1;
        true
    }

    fn find_preds(
        &self,
        head: u64,
        key: &[u8],
        seq: SequenceNumber,
        preds: &mut [u64; MAX_HEIGHT],
    ) {
        crate::node::find_preds(self.pool, head, key, seq, preds);
    }

    /// Unlinks `node` from the list rooted at `head` if present. Idempotent.
    #[must_use]
    fn unlink(&mut self, head: u64, node: u64) -> bool {
        let pool = self.pool;
        let key = raw::key(pool, node).to_vec();
        let seq = raw::seq(pool, node);
        let height = raw::height(pool, node);
        let mut preds = [0u64; MAX_HEIGHT];
        self.find_preds(head, &key, seq, &mut preds);
        for level in (0..height).rev() {
            if raw::next(pool, preds[level], level) == node {
                let succ = raw::next(pool, node, level);
                if !self.store_link(preds[level], level, succ) {
                    return false;
                }
            }
        }
        true
    }

    /// Splices `node` into the oldtable at its multi-version position,
    /// dropping it if a newer version already exists there and bypassing
    /// older duplicates. Idempotent.
    #[must_use]
    fn splice(&mut self, old_head: u64, node: u64) -> bool {
        let pool = self.pool;
        let key = raw::key(pool, node).to_vec();
        let seq = raw::seq(pool, node);
        let height = raw::height(pool, node);
        let mut preds = [0u64; MAX_HEIGHT];
        self.find_preds(old_head, &key, seq, &mut preds);

        // A same-key predecessor is necessarily newer (multi-version order):
        // the incoming node is superseded and dropped.
        if preds[0] != old_head && raw::key(pool, preds[0]) == key.as_slice() {
            self.stats.dropped_new += 1;
            return true;
        }

        // Bypass older duplicates already in the oldtable. They sit directly
        // after the insertion position (or after `node` itself on resume).
        let mut dups = Vec::new();
        let mut s = raw::next(pool, preds[0], 0);
        while s != 0 {
            if s == node {
                s = raw::next(pool, s, 0);
                continue;
            }
            if raw::key(pool, s) != key.as_slice() {
                break;
            }
            raw::charge_visit(pool);
            dups.push(s);
            s = raw::next(pool, s, 0);
        }
        for dup in dups {
            let dh = raw::height(pool, dup);
            for level in (0..dh).rev() {
                // The predecessor of `dup` at this level is either the
                // already-spliced `node` or the position predecessor.
                if level < height && raw::next(pool, node, level) == dup {
                    let succ = raw::next(pool, dup, level);
                    if !self.store_link(node, level, succ) {
                        return false;
                    }
                } else if raw::next(pool, preds[level], level) == dup {
                    let succ = raw::next(pool, dup, level);
                    if !self.store_link(preds[level], level, succ) {
                        return false;
                    }
                }
            }
            self.stats.bypassed_old += 1;
        }

        // Link bottom-up so the node becomes reachable at level 0 first.
        #[allow(clippy::needless_range_loop)] // level indexes preds AND towers
        for level in 0..height {
            let succ = raw::next(pool, preds[level], level);
            if succ == node {
                continue; // already linked here (resume)
            }
            if !self.store_link(node, level, succ) {
                return false;
            }
            if !self.store_link(preds[level], level, node) {
                return false;
            }
        }
        self.stats.moved += 1;
        true
    }
}

/// Merges the list rooted at `new_head` into the list rooted at
/// `old_head` by pointer re-linking, using `mark` for reader visibility
/// and crash resumability. See the module docs for the step protocol.
///
/// If `mark` is set on entry, the interrupted step is completed first
/// (crash recovery, paper §4.7).
pub fn zero_copy_merge(
    pool: &Arc<PmemPool>,
    new_head: u64,
    old_head: u64,
    mark: &InsertionMark,
    limits: MergeLimits,
) -> MergeOutcome {
    let mut ctx = Ctx {
        pool,
        stats: MergeStats::default(),
        abandon_after: limits.abandon_after_link_writes,
        abandoned: false,
    };

    // Crash-recovery prelude: finish the marked node's step.
    if let Some((node, phase)) = mark.load() {
        if phase == MergePhase::Unlink {
            // Older duplicates of the marked node may still sit at the
            // newtable front; drop them first, then unlink the node itself.
            if !drop_front_duplicates(&mut ctx, new_head, node) {
                return MergeOutcome::Paused(ctx.stats);
            }
            if !ctx.unlink(new_head, node) {
                return MergeOutcome::Paused(ctx.stats);
            }
            mark.set(node, MergePhase::Splice);
        }
        if !ctx.splice(old_head, node) {
            return MergeOutcome::Paused(ctx.stats);
        }
        mark.clear();
    }

    let mut steps = 0usize;
    loop {
        if let Some(max) = limits.max_steps {
            if steps >= max {
                return MergeOutcome::Paused(ctx.stats);
            }
        }
        let first = raw::next(pool, new_head, 0);
        if first == 0 {
            return MergeOutcome::Complete(ctx.stats);
        }
        mark.set(first, MergePhase::Unlink);
        if !drop_front_duplicates(&mut ctx, new_head, first) {
            return MergeOutcome::Paused(ctx.stats);
        }
        if !ctx.unlink(new_head, first) {
            return MergeOutcome::Paused(ctx.stats);
        }
        mark.set(first, MergePhase::Splice);
        if !ctx.splice(old_head, first) {
            return MergeOutcome::Paused(ctx.stats);
        }
        mark.clear();
        steps += 1;
    }
}

/// Mark-aware point lookup for the **newtable** of an in-flight merge
/// (the paper's §4.3 Case 2): a traversal that stepped onto the marked
/// node while it was being spliced would follow its rewritten pointers
/// into the oldtable and silently miss the rest of the newtable. This
/// descent therefore never crosses the currently marked node — on
/// encountering it, the whole descent restarts from the head, where the
/// unlink (which precedes the splice phase) has already bypassed it.
///
/// Callers follow the full protocol: `get_skip_marked(new) -> mark.read ->
/// old.get`, so the marked node itself is still found via the mark.
pub fn get_skip_marked(
    list: &crate::SkipList,
    key: &[u8],
    mark: &InsertionMark,
) -> Option<LookupResult> {
    let pool = list.pool().clone();
    let head = list.head();
    'attempt: for _ in 0..1024 {
        let marked = mark.load().map(|(n, _)| n).unwrap_or(0);
        let mut x = head;
        let mut visits = 0u64;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                let nxt = raw::next(&pool, x, level);
                if nxt == 0 {
                    break;
                }
                // Check the attempt-start snapshot *and* the live mark on
                // every step: a merge step can complete and mark a
                // different node mid-descent, and crossing that newly
                // marked node while its tower is rewritten into the
                // oldtable loses the rest of the newtable (the stale
                // `marked` snapshot alone missed exactly that — the root
                // cause of the multi_writer_stress lost-read flake).
                if nxt == marked || Some(nxt) == mark.load().map(|(n, _)| n) {
                    // The in-flight node is (or just became) unsafe to
                    // cross; restart from the head, which already bypasses
                    // it (unlink precedes the splice phase).
                    pool.charge_read_batch(visits, 32);
                    continue 'attempt;
                }
                visits += 1;
                let nk = raw::key(&pool, nxt);
                let ns = raw::seq(&pool, nxt);
                if miodb_common::types::mv_cmp(nk, ns, key, miodb_common::MAX_SEQUENCE_NUMBER)
                    == std::cmp::Ordering::Less
                {
                    x = nxt;
                } else {
                    break;
                }
            }
        }
        let node = raw::next(&pool, x, 0);
        pool.charge_read_batch(visits, 32);
        if node == 0 || node == marked {
            // Defer the marked node to the mark-read step of the protocol.
            if node != 0 {
                continue 'attempt;
            }
            return None;
        }
        if raw::key(&pool, node) != key {
            return None;
        }
        let value = raw::value(&pool, node).to_vec();
        pool.charge_read(value.len());
        return Some(LookupResult {
            value,
            seq: raw::seq(&pool, node),
            kind: raw::kind(&pool, node),
        });
    }
    // Practically unreachable (requires colliding with the in-flight node
    // 1024 consecutive times); the caller's mark/oldtable steps still
    // cover the marked node itself.
    None
}

/// Unlinks and drops every node after `first` at the newtable front that
/// shares its key (they are older versions, superseded by `first`). The
/// older duplicates are removed *before* `first` so that a concurrent
/// reader searching newtable→mark→oldtable always finds the newest version
/// first. Returns false if the crash limit fired.
#[must_use]
fn drop_front_duplicates(ctx: &mut Ctx<'_>, new_head: u64, first: u64) -> bool {
    let pool = ctx.pool;
    let key = raw::key(pool, first).to_vec();
    let mut dups = Vec::new();
    let mut cur = raw::next(pool, first, 0);
    while cur != 0 && raw::key(pool, cur) == key.as_slice() {
        raw::charge_visit(pool);
        dups.push(cur);
        cur = raw::next(pool, cur, 0);
    }
    for d in dups {
        if !ctx.unlink(new_head, d) {
            return false;
        }
        ctx.stats.dropped_new += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SkipList;
    use crate::SkipListArena;
    use miodb_common::{OpKind, Stats};
    use miodb_pmem::{DeviceModel, PmemPool};

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(
            16 << 20,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap()
    }

    fn table(pool: &Arc<PmemPool>, entries: &[(&[u8], &[u8], u64)]) -> SkipListArena {
        let t = SkipListArena::new(pool.clone(), 1 << 20).unwrap();
        for (k, v, s) in entries {
            t.insert(k, v, *s, OpKind::Put).unwrap();
        }
        t
    }

    fn merged_view(pool: &Arc<PmemPool>, old: &SkipListArena) -> SkipList {
        SkipList::from_raw(pool.clone(), old.head())
    }

    #[test]
    fn merge_disjoint_tables() {
        let p = pool();
        let new = table(&p, &[(b"b", b"2", 10), (b"d", b"4", 11)]);
        let old = table(&p, &[(b"a", b"1", 1), (b"c", b"3", 2)]);
        let mark = InsertionMark::alloc(&p).unwrap();
        let out = zero_copy_merge(&p, new.head(), old.head(), &mark, MergeLimits::none());
        assert!(out.is_complete());
        assert_eq!(out.stats().moved, 2);
        assert_eq!(out.stats().dropped_new, 0);
        let m = merged_view(&p, &old);
        let keys: Vec<Vec<u8>> = m.iter().map(|e| e.key).collect();
        assert_eq!(
            keys,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
        assert!(SkipList::from_raw(p.clone(), new.head()).is_empty());
        assert!(mark.load().is_none());
    }

    #[test]
    fn merge_dedups_overlapping_keys() {
        let p = pool();
        // Newtable strictly newer.
        let new = table(&p, &[(b"a", b"new-a", 10), (b"b", b"new-b", 11)]);
        let old = table(
            &p,
            &[
                (b"a", b"old-a", 1),
                (b"b", b"old-b", 2),
                (b"c", b"old-c", 3),
            ],
        );
        let mark = InsertionMark::alloc(&p).unwrap();
        let out = zero_copy_merge(&p, new.head(), old.head(), &mark, MergeLimits::none());
        let stats = out.stats();
        assert_eq!(stats.moved, 2);
        assert_eq!(stats.bypassed_old, 2);
        let m = merged_view(&p, &old);
        assert_eq!(m.get(b"a").unwrap().value, b"new-a");
        assert_eq!(m.get(b"b").unwrap().value, b"new-b");
        assert_eq!(m.get(b"c").unwrap().value, b"old-c");
        assert_eq!(m.count_nodes(), 3, "old duplicates bypassed");
    }

    #[test]
    fn merge_dedups_within_newtable() {
        let p = pool();
        let new = table(&p, &[(b"k", b"v1", 5), (b"k", b"v2", 6), (b"k", b"v3", 7)]);
        let old = table(&p, &[]);
        let mark = InsertionMark::alloc(&p).unwrap();
        let out = zero_copy_merge(&p, new.head(), old.head(), &mark, MergeLimits::none());
        let stats = out.stats();
        assert_eq!(stats.moved, 1);
        assert_eq!(stats.dropped_new, 2);
        let m = merged_view(&p, &old);
        assert_eq!(m.get(b"k").unwrap().value, b"v3");
        assert_eq!(m.count_nodes(), 1);
    }

    #[test]
    fn merge_into_empty_old() {
        let p = pool();
        let new = table(&p, &[(b"x", b"1", 1), (b"y", b"2", 2), (b"z", b"3", 3)]);
        let old = table(&p, &[]);
        let mark = InsertionMark::alloc(&p).unwrap();
        let out = zero_copy_merge(&p, new.head(), old.head(), &mark, MergeLimits::none());
        assert_eq!(out.stats().moved, 3);
        assert_eq!(merged_view(&p, &old).count_nodes(), 3);
    }

    #[test]
    fn merge_empty_new_is_noop() {
        let p = pool();
        let new = table(&p, &[]);
        let old = table(&p, &[(b"a", b"1", 1)]);
        let mark = InsertionMark::alloc(&p).unwrap();
        let out = zero_copy_merge(&p, new.head(), old.head(), &mark, MergeLimits::none());
        assert_eq!(out.stats(), MergeStats::default());
        assert_eq!(merged_view(&p, &old).count_nodes(), 1);
    }

    #[test]
    fn tombstones_flow_through_merge() {
        let p = pool();
        let new = SkipListArena::new(p.clone(), 1 << 20).unwrap();
        new.insert(b"dead", b"", 10, OpKind::Delete).unwrap();
        let old = table(&p, &[(b"dead", b"alive", 1)]);
        let mark = InsertionMark::alloc(&p).unwrap();
        zero_copy_merge(&p, new.head(), old.head(), &mark, MergeLimits::none());
        let r = merged_view(&p, &old).get(b"dead").unwrap();
        assert_eq!(r.kind, OpKind::Delete);
        assert_eq!(r.seq, 10);
    }

    #[test]
    fn paused_merge_resumes_cleanly() {
        let p = pool();
        let entries: Vec<(Vec<u8>, Vec<u8>, u64)> = (0..100u32)
            .map(|i| {
                (
                    format!("k{i:03}").into_bytes(),
                    b"v".to_vec(),
                    100 + i as u64,
                )
            })
            .collect();
        let refs: Vec<(&[u8], &[u8], u64)> = entries
            .iter()
            .map(|(k, v, s)| (k.as_slice(), v.as_slice(), *s))
            .collect();
        let new = table(&p, &refs);
        let old = table(&p, &[(b"k050x", b"mid", 1)]);
        let mark = InsertionMark::alloc(&p).unwrap();
        let mut total_moved = 0;
        let mut rounds = 0;
        loop {
            let out = zero_copy_merge(
                &p,
                new.head(),
                old.head(),
                &mark,
                MergeLimits {
                    max_steps: Some(7),
                    abandon_after_link_writes: None,
                },
            );
            total_moved += out.stats().moved;
            rounds += 1;
            if out.is_complete() {
                break;
            }
            assert!(rounds < 100, "merge did not converge");
        }
        assert_eq!(total_moved, 100);
        let m = merged_view(&p, &old);
        assert_eq!(m.count_nodes(), 101);
        for i in 0..100u32 {
            assert!(
                m.get(format!("k{i:03}").as_bytes()).is_some(),
                "k{i:03} lost"
            );
        }
    }

    #[test]
    fn crash_mid_step_resumes_without_loss() {
        // Abandon after every possible link-write count and verify the
        // resumed merge always converges to the same correct state.
        for crash_at in 1..60u64 {
            let p = pool();
            let new = table(
                &p,
                &[
                    (b"a", b"na", 10),
                    (b"b", b"nb", 11),
                    (b"c", b"nc", 12),
                    (b"d", b"nd", 13),
                ],
            );
            let old = table(&p, &[(b"a", b"oa", 1), (b"c", b"oc", 2), (b"e", b"oe", 3)]);
            let mark = InsertionMark::alloc(&p).unwrap();
            let out = zero_copy_merge(
                &p,
                new.head(),
                old.head(),
                &mark,
                MergeLimits {
                    max_steps: None,
                    abandon_after_link_writes: Some(crash_at),
                },
            );
            if out.is_complete() {
                // crash_at beyond total writes: nothing to resume.
            } else {
                // "Restart": resume with no limits.
                let out2 = zero_copy_merge(&p, new.head(), old.head(), &mark, MergeLimits::none());
                assert!(out2.is_complete(), "crash_at={crash_at}");
            }
            let m = merged_view(&p, &old);
            assert_eq!(m.get(b"a").unwrap().value, b"na", "crash_at={crash_at}");
            assert_eq!(m.get(b"b").unwrap().value, b"nb", "crash_at={crash_at}");
            assert_eq!(m.get(b"c").unwrap().value, b"nc", "crash_at={crash_at}");
            assert_eq!(m.get(b"d").unwrap().value, b"nd", "crash_at={crash_at}");
            assert_eq!(m.get(b"e").unwrap().value, b"oe", "crash_at={crash_at}");
            assert_eq!(m.count_nodes(), 5, "crash_at={crash_at}");
            assert!(mark.load().is_none(), "crash_at={crash_at}");
            assert!(SkipList::from_raw(p.clone(), new.head()).is_empty());
        }
    }

    /// Deterministic regression for the multi_writer_stress lost-read
    /// flake (ROADMAP item 6): tables transitioning settled → merging →
    /// merged must never lose a key from the reader protocol
    /// (`get_skip_marked(new)` → `mark.read` → `old.get`). Part 1 pauses
    /// the merge at *every step boundary* and probes every key — the
    /// suspect interleaving (reader probing while half the keys have
    /// migrated to the oldtable) run as a deterministic schedule instead
    /// of a racy stress. Part 2 freezes the merge after every individual
    /// link write (mark set, tower half re-pointed) and probes the
    /// guaranteed-visible set: the marked key itself, everything already
    /// merged ahead of it, and the oldtable's own keys.
    #[test]
    fn reader_protocol_sees_every_key_at_every_merge_interleaving() {
        let keys: Vec<String> = (0..24u32).map(|i| format!("k{i:03}")).collect();
        let build = |p: &Arc<PmemPool>| {
            // Every 4th key carries an older duplicate in the newtable so
            // the steps exercise drop-front-duplicates too.
            let mut new_entries: Vec<(Vec<u8>, Vec<u8>, u64)> = Vec::new();
            for (i, k) in keys.iter().enumerate() {
                if i % 4 == 0 {
                    new_entries.push((k.clone().into_bytes(), b"superseded".to_vec(), 50));
                }
                new_entries.push((k.clone().into_bytes(), format!("new-{k}").into_bytes(), 100));
            }
            let new_refs: Vec<(&[u8], &[u8], u64)> = new_entries
                .iter()
                .map(|(k, v, s)| (k.as_slice(), v.as_slice(), *s))
                .collect();
            let new = table(p, &new_refs);
            let old = table(p, &[(b"m-aaa", b"old", 1), (b"m-zzz", b"old", 2)]);
            let mark = InsertionMark::alloc(p).unwrap();
            (new, old, mark)
        };
        let probe = |new_view: &SkipList, old_view: &SkipList, mark: &InsertionMark, k: &str| {
            get_skip_marked(new_view, k.as_bytes(), mark)
                .or_else(|| mark.read(k.as_bytes()))
                .or_else(|| old_view.get(k.as_bytes()))
        };

        // Part 1: pause at every clean step boundary, probe every key.
        {
            let p = pool();
            let (new, old, mark) = build(&p);
            let new_view = SkipList::from_raw(p.clone(), new.head());
            let old_view = SkipList::from_raw(p.clone(), old.head());
            let mut boundary = 0usize;
            loop {
                for k in &keys {
                    let found = probe(&new_view, &old_view, &mark, k)
                        .unwrap_or_else(|| panic!("{k} invisible at step boundary {boundary}"));
                    assert_eq!(
                        found.value,
                        format!("new-{k}").as_bytes(),
                        "stale {k} at step boundary {boundary}"
                    );
                }
                for mk in ["m-aaa", "m-zzz"] {
                    assert_eq!(
                        probe(&new_view, &old_view, &mark, mk).unwrap().value,
                        b"old",
                        "{mk} lost at step boundary {boundary}"
                    );
                }
                let out = zero_copy_merge(
                    &p,
                    new.head(),
                    old.head(),
                    &mark,
                    MergeLimits {
                        max_steps: Some(1),
                        abandon_after_link_writes: None,
                    },
                );
                assert!(mark.load().is_none(), "mark leaked past a step boundary");
                boundary += 1;
                if out.is_complete() {
                    break;
                }
                assert!(boundary < 1000, "merge did not converge");
            }
        }

        // Part 2: freeze after every individual link write; mid-step the
        // guaranteed-visible set is the marked key (covered by the mark
        // itself), every key merged ahead of it, and the oldtable keys.
        for crash_at in 1..10_000u64 {
            let p = pool();
            let (new, old, mark) = build(&p);
            let out = zero_copy_merge(
                &p,
                new.head(),
                old.head(),
                &mark,
                MergeLimits {
                    max_steps: None,
                    abandon_after_link_writes: Some(crash_at),
                },
            );
            let new_view = SkipList::from_raw(p.clone(), new.head());
            let old_view = SkipList::from_raw(p.clone(), old.head());
            let marked_key = mark
                .load()
                .map(|(n, _)| String::from_utf8(raw::key(&p, n).to_vec()).unwrap());
            for k in &keys {
                match &marked_key {
                    Some(mk) if k == mk => {
                        // The in-flight key must be served by the mark
                        // (its list linkage is arbitrary mid-step).
                        let found = mark.read(k.as_bytes()).unwrap_or_else(|| {
                            panic!("marked {k} invisible at crash_at={crash_at}")
                        });
                        assert_eq!(found.value, format!("new-{k}").as_bytes());
                    }
                    Some(mk) if k < mk => {
                        // Fully merged ahead of the frozen step: the plain
                        // oldtable probe must already serve it.
                        let found = old_view.get(k.as_bytes()).unwrap_or_else(|| {
                            panic!("merged {k} invisible at crash_at={crash_at}")
                        });
                        assert_eq!(
                            found.value,
                            format!("new-{k}").as_bytes(),
                            "stale {k} at crash_at={crash_at}"
                        );
                    }
                    _ => {
                        // Beyond the marked node (or merge complete): the
                        // full protocol finds it; skip get_skip_marked's
                        // bounded-restart fallback which presumes a live
                        // compactor advancing the mark.
                        let found = new_view
                            .get(k.as_bytes())
                            .or_else(|| mark.read(k.as_bytes()))
                            .or_else(|| old_view.get(k.as_bytes()))
                            .unwrap_or_else(|| panic!("{k} invisible at crash_at={crash_at}"));
                        assert_eq!(
                            found.value,
                            format!("new-{k}").as_bytes(),
                            "stale {k} at crash_at={crash_at}"
                        );
                    }
                }
            }
            for mk in ["m-aaa", "m-zzz"] {
                assert_eq!(
                    old_view.get(mk.as_bytes()).unwrap().value,
                    b"old",
                    "{mk} lost at crash_at={crash_at}"
                );
            }
            if out.is_complete() {
                break; // later crash points are no-ops
            }
        }
    }

    #[test]
    fn mark_read_finds_in_flight_node() {
        let p = pool();
        let new = table(&p, &[(b"k", b"v", 5)]);
        let old = table(&p, &[]);
        let mark = InsertionMark::alloc(&p).unwrap();
        // Crash immediately after the node is unlinked from new (the node
        // now lives only in the mark).
        let out = zero_copy_merge(
            &p,
            new.head(),
            old.head(),
            &mark,
            MergeLimits {
                max_steps: None,
                abandon_after_link_writes: Some(1),
            },
        );
        assert!(!out.is_complete());
        // Reader protocol: newtable -> mark -> oldtable.
        let new_view = SkipList::from_raw(p.clone(), new.head());
        let old_view = SkipList::from_raw(p.clone(), old.head());
        let found = new_view
            .get(b"k")
            .or_else(|| mark.read(b"k"))
            .or_else(|| old_view.get(b"k"))
            .expect("in-flight node must be visible");
        assert_eq!(found.value, b"v");
        assert!(mark.read(b"other").is_none());
    }

    #[test]
    fn concurrent_reads_during_merge() {
        use std::sync::atomic::{AtomicBool, Ordering as AOrd};
        let p = pool();
        let n = 400u32;
        let entries: Vec<(Vec<u8>, Vec<u8>, u64)> = (0..n)
            .map(|i| {
                (
                    format!("k{i:04}").into_bytes(),
                    format!("new{i}").into_bytes(),
                    1000 + i as u64,
                )
            })
            .collect();
        let refs: Vec<(&[u8], &[u8], u64)> = entries
            .iter()
            .map(|(k, v, s)| (k.as_slice(), v.as_slice(), *s))
            .collect();
        let new = table(&p, &refs);
        // Old table holds older versions of the even keys.
        let old_entries: Vec<(Vec<u8>, Vec<u8>, u64)> = (0..n)
            .step_by(2)
            .map(|i| (format!("k{i:04}").into_bytes(), b"old".to_vec(), i as u64))
            .collect();
        let old_refs: Vec<(&[u8], &[u8], u64)> = old_entries
            .iter()
            .map(|(k, v, s)| (k.as_slice(), v.as_slice(), *s))
            .collect();
        let old = table(&p, &old_refs);
        let mark = InsertionMark::alloc(&p).unwrap();

        let new_view = SkipList::from_raw(p.clone(), new.head());
        let old_view = SkipList::from_raw(p.clone(), old.head());
        let done = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            // Reader threads follow the paper's lookup protocol.
            for t in 0..4 {
                let new_view = new_view.clone();
                let old_view = old_view.clone();
                let mark = mark.clone();
                let done = done.clone();
                s.spawn(move || {
                    let mut i = t;
                    let mut checked = 0u32;
                    while !done.load(AOrd::Acquire) || checked < 200 {
                        let key = format!("k{:04}", i % n);
                        let found = new_view
                            .get(key.as_bytes())
                            .or_else(|| mark.read(key.as_bytes()))
                            .or_else(|| old_view.get(key.as_bytes()))
                            .unwrap_or_else(|| panic!("{key} invisible during merge"));
                        // Must never see a stale "old" value for a key that
                        // has a newer version: newest-first protocol.
                        assert!(
                            found.value.starts_with(b"new"),
                            "stale read for {key}: {:?}",
                            String::from_utf8_lossy(&found.value)
                        );
                        i += 7;
                        checked += 1;
                    }
                });
            }
            let out = zero_copy_merge(&p, new.head(), old.head(), &mark, MergeLimits::none());
            assert!(out.is_complete());
            done.store(true, AOrd::Release);
        });

        let m = merged_view(&p, &old);
        assert_eq!(m.count_nodes(), n as usize);
    }
}
